"""The signed update channel: manifests that chain deltas to goldens.

"Insecure Until Proven Updated" catalogues how fleets are actually
compromised: not by breaking the image's integrity chain but by abusing
the *update* channel — serving an old (signed!) update to roll a node
back, or slipping an unsigned payload past a client that only checks
the transport.  This module makes the channel itself attestation-grade:

* every update travels as an :class:`UpdateManifest` — base launch
  measurement → target launch measurement, the delta blob's digest and
  per-block hashes, and a **monotonic epoch** — signed by the build
  pipeline's key (:class:`SignedManifest`);
* :func:`verify_manifest` is the node-side gate, and it runs **before
  any block touches disk**: signature first, then epoch monotonicity
  (``stale_epoch`` kills rollback replays), then the base chain —
  the manifest's base measurement must equal the node's installed
  measurement *and* sit in the ``repro.attest`` policy's effective
  golden set, so every accepted update is reachable from a golden the
  verifier already trusts;
* :class:`UpdateClient` drives gate → blob integrity → delta apply
  (:func:`repro.build.delta.apply_delta`, which re-roots and replays
  the signed target measurement) and only then advances its epoch.

Every rejection raises a typed :class:`ChannelError` carrying one of
:data:`CHANNEL_REASON_CODES` and is counted on the process tracer's
``update`` counters — the same observability seam the attestation
pipeline uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..attest.trace import get_tracer
from ..crypto import encoding
from ..crypto.keys import PrivateKey, PublicKey
from ..virt.image import VmImage
from .delta import DELTA_REASON_CODES, DeltaError, ImageDelta, apply_delta
from .measurement import expected_measurement_for_image

_MANIFEST_MAGIC = "repro-update-manifest-v1"

#: The full stable rejection taxonomy of the update path: the
#: manifest-level codes plus the delta-apply codes it shares.
CHANNEL_REASON_CODES: Tuple[str, ...] = tuple(sorted({
    "bad_signature",   # manifest signature invalid or wrong signer
    "stale_epoch",     # epoch <= the node's last applied (rollback replay)
    *DELTA_REASON_CODES,
}))


class ChannelError(ValueError):
    """An update was rejected; ``code`` is one of
    :data:`CHANNEL_REASON_CODES`."""

    def __init__(self, code: str, message: str):
        if code not in CHANNEL_REASON_CODES:
            raise ValueError(f"unknown channel reason code {code!r}")
        super().__init__(message)
        self.code = code


def _reject(code: str, message: str, tracer=None) -> ChannelError:
    (tracer or get_tracer()).update.record_reject(code)
    return ChannelError(code, message)


@dataclass(frozen=True)
class UpdateManifest:
    """One versioned, signable update description."""

    image_name: str
    base_version: str
    target_version: str
    #: Monotonic per-image epoch; clients refuse anything at or below
    #: their last applied epoch (rollback protection).
    epoch: int
    base_measurement: bytes
    target_measurement: bytes
    base_root_hash: bytes
    target_root_hash: bytes
    #: SHA-256 of the encoded delta blob.
    delta_digest: bytes
    #: Position-bound hashes of every shipped block (see
    #: :meth:`~repro.build.delta.ImageDelta.blob_hashes`).
    blob_hashes: Tuple[bytes, ...]

    def signing_bytes(self) -> bytes:
        """The canonical bytes the channel key signs."""
        return encoding.encode(
            {
                "magic": _MANIFEST_MAGIC,
                "image": self.image_name,
                "base_version": self.base_version,
                "target_version": self.target_version,
                "epoch": self.epoch,
                "base_measurement": self.base_measurement,
                "target_measurement": self.target_measurement,
                "base_root": self.base_root_hash,
                "target_root": self.target_root_hash,
                "delta_digest": self.delta_digest,
                "blob_hashes": list(self.blob_hashes),
            }
        )

    def to_dict(self) -> dict:
        """A human-readable summary (hex digests) for CLI display."""
        return {
            "image": self.image_name,
            "base_version": self.base_version,
            "target_version": self.target_version,
            "epoch": self.epoch,
            "base_measurement": self.base_measurement.hex(),
            "target_measurement": self.target_measurement.hex(),
            "base_root": self.base_root_hash.hex(),
            "target_root": self.target_root_hash.hex(),
            "delta_digest": self.delta_digest.hex(),
            "blob_count": len(self.blob_hashes),
        }


@dataclass(frozen=True)
class SignedManifest:
    """A manifest plus its channel signature."""

    manifest: UpdateManifest
    signature: bytes
    #: Fingerprint of the signing key (routing hint only — trust comes
    #: from the verifier's pinned key, never from this field).
    signer: bytes

    def encode(self) -> bytes:
        """Serialise for distribution."""
        return encoding.encode(
            {
                "magic": "repro-signed-manifest",
                "manifest": self.manifest.signing_bytes(),
                "signature": self.signature,
                "signer": self.signer,
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "SignedManifest":
        """Parse a distributed signed manifest."""
        decoded = encoding.decode(data)
        if (
            not isinstance(decoded, dict)
            or decoded.get("magic") != "repro-signed-manifest"
        ):
            raise ValueError("not a signed manifest")
        body = encoding.decode(decoded["manifest"])
        if not isinstance(body, dict) or body.get("magic") != _MANIFEST_MAGIC:
            raise ValueError("not an update manifest")
        manifest = UpdateManifest(
            image_name=body["image"],
            base_version=body["base_version"],
            target_version=body["target_version"],
            epoch=body["epoch"],
            base_measurement=body["base_measurement"],
            target_measurement=body["target_measurement"],
            base_root_hash=body["base_root"],
            target_root_hash=body["target_root"],
            delta_digest=body["delta_digest"],
            blob_hashes=tuple(body["blob_hashes"]),
        )
        return cls(
            manifest=manifest,
            signature=decoded["signature"],
            signer=decoded["signer"],
        )


class UpdateChannel:
    """The publisher side: sign manifests, store delta blobs.

    One channel serves one image name; epochs increase monotonically
    with each publication.  The blob store is content-addressed (the
    manifest's ``delta_digest`` is the lookup key), so transport-layer
    tampering is always visible as a digest mismatch.
    """

    def __init__(self, signing_key: PrivateKey, image_name: str):
        self._key = signing_key
        self.image_name = image_name
        self.manifests: List[SignedManifest] = []
        self._blobs: Dict[bytes, bytes] = {}

    @property
    def signer(self) -> PublicKey:
        """The channel's verification key (pin this on clients)."""
        return self._key.public_key()

    @property
    def epoch(self) -> int:
        """The highest epoch published so far (0 = nothing yet)."""
        return self.manifests[-1].manifest.epoch if self.manifests else 0

    def publish(
        self,
        delta: ImageDelta,
        base_measurement: bytes,
        target_measurement: bytes,
        epoch: Optional[int] = None,
    ) -> SignedManifest:
        """Sign and store one update; returns the signed manifest."""
        if delta.image_name != self.image_name:
            raise ValueError(
                f"channel serves {self.image_name!r}, delta is for "
                f"{delta.image_name!r}"
            )
        blob = delta.encode()
        manifest = UpdateManifest(
            image_name=delta.image_name,
            base_version=delta.base_version,
            target_version=delta.target_version,
            epoch=self.epoch + 1 if epoch is None else epoch,
            base_measurement=bytes(base_measurement),
            target_measurement=bytes(target_measurement),
            base_root_hash=delta.base_root_hash,
            target_root_hash=delta.target_root_hash,
            delta_digest=hashlib.sha256(blob).digest(),
            blob_hashes=delta.blob_hashes(),
        )
        signed = SignedManifest(
            manifest=manifest,
            signature=self._key.sign(manifest.signing_bytes()),
            signer=self._key.public_key().fingerprint(),
        )
        self.manifests.append(signed)
        self._blobs[manifest.delta_digest] = blob
        get_tracer().update.record_publish()
        return signed

    def latest(self) -> SignedManifest:
        """The most recently published manifest."""
        if not self.manifests:
            raise LookupError(f"channel {self.image_name!r} is empty")
        return self.manifests[-1]

    def manifest_at(self, epoch: int) -> SignedManifest:
        """The manifest published at *epoch* (rollback-replay fixture)."""
        for signed in self.manifests:
            if signed.manifest.epoch == epoch:
                return signed
        raise LookupError(f"no manifest at epoch {epoch}")

    def blob(self, delta_digest: bytes) -> bytes:
        """Fetch a delta blob by its content digest."""
        try:
            return self._blobs[delta_digest]
        except KeyError:
            raise LookupError("no blob for that digest") from None


def verify_manifest(
    signed: SignedManifest,
    trusted_key: PublicKey,
    last_epoch: int,
    node_measurement: Optional[bytes] = None,
    policy=None,
    tracer=None,
) -> UpdateManifest:
    """The node-side gate, run before any block touches disk.

    Checks, in order: the channel signature against the **pinned**
    *trusted_key*; epoch monotonicity against *last_epoch*; and the
    base chain — the manifest's base measurement must equal the node's
    installed measurement (when given) and be in the *policy*'s
    effective golden set (when given), i.e. the update departs from a
    measurement the ``repro.attest`` verifier already trusts.

    Returns the verified manifest; raises a typed, counted
    :class:`ChannelError` otherwise.
    """
    manifest = signed.manifest
    if not trusted_key.verify(manifest.signing_bytes(), signed.signature):
        raise _reject(
            "bad_signature",
            "manifest signature does not verify under the pinned channel key",
            tracer,
        )
    if manifest.epoch <= last_epoch:
        raise _reject(
            "stale_epoch",
            f"manifest epoch {manifest.epoch} <= applied epoch {last_epoch} "
            "(rollback replay)",
            tracer,
        )
    if node_measurement is not None and (
        manifest.base_measurement != bytes(node_measurement)
    ):
        raise _reject(
            "base_mismatch",
            "manifest base measurement is not this node's installed "
            "measurement",
            tracer,
        )
    if policy is not None:
        golden = policy.effective_golden()
        if golden is not None and manifest.base_measurement not in golden:
            raise _reject(
                "base_mismatch",
                "manifest base measurement is not in the trusted golden set",
                tracer,
            )
    (tracer or get_tracer()).update.record_accept()
    return manifest


class UpdateClient:
    """The node-side update pipeline: verify, check blobs, apply.

    One client per node; ``epoch`` tracks the last applied update and
    only advances after a fully successful apply.  An optional shared
    *apply cache* (a plain dict) deduplicates the expensive patch +
    re-root + measurement replay across a fleet of nodes running the
    same base — manifest verification still runs per node.
    """

    def __init__(
        self,
        trusted_key: PublicKey,
        policy=None,
        epoch: int = 0,
        apply_cache: Optional[Dict[bytes, VmImage]] = None,
        tracer=None,
    ):
        self.trusted_key = trusted_key
        self.policy = policy
        self.epoch = epoch
        self._apply_cache = apply_cache
        self._tracer = tracer

    def apply(
        self,
        installed: VmImage,
        signed: SignedManifest,
        blob: bytes,
        node_measurement: Optional[bytes] = None,
    ) -> VmImage:
        """Run the full verify-then-apply pipeline.

        Raises :class:`ChannelError` on any rejection; the installed
        image is never touched on failure.  On success returns the new
        image (byte-identical to the published target) and advances
        :attr:`epoch`.
        """
        tracer = self._tracer or get_tracer()
        if node_measurement is None:
            node_measurement = expected_measurement_for_image(installed)
        manifest = verify_manifest(
            signed,
            trusted_key=self.trusted_key,
            last_epoch=self.epoch,
            node_measurement=node_measurement,
            policy=self.policy,
            tracer=tracer,
        )
        if hashlib.sha256(blob).digest() != manifest.delta_digest:
            raise _reject(
                "delta_corrupt",
                "delta blob does not match the signed digest",
                tracer,
            )
        try:
            delta = ImageDelta.decode(blob)
        except DeltaError as exc:
            raise _reject("delta_corrupt", str(exc), tracer) from exc
        if delta.blob_hashes() != manifest.blob_hashes:
            raise _reject(
                "delta_corrupt",
                "shipped blocks do not match the signed block hashes",
                tracer,
            )

        cache_hit = False
        applied: Optional[VmImage] = None
        cache_key = None
        if self._apply_cache is not None:
            cache_key = hashlib.sha256(
                manifest.delta_digest + node_measurement
            ).digest()
            applied = self._apply_cache.get(cache_key)
            cache_hit = applied is not None
        if applied is None:
            try:
                applied = apply_delta(
                    installed, delta,
                    target_measurement=manifest.target_measurement,
                )
            except DeltaError as exc:
                raise _reject(exc.code, str(exc), tracer) from exc
            if self._apply_cache is not None and cache_key is not None:
                self._apply_cache[cache_key] = applied
        self.epoch = manifest.epoch
        tracer.update.record_apply(
            delta.delta_bytes(), len(applied.disk_image), cached=cache_hit
        )
        return applied
