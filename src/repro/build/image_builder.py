"""The reproducible Revelio image build (paper §5.1, Fig. 3).

``build_revelio_image`` turns a fully pinned :class:`ImageSpec` into a
launch-ready :class:`~repro.virt.image.VmImage` plus its golden values:

1. resolve every :class:`~repro.build.packages.PackagePin` against the
   registry (digest-verified),
2. compose the rootfs: package files + the measured configuration
   (service conf, network policy, package manifest, optional extra
   golden measurements) + spec-level extra files,
3. serialise it into the deterministic filesystem image and build the
   dm-verity hash tree over it (fixed salt derived from the spec),
4. assemble the disk — partition table, rootfs, verity metadata, and an
   all-zero data volume the guest dm-crypts on first boot,
5. emit kernel, initrd descriptor (the init-step sequence *is* the init
   code), and a command line carrying the verity root hash — so the
   rootfs is transitively covered by the launch measurement,
6. precompute the golden measurement by replaying the AMD-SP's
   accumulation via :mod:`repro.build.measurement`.

Determinism is the headline property (requirement F5): no wall clock,
no RNG, no dict-order dependence anywhere in the pipeline, so two
builds of an identical spec are byte-identical — file paths are sorted,
mtimes squashed, partition UUIDs and the verity salt derived from the
spec identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..crypto import encoding
from ..storage.dm_verity import verity_format
from ..storage.filesystem import build_image as build_fs_image
from ..storage.filesystem import image_to_device
from ..storage.partition import PartitionEntry, PartitionTable
from ..virt.firmware import build_firmware
from ..virt.image import InitrdDescriptor, KernelBlob, VmImage
from .cache import BuildCache, cache_key
from .measurement import expected_measurement_for_image
from .packages import Package, PackagePin, PackageRegistry

#: Where the measured service configuration lives in the rootfs.
SERVICE_CONF_PATH = "/etc/revelio/service.conf"
#: Where the measured network policy lives in the rootfs (F4).
NETWORK_CONF_PATH = "/etc/revelio/network.conf"
#: Optional extra golden measurements planted at build time (§5.3).
GOLDEN_CONF_PATH = "/etc/revelio/golden.conf"
#: The resolved package manifest, recorded for auditability.
MANIFEST_PATH = "/etc/revelio/packages.conf"

#: The standard Revelio init sequence (§5.2.1-5.2.2), in boot order.
DEFAULT_INIT_STEPS: Tuple[str, ...] = (
    "verity-rootfs",
    "network-lockdown",
    "dm-crypt-data",
    "identity-creation",
    "start-services",
)

#: Disk/rootfs block size (the 4 KiB the dm-verity tree hashes over).
BLOCK_SIZE = 4096

#: The pinned guest kernel identity every image boots.
KERNEL_NAME = "revelio-linux"
KERNEL_VERSION = "6.1.0"
KERNEL_FEATURES: Tuple[str, ...] = ("sev-snp", "dm-verity", "dm-crypt")

#: dm-crypt needs the LUKS header blocks plus at least one data block.
MIN_DATA_VOLUME_BLOCKS = 4

#: The device-mapper stacks a standard image boots from.  The tables
#: travel in the (measured) initrd descriptor, so the exact storage
#: topology — including the verity binding to the cmdline root hash and
#: the sealing-key crypt target — is covered by the launch measurement.
ROOTFS_DM_TABLE = (
    "linear partition=rootfs ; cache blocks=128 ; "
    "verity hash=partition:verity root=cmdline:verity_root_hash"
)
DATA_DM_TABLE = "linear partition=data ; crypt key=sealing format=auto fill=zero"


class BuildError(ValueError):
    """Raised on invalid specs or unbuildable images."""


@dataclass(frozen=True)
class NetworkPolicy:
    """The measured network lockdown configuration (requirement F4).

    Baked into the rootfs at :data:`NETWORK_CONF_PATH`, decoded by the
    ``network-lockdown`` init step, and enforced by
    :meth:`repro.net.firewall.Firewall.from_network_policy` — so "just
    open ssh" after attestation is impossible without shifting the
    measurement.  Port 443 (HTTPS) and 8080 (the provisioning bootstrap
    endpoint, Fig. 4) are open by default; ssh is off.
    """

    allowed_inbound_ports: Tuple[int, ...] = (443, 8080)
    ssh_enabled: bool = False
    allow_outbound: bool = True

    def to_dict(self) -> dict:
        """Dict form for canonical TLV embedding."""
        return {
            "allowed_inbound_ports": list(self.allowed_inbound_ports),
            "ssh_enabled": self.ssh_enabled,
            "allow_outbound": self.allow_outbound,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkPolicy":
        """Rebuild from the dict form."""
        return cls(
            allowed_inbound_ports=tuple(data["allowed_inbound_ports"]),
            ssh_enabled=data["ssh_enabled"],
            allow_outbound=data["allow_outbound"],
        )


@dataclass
class ImageSpec:
    """Everything that determines an image, and nothing else.

    Two equal specs build byte-identical images; every field below is
    either measured directly (kernel, initrd, cmdline, firmware) or
    reaches the measurement through the rootfs → verity root hash →
    cmdline chain.
    """

    name: str
    version: str
    registry: PackageRegistry
    package_pins: Sequence[PackagePin]
    service_domain: str
    services: Tuple[str, ...] = ("https",)
    data_volume_blocks: int = 16
    init_steps: Tuple[str, ...] = DEFAULT_INIT_STEPS
    network_policy: NetworkPolicy = NetworkPolicy()
    extra_files: Mapping[str, bytes] = field(default_factory=dict)
    extra_golden_measurements: Tuple[bytes, ...] = ()
    base_boot_services: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.version:
            raise BuildError("image name and version are required")
        if not self.service_domain:
            raise BuildError("a service domain is required")
        self.package_pins = tuple(self.package_pins)
        self.services = tuple(self.services)
        self.init_steps = tuple(self.init_steps)
        if not self.init_steps:
            raise BuildError("an image needs at least one init step")
        if not isinstance(self.network_policy, NetworkPolicy):
            raise BuildError("network_policy must be a NetworkPolicy")
        if self.data_volume_blocks < MIN_DATA_VOLUME_BLOCKS:
            raise BuildError(
                f"data volume needs >= {MIN_DATA_VOLUME_BLOCKS} blocks "
                "(LUKS header + payload)"
            )
        for path in self.extra_files:
            if not path.startswith("/"):
                raise BuildError(f"extra file paths must be absolute: {path!r}")
        self.extra_golden_measurements = tuple(
            bytes(m) for m in self.extra_golden_measurements
        )
        self.base_boot_services = tuple(
            (str(name), float(duration)) for name, duration in self.base_boot_services
        )


@dataclass(frozen=True)
class RevelioBuild:
    """The build output: the image, its golden values, and the audit
    trail (spec + resolved pins + composed rootfs contents)."""

    spec: ImageSpec
    pins: Tuple[PackagePin, ...]
    image: VmImage
    root_hash: bytes
    expected_measurement: bytes
    rootfs_files: Dict[str, bytes]
    #: The device-mapper table specs the image's initrd carries
    #: (volume name → table text), part of the audit trail.
    dm_tables: Mapping[str, str] = field(default_factory=dict)
    #: Per-stage cache hit/miss stats when a :class:`BuildCache` was
    #: used (empty for uncached builds) — purely observational.
    cache_stats: Mapping[str, object] = field(default_factory=dict)


#: Historical alias used by the deployment and rollout layers.
BuildResult = RevelioBuild


def _compose_rootfs(spec: ImageSpec, packages: Sequence[Package]) -> Dict[str, bytes]:
    """Lay out the rootfs contents: package files, the measured Revelio
    configuration, and spec-level extra files (which may override)."""
    rootfs: Dict[str, bytes] = {}
    owner: Dict[str, str] = {}
    for package in packages:
        for path, content in package.file_items:
            if path in rootfs:
                raise BuildError(
                    f"package file conflict: {path} provided by both "
                    f"{owner[path]} and {package.name}"
                )
            rootfs[path] = content
            owner[path] = package.name

    rootfs[SERVICE_CONF_PATH] = encoding.encode(
        {
            "domain": spec.service_domain,
            "services": list(spec.services),
            "image": spec.name,
            "version": spec.version,
        }
    )
    rootfs[NETWORK_CONF_PATH] = encoding.encode(spec.network_policy.to_dict())
    rootfs[MANIFEST_PATH] = encoding.encode(
        {
            "packages": [
                {"name": pin.name, "version": pin.version, "digest": pin.digest}
                for pin in spec.package_pins
            ]
        }
    )
    if spec.extra_golden_measurements:
        rootfs[GOLDEN_CONF_PATH] = encoding.encode(
            {"measurements": list(spec.extra_golden_measurements)}
        )
    # Spec-level files land last and may deliberately override package
    # contents (e.g. the IC service worker shipped by the provider).
    for path, content in spec.extra_files.items():
        rootfs[path] = bytes(content)
    return rootfs


def _verity_salt(spec: ImageSpec) -> bytes:
    """A fixed, spec-derived salt: random salts are a classic source of
    image non-determinism (§5.1.1)."""
    return hashlib.sha256(
        f"revelio-verity-salt:{spec.name}:{spec.version}".encode()
    ).digest()[:16]


def _partition_uuid(spec: ImageSpec, partition: str) -> str:
    """A fixed, spec-derived partition UUID (same reason as the salt)."""
    raw = hashlib.sha256(
        f"revelio-uuid:{spec.name}:{spec.version}:{partition}".encode()
    ).hexdigest()
    return f"{raw[0:8]}-{raw[8:12]}-{raw[12:16]}-{raw[16:20]}-{raw[20:32]}"


def _assemble_disk(
    spec: ImageSpec, rootfs_image: bytes, verity_bytes: bytes
) -> bytes:
    """Block 0: partition table; then rootfs, verity metadata, and the
    zero-filled data volume (dm-crypted by the guest on first boot)."""
    rootfs_blocks = len(rootfs_image) // BLOCK_SIZE
    verity_blocks = len(verity_bytes) // BLOCK_SIZE
    table = PartitionTable(
        [
            PartitionEntry(
                "rootfs", 1, rootfs_blocks, _partition_uuid(spec, "rootfs")
            ),
            PartitionEntry(
                "verity",
                1 + rootfs_blocks,
                verity_blocks,
                _partition_uuid(spec, "verity"),
            ),
            PartitionEntry(
                "data",
                1 + rootfs_blocks + verity_blocks,
                spec.data_volume_blocks,
                _partition_uuid(spec, "data"),
            ),
        ]
    )
    encoded_table = table.encode()
    if len(encoded_table) > BLOCK_SIZE:
        raise BuildError("partition table does not fit in one block")
    return (
        encoded_table.ljust(BLOCK_SIZE, b"\x00")
        + rootfs_image
        + verity_bytes
        + bytes(spec.data_volume_blocks * BLOCK_SIZE)
    )


def _rootfs_key(spec: ImageSpec, rootfs_files: Mapping[str, bytes]) -> bytes:
    """Cache key of the rootfs-serialisation stage: the exact file map
    plus the serialisation parameters."""
    return cache_key(
        encoding.encode(
            {
                "files": dict(rootfs_files),
                "block_size": BLOCK_SIZE,
                "label": f"{spec.name}-rootfs",
            }
        )
    )


def build_revelio_image(
    spec: ImageSpec, cache: Optional[BuildCache] = None
) -> RevelioBuild:
    """Reproducibly build a launch-ready image from a pinned spec.

    Raises :class:`~repro.build.packages.PackageError` if any pin fails
    digest verification and :class:`BuildError` on spec problems.
    Deterministic: equal specs yield byte-identical images and equal
    golden measurements — with or without a *cache*, which only memoises
    the expensive stages (rootfs serialisation, the verity tree, the
    measurement replay) across incremental rebuilds.
    """
    packages: List[Package] = [spec.registry.resolve(pin) for pin in spec.package_pins]
    rootfs_files = _compose_rootfs(spec, packages)

    def memo(stage, key, producer):
        return producer() if cache is None else cache.memo(stage, key, producer)

    rootfs_image = memo(
        "rootfs",
        _rootfs_key(spec, rootfs_files),
        lambda: build_fs_image(
            rootfs_files, block_size=BLOCK_SIZE, label=f"{spec.name}-rootfs"
        ),
    )
    salt = _verity_salt(spec)
    root_hash, verity_bytes = memo(
        "verity",
        cache_key(salt, hashlib.sha256(rootfs_image).digest()),
        lambda: (
            lambda result: (result.root_hash, result.hash_device.snapshot())
        )(verity_format(image_to_device(rootfs_image, BLOCK_SIZE), salt=salt)),
    )
    disk_image = _assemble_disk(spec, rootfs_image, verity_bytes)

    # The legacy per-partition parameters stay alongside the dm tables
    # so images remain bootable by older init-step implementations.
    initrd = InitrdDescriptor(
        init_steps=spec.init_steps,
        parameters={
            "rootfs_partition": "rootfs",
            "verity_partition": "verity",
            "data_partition": "data",
            "rootfs_table": ROOTFS_DM_TABLE,
            "data_table": DATA_DM_TABLE,
        },
    ).encode()
    kernel = KernelBlob(KERNEL_NAME, KERNEL_VERSION, KERNEL_FEATURES).encode()
    cmdline = (
        "console=ttyS0 ro root=/dev/mapper/vroot "
        f"verity_root_hash={root_hash.hex()}"
    )
    image = VmImage(
        name=spec.name,
        version=spec.version,
        firmware_template=build_firmware(),
        kernel=kernel,
        initrd=initrd,
        cmdline=cmdline,
        disk_image=disk_image,
        disk_block_size=BLOCK_SIZE,
        base_boot_services=spec.base_boot_services,
    )
    expected_measurement = memo(
        "measurement",
        cache_key(
            image.firmware_template, image.kernel, image.initrd,
            image.cmdline.encode("utf-8"),
        ),
        lambda: expected_measurement_for_image(image),
    )
    return RevelioBuild(
        spec=spec,
        pins=tuple(spec.package_pins),
        image=image,
        root_hash=root_hash,
        expected_measurement=expected_measurement,
        rootfs_files=rootfs_files,
        dm_tables={"rootfs": ROOTFS_DM_TABLE, "data": DATA_DM_TABLE},
        cache_stats={} if cache is None else cache.stats(),
    )
