"""Merkle tree unit tests."""

import pytest

from repro.crypto.hashes import sha256
from repro.crypto.merkle import MerkleError, MerkleTree


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree.from_blocks([b"only"])
        assert tree.root == sha256(b"only")
        assert tree.num_leaves == 1

    def test_root_changes_with_any_leaf(self):
        blocks = [bytes([i]) * 10 for i in range(20)]
        base = MerkleTree.from_blocks(blocks, arity=4).root
        for index in range(20):
            mutated = list(blocks)
            mutated[index] = b"tampered"
            assert MerkleTree.from_blocks(mutated, arity=4).root != base

    def test_root_depends_on_order(self):
        assert (
            MerkleTree.from_blocks([b"a", b"b"]).root
            != MerkleTree.from_blocks([b"b", b"a"]).root
        )

    def test_deterministic(self):
        blocks = [b"x" * 64, b"y" * 64]
        assert (
            MerkleTree.from_blocks(blocks).root == MerkleTree.from_blocks(blocks).root
        )

    def test_empty_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree([])

    def test_bad_arity_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree([sha256(b"x")], arity=1)

    def test_bad_leaf_size_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree([b"too-short"])

    @pytest.mark.parametrize("num_leaves", [1, 2, 3, 4, 5, 127, 128, 129, 1000])
    @pytest.mark.parametrize("arity", [2, 4, 128])
    def test_various_shapes(self, num_leaves, arity):
        blocks = [index.to_bytes(4, "big") for index in range(num_leaves)]
        tree = MerkleTree.from_blocks(blocks, arity=arity)
        assert len(tree.root) == 32
        assert tree.num_leaves == num_leaves


class TestProofs:
    @pytest.fixture
    def tree(self):
        blocks = [bytes([i]) * 4 for i in range(100)]
        return MerkleTree.from_blocks(blocks, arity=4)

    def test_all_proofs_verify(self, tree):
        for index in range(tree.num_leaves):
            proof = tree.prove(index)
            leaf = sha256(bytes([index]) * 4)
            assert MerkleTree.verify_proof(leaf, proof, tree.root, arity=4)

    def test_wrong_leaf_rejected(self, tree):
        proof = tree.prove(5)
        assert not MerkleTree.verify_proof(sha256(b"evil"), proof, tree.root, arity=4)

    def test_wrong_root_rejected(self, tree):
        proof = tree.prove(5)
        leaf = sha256(bytes([5]) * 4)
        assert not MerkleTree.verify_proof(leaf, proof, b"\x00" * 32, arity=4)

    def test_proof_for_other_index_rejected(self, tree):
        proof = tree.prove(6)
        leaf = sha256(bytes([5]) * 4)
        assert not MerkleTree.verify_proof(leaf, proof, tree.root, arity=4)

    def test_out_of_range_index(self, tree):
        with pytest.raises(MerkleError):
            tree.prove(100)
        with pytest.raises(MerkleError):
            tree.prove(-1)
