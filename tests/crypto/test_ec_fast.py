"""Fast-path EC engine tests: every optimised multiplication strategy
must agree with the retained naive ``_jac_multiply`` oracle, on random
scalars and on the edge cases (0, 1, n-1, n, infinity)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ec
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ec import (
    P256,
    P384,
    FixedBaseTable,
    InvalidPointError,
    Point,
    PointPrecomputeCache,
    get_curve,
    multiply_base,
    multiply_wnaf,
    shamir_multiply_jac,
    verification_multiply,
)

CURVES = [P256, P384]
CURVE_IDS = [c.name for c in CURVES]
EDGE_SCALARS = [0, 1, 2, 3]  # plus n-1, n, n+1 added per curve below


def naive(curve, jac, scalar):
    """The oracle: naive double-and-add, normalised to affine."""
    return ec._jac_to_affine(ec._jac_multiply(jac, scalar, curve), curve)


def random_point(curve, seed):
    """A random curve point with a known discrete log kept out of sight."""
    rng = HmacDrbg(seed)
    d = 1 + rng.randint_below(curve.n - 1)
    return ec._jac_to_affine(ec._jac_multiply((curve.gx, curve.gy, 1), d, curve), curve)


def edge_scalars(curve):
    return EDGE_SCALARS + [curve.n - 1, curve.n, curve.n + 1]


@pytest.mark.parametrize("curve", CURVES, ids=CURVE_IDS)
class TestAgreementWithNaive:
    def test_wnaf_on_edge_scalars(self, curve):
        g = (curve.gx, curve.gy, 1)
        for scalar in edge_scalars(curve):
            fast = ec._jac_to_affine(multiply_wnaf(g, scalar, curve), curve)
            assert fast == naive(curve, g, scalar % curve.n), scalar

    def test_fixed_base_table_on_edge_scalars(self, curve):
        table = FixedBaseTable(curve, curve.gx, curve.gy, 4)
        g = (curve.gx, curve.gy, 1)
        for scalar in edge_scalars(curve):
            fast = ec._jac_to_affine(table.multiply(scalar), curve)
            assert fast == naive(curve, g, scalar % curve.n), scalar

    def test_generator_table_on_edge_scalars(self, curve):
        g = (curve.gx, curve.gy, 1)
        for scalar in edge_scalars(curve):
            fast = ec._jac_to_affine(multiply_base(curve, scalar), curve)
            assert fast == naive(curve, g, scalar % curve.n), scalar

    def test_wnaf_of_infinity_is_infinity(self, curve):
        assert multiply_wnaf(ec._INFINITY, 12345, curve)[2] == 0

    def test_shamir_edge_combinations(self, curve):
        qx, qy = random_point(curve, b"shamir-edge" + curve.name.encode())
        g = (curve.gx, curve.gy, 1)
        for u1 in (0, 1, curve.n - 1):
            for u2 in (0, 1, curve.n - 1):
                joint = ec._jac_to_affine(
                    shamir_multiply_jac(curve, u1, qx, qy, u2), curve
                )
                expected = ec._jac_to_affine(
                    ec._jac_add(
                        ec._jac_multiply(g, u1, curve),
                        ec._jac_multiply((qx, qy, 1), u2, curve),
                        curve,
                    ),
                    curve,
                )
                assert joint == expected, (u1, u2)

    def test_shamir_cancellation_hits_infinity(self, curve):
        """u1*G + u2*Q with Q = G and u2 = n - u1 sums to infinity."""
        u1 = 7
        result = shamir_multiply_jac(curve, u1, curve.gx, curve.gy, curve.n - u1)
        assert result[2] == 0
        assert verification_multiply(curve, u1, curve.gx, curve.gy, curve.n - u1) is None


@settings(max_examples=30, deadline=None)
@given(scalar=st.integers(min_value=0), data=st.data())
def test_wnaf_multiply_matches_naive_on_random_scalars(scalar, data):
    curve = data.draw(st.sampled_from(CURVES))
    g = (curve.gx, curve.gy, 1)
    fast = ec._jac_to_affine(multiply_wnaf(g, scalar, curve), curve)
    assert fast == naive(curve, g, scalar % curve.n)


@settings(max_examples=30, deadline=None)
@given(scalar=st.integers(min_value=0), data=st.data())
def test_fixed_base_matches_naive_on_random_scalars(scalar, data):
    curve = data.draw(st.sampled_from(CURVES))
    g = (curve.gx, curve.gy, 1)
    fast = ec._jac_to_affine(multiply_base(curve, scalar), curve)
    assert fast == naive(curve, g, scalar % curve.n)


@settings(max_examples=20, deadline=None)
@given(u1=st.integers(min_value=0), u2=st.integers(min_value=0),
       seed=st.binary(min_size=1, max_size=8), data=st.data())
def test_shamir_matches_naive_on_random_inputs(u1, u2, seed, data):
    curve = data.draw(st.sampled_from(CURVES))
    qx, qy = random_point(curve, b"shamir-prop" + seed)
    joint = ec._jac_to_affine(shamir_multiply_jac(curve, u1, qx, qy, u2), curve)
    expected = ec._jac_to_affine(
        ec._jac_add(
            ec._jac_multiply((curve.gx, curve.gy, 1), u1, curve),
            ec._jac_multiply((qx, qy, 1), u2, curve),
            curve,
        ),
        curve,
    )
    assert joint == expected


@settings(max_examples=50, deadline=None)
@given(scalar=st.integers(min_value=0), width=st.integers(min_value=2, max_value=8))
def test_wnaf_digits_reconstruct_and_are_nonadjacent(scalar, width):
    digits = ec._wnaf(scalar, width)
    assert sum(d << i for i, d in enumerate(digits)) == scalar
    half = 1 << (width - 1)
    for index, digit in enumerate(digits):
        if digit == 0:
            continue
        assert digit % 2 == 1 or digit % 2 == -1
        assert -half < digit < half
        # non-adjacency: the next width-1 digits are all zero
        assert all(d == 0 for d in digits[index + 1 : index + width])


class TestPointPrecomputeCache:
    def test_hot_key_earns_fixed_table_and_lru_evicts(self):
        cache = PointPrecomputeCache(capacity=2, hot_threshold=2)
        points = [random_point(P256, b"lru%d" % i) for i in range(3)]

        first = cache.lookup(P256, *points[0])
        assert first.fixed is None  # one use: odd multiples only
        assert cache.lookup(P256, *points[0]) is first
        assert first.fixed is not None  # second use crossed hot_threshold
        assert cache.stats()["fixed_tables_built"] == 1

        cache.lookup(P256, *points[1])
        cache.lookup(P256, *points[2])  # capacity 2: evicts points[0]
        assert len(cache) == 2
        evicted = cache.lookup(P256, *points[0])  # rebuilt from scratch
        assert evicted is not first and evicted.uses == 1

    def test_verification_multiply_uses_process_cache(self):
        ec.reset_point_cache()
        qx, qy = random_point(P384, b"proc-cache")
        for _ in range(3):
            verification_multiply(P384, 5, qx, qy, 7)
        stats = ec.get_point_cache().stats()
        assert stats == {
            "entries": 1, "hits": 2, "misses": 1, "fixed_tables_built": 1,
        }

    def test_hot_and_cold_paths_agree(self):
        ec.reset_point_cache()
        qx, qy = random_point(P256, b"hot-cold")
        u1, u2 = 0xABCDEF, 0x123456
        cold = verification_multiply(P256, u1, qx, qy, u2)
        hot = verification_multiply(P256, u1, qx, qy, u2)
        assert cold == hot is not None


class TestTrustedConstruction:
    def test_trusted_skips_validation(self):
        off_curve = Point._trusted(P256, 1, 1)
        assert off_curve.x == 1  # no InvalidPointError raised

    def test_public_constructor_still_validates(self):
        with pytest.raises(InvalidPointError):
            Point(P256, 1, 1)

    def test_point_mul_routes_by_base(self):
        g = get_curve("P-256").generator
        assert g.is_generator
        q = 12345 * g
        assert not q.is_generator
        expected = ec._jac_to_affine(
            ec._jac_multiply(q._jacobian(), 3, P256), P256
        )
        product = 3 * q
        assert (product.x, product.y) == expected
