"""Unit tests for the canonical TLV encoding."""

import pytest

from repro.crypto import encoding


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**200,
            -(2**200),
            b"",
            b"\x00\xff",
            "",
            "hello",
            "unicodé ☃",
            [],
            [1, 2, 3],
            [None, [True, [b"nested"]]],
            {},
            {"a": 1},
            {"z": [1], "a": {"k": b"v"}},
        ],
    )
    def test_round_trip(self, value):
        assert encoding.decode(encoding.encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert encoding.encode((1, 2)) == encoding.encode([1, 2])
        assert encoding.decode(encoding.encode((1, 2))) == [1, 2]

    def test_bytearray_encodes_as_bytes(self):
        assert encoding.encode(bytearray(b"ab")) == encoding.encode(b"ab")


class TestCanonicality:
    def test_dict_key_order_is_irrelevant(self):
        first = encoding.encode({"a": 1, "b": 2})
        second = encoding.encode({"b": 2, "a": 1})
        assert first == second

    def test_distinct_values_encode_distinctly(self):
        values = [None, True, False, 0, 1, b"", b"\x00", "", "0", [], {}, [0], {"a": 0}]
        encodings = [encoding.encode(v) for v in values]
        assert len(set(encodings)) == len(encodings)

    def test_int_zero_is_minimal(self):
        # zero has an empty body: tag + 4-byte length only
        assert len(encoding.encode(0)) == 5


class TestErrors:
    def test_unsupported_type_raises(self):
        with pytest.raises(encoding.EncodingError):
            encoding.encode(1.5)

    def test_non_string_dict_key_raises(self):
        with pytest.raises(encoding.EncodingError):
            encoding.encode({1: "x"})

    def test_trailing_bytes_rejected(self):
        data = encoding.encode(1) + b"\x00"
        with pytest.raises(encoding.DecodingError):
            encoding.decode(data)

    def test_truncated_rejected(self):
        data = encoding.encode(b"hello")
        with pytest.raises(encoding.DecodingError):
            encoding.decode(data[:-1])

    def test_unknown_tag_rejected(self):
        with pytest.raises(encoding.DecodingError):
            encoding.decode(b"\x7f\x00\x00\x00\x00")

    def test_non_minimal_int_rejected(self):
        # Craft an int with a leading zero byte in the magnitude.
        bad = bytes([encoding.TAG_INT_POS]) + (2).to_bytes(4, "big") + b"\x00\x01"
        with pytest.raises(encoding.DecodingError):
            encoding.decode(bad)

    def test_negative_zero_rejected(self):
        bad = bytes([encoding.TAG_INT_NEG]) + (0).to_bytes(4, "big")
        with pytest.raises(encoding.DecodingError):
            encoding.decode(bad)

    def test_unsorted_dict_keys_rejected(self):
        key_b = bytes([encoding.TAG_STR]) + (1).to_bytes(4, "big") + b"b"
        key_a = bytes([encoding.TAG_STR]) + (1).to_bytes(4, "big") + b"a"
        one = encoding.encode(1)
        body = key_b + one + key_a + one
        bad = bytes([encoding.TAG_DICT]) + len(body).to_bytes(4, "big") + body
        with pytest.raises(encoding.DecodingError):
            encoding.decode(bad)

    def test_invalid_utf8_rejected(self):
        bad = bytes([encoding.TAG_STR]) + (1).to_bytes(4, "big") + b"\xff"
        with pytest.raises(encoding.DecodingError):
            encoding.decode(bad)

    def test_singleton_with_body_rejected(self):
        bad = bytes([encoding.TAG_NONE]) + (1).to_bytes(4, "big") + b"\x00"
        with pytest.raises(encoding.DecodingError):
            encoding.decode(bad)

    def test_dict_key_without_value_rejected(self):
        key = bytes([encoding.TAG_STR]) + (1).to_bytes(4, "big") + b"a"
        bad = bytes([encoding.TAG_DICT]) + len(key).to_bytes(4, "big") + key
        with pytest.raises(encoding.DecodingError):
            encoding.decode(bad)
