"""HKDF (RFC 5869 vectors) and PBKDF2 tests."""

import pytest

from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract, pbkdf2


class TestHkdfVectors:
    def test_rfc5869_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestHkdfProperties:
    def test_info_separates_outputs(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")

    def test_salt_separates_outputs(self):
        assert hkdf(b"ikm", salt=b"a") != hkdf(b"ikm", salt=b"b")

    def test_length_prefix_consistency(self):
        long = hkdf(b"ikm", info=b"x", length=64)
        short = hkdf(b"ikm", info=b"x", length=32)
        assert long[:32] == short

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", length=-1)

    def test_excessive_length_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", length=256 * 32)

    def test_sha384_variant(self):
        out = hkdf(b"ikm", hash_name="sha384", length=48)
        assert len(out) == 48
        assert out != hkdf(b"ikm", hash_name="sha256", length=48)


class TestPbkdf2:
    def test_rfc6070_style_vector(self):
        # PBKDF2-HMAC-SHA256, password/salt vector from RFC 7914 test data.
        out = pbkdf2(b"passwd", b"salt", iterations=1, length=64)
        assert out[:8] == bytes.fromhex("55ac046e56e3089f")

    def test_iterations_change_output(self):
        assert pbkdf2(b"p", b"s", 1000) != pbkdf2(b"p", b"s", 1001)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            pbkdf2(b"p", b"s", 0)

    def test_length(self):
        assert len(pbkdf2(b"p", b"s", 10, length=17)) == 17
