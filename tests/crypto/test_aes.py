"""AES known-answer tests (FIPS-197) and batch consistency checks."""

import pytest

from repro.crypto.aes import AES, AesError
from repro.crypto.drbg import HmacDrbg

# FIPS-197 appendix C example vectors.
_FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]


class TestKnownAnswers:
    @pytest.mark.parametrize("key_hex,ct_hex", _FIPS_VECTORS)
    def test_fips197_encrypt(self, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(_FIPS_PLAINTEXT) == bytes.fromhex(ct_hex)

    @pytest.mark.parametrize("key_hex,ct_hex", _FIPS_VECTORS)
    def test_fips197_decrypt(self, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == _FIPS_PLAINTEXT

    def test_sbox_round_trip(self):
        from repro.crypto.aes import INV_SBOX, SBOX

        assert sorted(SBOX.tolist()) == list(range(256))
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value
        # Spot checks against the published table.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16


class TestBatchConsistency:
    def test_batch_matches_per_block(self):
        rng = HmacDrbg(b"aes-batch")
        cipher = AES(rng.generate(32))
        blocks = [rng.generate(16) for _ in range(37)]
        batch = cipher.encrypt_blocks(b"".join(blocks))
        singles = b"".join(cipher.encrypt_block(b) for b in blocks)
        assert batch == singles

    def test_round_trip_large(self):
        rng = HmacDrbg(b"aes-roundtrip")
        cipher = AES(rng.generate(16))
        data = rng.generate(16 * 1024)
        assert cipher.decrypt_blocks(cipher.encrypt_blocks(data)) == data

    def test_different_keys_differ(self):
        data = b"\x00" * 16
        assert AES(b"k" * 16).encrypt_block(data) != AES(b"j" * 16).encrypt_block(data)

    def test_empty_input(self):
        cipher = AES(b"k" * 16)
        assert cipher.encrypt_blocks(b"") == b""
        assert cipher.decrypt_blocks(b"") == b""


class TestErrors:
    @pytest.mark.parametrize("size", [0, 8, 15, 17, 33])
    def test_bad_key_size(self, size):
        with pytest.raises(AesError):
            AES(b"\x00" * size)

    def test_bad_block_size(self):
        cipher = AES(b"k" * 16)
        with pytest.raises(AesError):
            cipher.encrypt_block(b"short")
        with pytest.raises(AesError):
            cipher.encrypt_blocks(b"\x00" * 17)
