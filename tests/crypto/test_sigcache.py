"""Signature-verification cache: hits, misses, key binding, eviction."""

import pytest

from repro.crypto import sigcache
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.crypto.sigcache import SignatureVerificationCache, cached_verify


@pytest.fixture
def keypair():
    private = PrivateKey.generate_ecdsa(HmacDrbg(b"sigcache-tests"))
    return private, private.public_key()


class TestCacheBehaviour:
    def test_second_verification_is_a_hit(self, keypair):
        private, public = keypair
        cache = SignatureVerificationCache()
        signature = private.sign(b"msg")
        assert cache.verify(public, b"msg", signature)
        assert cache.verify(public, b"msg", signature)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == 0.5

    def test_false_results_are_cached_too(self, keypair):
        _, public = keypair
        cache = SignatureVerificationCache()
        bogus = b"\x01" * 64
        assert not cache.verify(public, b"msg", bogus)
        assert not cache.verify(public, b"msg", bogus)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_binds_all_inputs(self, keypair):
        """Changing the key, message, hash, or signature must miss."""
        private, public = keypair
        other_public = PrivateKey.generate_ecdsa(HmacDrbg(b"other")).public_key()
        cache = SignatureVerificationCache()
        signature = private.sign(b"msg")
        cache.verify(public, b"msg", signature)
        cache.verify(other_public, b"msg", signature)  # different key
        cache.verify(public, b"msg2", signature)  # different message
        cache.verify(public, b"msg", signature, "sha384")  # different hash
        cache.verify(public, b"msg", signature[:-1] + b"\x00")  # different sig
        assert (cache.hits, cache.misses) == (0, 5)

    def test_tampered_signature_fails_even_after_good_hit(self, keypair):
        private, public = keypair
        cache = SignatureVerificationCache()
        signature = private.sign(b"msg")
        assert cache.verify(public, b"msg", signature)
        tampered = bytes([signature[0] ^ 1]) + signature[1:]
        assert not cache.verify(public, b"msg", tampered)

    def test_lru_eviction_is_bounded(self, keypair):
        private, public = keypair
        cache = SignatureVerificationCache(capacity=4)
        signatures = [private.sign(b"m%d" % i) for i in range(6)]
        for i, signature in enumerate(signatures):
            cache.verify(public, b"m%d" % i, signature)
        assert len(cache) == 4
        # oldest two were evicted: re-verifying them misses again
        cache.verify(public, b"m0", signatures[0])
        assert cache.misses == 7 and cache.hits == 0

    def test_stats_shape(self):
        cache = SignatureVerificationCache()
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "hit_rate": 0.0,
        }

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SignatureVerificationCache(capacity=0)


class TestProcessWideCache:
    def test_public_key_verify_routes_through_cache(self, keypair):
        private, public = keypair
        signature = private.sign(b"routed")
        assert public.verify(b"routed", signature)
        assert public.verify(b"routed", signature)
        assert sigcache.get_cache().stats()["hits"] == 1

    def test_cached_verify_uses_current_default(self, keypair):
        private, public = keypair
        signature = private.sign(b"default")
        cached_verify(public, b"default", signature)
        fresh = sigcache.reset_cache()
        cached_verify(public, b"default", signature)
        assert (fresh.hits, fresh.misses) == (0, 1)

    def test_counters_sample(self, keypair):
        private, public = keypair
        before = sigcache.counters()
        cached_verify(public, b"sampled", private.sign(b"sampled"))
        hits, misses = sigcache.counters()
        assert (hits - before[0], misses - before[1]) == (0, 1)
