"""Tests for XTS, CTR, and the AEAD construction.

The XTS implementation is cross-checked against an independent
straight-line reference implementation written here with plain Python
integers, so a bug would have to appear identically in two very
different codebases to slip through.
"""

import pytest

from repro.crypto.aes import AES, AesError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.modes import AeadCipher, AeadError, CtrCipher, XtsCipher


def _reference_xts_encrypt(key: bytes, sector: int, plaintext: bytes) -> bytes:
    """Naive per-block XTS-plain64 for cross-checking."""
    half = len(key) // 2
    data_aes = AES(key[:half])
    tweak_aes = AES(key[half:])
    tweak = int.from_bytes(
        tweak_aes.encrypt_block(sector.to_bytes(8, "little") + b"\x00" * 8),
        "little",
    )
    out = bytearray()
    for offset in range(0, len(plaintext), 16):
        tweak_bytes = tweak.to_bytes(16, "little")
        block = bytes(a ^ b for a, b in zip(plaintext[offset : offset + 16], tweak_bytes))
        enc = data_aes.encrypt_block(block)
        out += bytes(a ^ b for a, b in zip(enc, tweak_bytes))
        # Multiply tweak by alpha in GF(2^128), little-endian convention.
        carry = tweak >> 127
        tweak = (tweak << 1) & ((1 << 128) - 1)
        if carry:
            tweak ^= 0x87
    return bytes(out)


class TestXts:
    @pytest.fixture
    def rng(self):
        return HmacDrbg(b"xts-tests")

    @pytest.mark.parametrize("key_size", [32, 64])
    def test_matches_reference(self, rng, key_size):
        key = rng.generate(key_size)
        xts = XtsCipher(key, sector_size=512)
        data = rng.generate(512 * 3)
        got = xts.encrypt(data, first_sector=7)
        expected = b"".join(
            _reference_xts_encrypt(key, 7 + i, data[512 * i : 512 * (i + 1)])
            for i in range(3)
        )
        assert got == expected

    def test_round_trip(self, rng):
        xts = XtsCipher(rng.generate(64))
        data = rng.generate(4096 * 5)
        assert xts.decrypt(xts.encrypt(data, 3), 3) == data

    def test_sector_number_matters(self, rng):
        xts = XtsCipher(rng.generate(64))
        data = rng.generate(4096)
        assert xts.encrypt(data, 0) != xts.encrypt(data, 1)

    def test_identical_sectors_encrypt_differently(self, rng):
        xts = XtsCipher(rng.generate(64))
        data = b"\x00" * (4096 * 2)
        ciphertext = xts.encrypt(data, 0)
        assert ciphertext[:4096] != ciphertext[4096:]

    def test_batch_equals_sector_by_sector(self, rng):
        xts = XtsCipher(rng.generate(64))
        data = rng.generate(4096 * 4)
        batch = xts.encrypt(data, 10)
        pieces = b"".join(
            xts.encrypt(data[4096 * i : 4096 * (i + 1)], 10 + i) for i in range(4)
        )
        assert batch == pieces

    def test_empty_input(self, rng):
        xts = XtsCipher(rng.generate(64))
        assert xts.encrypt(b"", 0) == b""
        assert xts.decrypt(b"", 0) == b""

    def test_partial_sector_rejected(self, rng):
        xts = XtsCipher(rng.generate(64))
        with pytest.raises(AesError):
            xts.encrypt(b"\x00" * 100, 0)

    def test_negative_sector_rejected(self, rng):
        xts = XtsCipher(rng.generate(64))
        with pytest.raises(AesError):
            xts.encrypt(b"\x00" * 4096, -1)

    def test_equal_half_keys_rejected(self, rng):
        half = rng.generate(32)
        with pytest.raises(AesError):
            XtsCipher(half + half)

    @pytest.mark.parametrize("size", [0, 16, 31, 48, 65])
    def test_bad_key_size(self, size):
        with pytest.raises(AesError):
            XtsCipher(b"\x01" * size if size else b"")

    def test_bad_sector_size(self, rng):
        with pytest.raises(AesError):
            XtsCipher(rng.generate(64), sector_size=100)


class TestCtr:
    def test_involution(self):
        rng = HmacDrbg(b"ctr")
        ctr = CtrCipher(rng.generate(32))
        counter = rng.generate(16)
        data = rng.generate(1000)  # deliberately not a block multiple
        assert ctr.process(ctr.process(data, counter), counter) == data

    def test_counter_wraparound(self):
        ctr = CtrCipher(b"k" * 32)
        near_max = b"\xff" * 16
        # Must not raise and must still round-trip across the wrap.
        data = b"payload-across-counter-wrap" * 4
        assert ctr.process(ctr.process(data, near_max), near_max) == data

    def test_bad_counter_size(self):
        ctr = CtrCipher(b"k" * 32)
        with pytest.raises(AesError):
            ctr.process(b"data", b"\x00" * 8)

    def test_empty(self):
        ctr = CtrCipher(b"k" * 32)
        assert ctr.process(b"", b"\x00" * 16) == b""


class TestAead:
    @pytest.fixture
    def aead(self):
        return AeadCipher(b"K" * 32)

    def test_round_trip(self, aead):
        nonce = b"n" * 12
        sealed = aead.seal(nonce, b"secret payload", aad=b"header")
        assert aead.open(nonce, sealed, aad=b"header") == b"secret payload"

    def test_tampered_ciphertext_rejected(self, aead):
        nonce = b"n" * 12
        sealed = bytearray(aead.seal(nonce, b"secret"))
        sealed[0] ^= 1
        with pytest.raises(AeadError):
            aead.open(nonce, bytes(sealed))

    def test_tampered_tag_rejected(self, aead):
        nonce = b"n" * 12
        sealed = bytearray(aead.seal(nonce, b"secret"))
        sealed[-1] ^= 1
        with pytest.raises(AeadError):
            aead.open(nonce, bytes(sealed))

    def test_wrong_aad_rejected(self, aead):
        nonce = b"n" * 12
        sealed = aead.seal(nonce, b"secret", aad=b"right")
        with pytest.raises(AeadError):
            aead.open(nonce, sealed, aad=b"wrong")

    def test_wrong_nonce_rejected(self, aead):
        sealed = aead.seal(b"n" * 12, b"secret")
        with pytest.raises(AeadError):
            aead.open(b"m" * 12, sealed)

    def test_wrong_key_rejected(self):
        sealed = AeadCipher(b"K" * 32).seal(b"n" * 12, b"secret")
        with pytest.raises(AeadError):
            AeadCipher(b"J" * 32).open(b"n" * 12, sealed)

    def test_too_short_rejected(self, aead):
        with pytest.raises(AeadError):
            aead.open(b"n" * 12, b"short")

    def test_empty_plaintext(self, aead):
        nonce = b"n" * 12
        assert aead.open(nonce, aead.seal(nonce, b"")) == b""

    def test_bad_key_size(self):
        with pytest.raises(AesError):
            AeadCipher(b"short")
