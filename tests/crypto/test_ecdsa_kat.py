"""ECDSA known-answer tests against an independent implementation.

The static vectors below were produced by OpenSSL (via the
``cryptography`` package): fixed private scalars, fixed messages, and
the (r, s) OpenSSL emitted.  They pin our verifier — fast path and
retained reference path alike — to an implementation that shares no
code with this repo.  When ``cryptography`` is importable, a live
cross-check also signs with our RFC 6979 signer and verifies with
OpenSSL, and vice versa.
"""

import pytest

from repro.crypto.ec import Point, get_curve
from repro.crypto.ecdsa import (
    EcdsaPrivateKey,
    EcdsaPublicKey,
    verify_rs_reference,
)

# (curve, hash, private scalar d, public x, public y, message, r, s)
OPENSSL_VECTORS = [
    ("P-256", "sha256",
     0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721,
     0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6,
     0x7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299,
     b"sample",
     0xD90CDC7E18B490ACBE0C87B4B901604A2129C86F37CAF05E6C25AA3133AD0F3C,
     0x1E2A42346C432864DFEB7D3821C80F715DC23DD1EC9CA518D2F3ADC04A48EDD8),
    ("P-256", "sha256",
     0x1,
     0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
     0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
     b"revelio attestation report",
     0x9C4D87C76752B1D7B3E7BB1FC1B1C171167070191972D3FBAA06D2B15059927E,
     0xB30794884C01C8BE4C5A161616B791B089C5FB0C3B9E6AC174C0C5196BA0CA44),
    ("P-384", "sha384",
     0x6B9D3DAD2E1B8C1C05B19875B6659F4DE23C3B667BF297BA9AA47740787137D896D5724E4C70A825F872C9EA60D2EDF5,
     0xEC3A4E415B4E19A4568618029F427FA5DA9A8BC4AE92E02E06AAE5286B300C64DEF8F0EA9055866064A254515480BC13,
     0x8015D9B72D7D57244EA8EF9AC0C621896708A59367F9DFB9F54CA84B3F1C9DB1288B231C3AE0D4FE7344FD2533264720,
     b"sample",
     0x4C150517B80993C60022AC8901D328FF272DE76C693A1FD64394D2A55BF455021C08C6475D89DF9523EE81DEA55E278B,
     0x534525ADB4690ABF7663EC89E74C5C91AA43A101BB8A0FED7E363974E9746C68B99CFFE52DFEB622EE8D159E7D005742),
    ("P-384", "sha384",
     0x2,
     0x08D999057BA3D2D969260045C55B97F089025959A6F434D651D207D19FB96E9E4FE0E86EBE0E64F85B96A9C75295DF61,
     0x8E80F1FA5B1B3CEDB7BFE8DFFD6DBA74B275D875BC6CC43E904E505F256AB4255FFD43E94D39E22D61501E700A940E80,
     b"vcek chain",
     0x0851EF41C092A8CC119F8AC1298FF2D43AE53501B4A51AE1169A377CB401C40DC352F3198E1A0237E8D5EA5EA0E86366,
     0x685C7450F67A90A073A152AEC59DCDB80CB61FEA639694D92ABBEC669CE0F01068427E1458BC07BFEA5FA32BA6245704),
]

VECTOR_IDS = [f"{c}-{m[:12].decode()}" for c, _, _, _, _, m, _, _ in OPENSSL_VECTORS]


def _public_key(curve_name, x, y):
    curve = get_curve(curve_name)
    return EcdsaPublicKey(Point(curve, x, y))


class TestOpenSslVectors:
    @pytest.mark.parametrize(
        "curve_name,hash_name,d,x,y,message,r,s", OPENSSL_VECTORS, ids=VECTOR_IDS
    )
    def test_fast_path_accepts(self, curve_name, hash_name, d, x, y, message, r, s):
        public = _public_key(curve_name, x, y)
        assert public.verify_rs(message, r, s, hash_name)

    @pytest.mark.parametrize(
        "curve_name,hash_name,d,x,y,message,r,s", OPENSSL_VECTORS, ids=VECTOR_IDS
    )
    def test_reference_path_accepts(
        self, curve_name, hash_name, d, x, y, message, r, s
    ):
        public = _public_key(curve_name, x, y)
        assert verify_rs_reference(public, message, r, s, hash_name)

    @pytest.mark.parametrize(
        "curve_name,hash_name,d,x,y,message,r,s", OPENSSL_VECTORS, ids=VECTOR_IDS
    )
    def test_perturbed_signature_rejected(
        self, curve_name, hash_name, d, x, y, message, r, s
    ):
        public = _public_key(curve_name, x, y)
        n = public.curve.n
        assert not public.verify_rs(message, (r + 1) % n or 1, s, hash_name)
        assert not public.verify_rs(message, r, (s + 1) % n or 1, hash_name)
        assert not public.verify_rs(message + b"x", r, s, hash_name)

    @pytest.mark.parametrize(
        "curve_name,hash_name,d,x,y,message,r,s", OPENSSL_VECTORS, ids=VECTOR_IDS
    )
    def test_scalar_matches_recorded_public_key(
        self, curve_name, hash_name, d, x, y, message, r, s
    ):
        """The vector's d really is the discrete log of (x, y) — guards
        against transcription errors in the table itself."""
        private = EcdsaPrivateKey(get_curve(curve_name), d)
        assert private.public_key().point == Point(get_curve(curve_name), x, y)


class TestLiveCrossCheck:
    """Sign here / verify with OpenSSL and the reverse (skipped when the
    ``cryptography`` package is unavailable)."""

    CURVES = {"P-256": "sha256", "P-384": "sha384"}

    @pytest.fixture(autouse=True)
    def _openssl(self):
        self.cec = pytest.importorskip(
            "cryptography.hazmat.primitives.asymmetric.ec"
        )
        from cryptography.exceptions import InvalidSignature
        from cryptography.hazmat.primitives import hashes as chashes
        from cryptography.hazmat.primitives.asymmetric import utils as cutils

        self.chashes = chashes
        self.cutils = cutils
        self.InvalidSignature = InvalidSignature

    def _openssl_curve(self, name):
        return {"P-256": self.cec.SECP256R1, "P-384": self.cec.SECP384R1}[name]()

    def _openssl_hash(self, name):
        return {"sha256": self.chashes.SHA256, "sha384": self.chashes.SHA384}[name]()

    @pytest.mark.parametrize("curve_name", sorted(CURVES))
    def test_our_signature_verifies_under_openssl(self, curve_name):
        hash_name = self.CURVES[curve_name]
        curve = get_curve(curve_name)
        private = EcdsaPrivateKey(curve, 0xDEADBEEF % curve.n)
        message = b"cross-check " + curve_name.encode()
        signature = private.sign(message, hash_name)
        size = curve.coordinate_size
        r = int.from_bytes(signature[:size], "big")
        s = int.from_bytes(signature[size:], "big")
        point = private.public_key().point
        peer = self.cec.EllipticCurvePublicNumbers(
            point.x, point.y, self._openssl_curve(curve_name)
        ).public_key()
        peer.verify(
            self.cutils.encode_dss_signature(r, s),
            message,
            self.cec.ECDSA(self._openssl_hash(hash_name)),
        )  # raises InvalidSignature on failure

    @pytest.mark.parametrize("curve_name", sorted(CURVES))
    def test_openssl_signature_verifies_here(self, curve_name):
        hash_name = self.CURVES[curve_name]
        curve = get_curve(curve_name)
        key = self.cec.derive_private_key(
            0xFEEDFACE % curve.n, self._openssl_curve(curve_name)
        )
        message = b"reverse cross-check " + curve_name.encode()
        der = key.sign(message, self.cec.ECDSA(self._openssl_hash(hash_name)))
        r, s = self.cutils.decode_dss_signature(der)
        numbers = key.public_key().public_numbers()
        public = _public_key(curve_name, numbers.x, numbers.y)
        assert public.verify_rs(message, r, s, hash_name)
        assert verify_rs_reference(public, message, r, s, hash_name)
