"""RSA key generation, signature, and OAEP encryption tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaError, RsaPrivateKey, RsaPublicKey


@pytest.fixture(scope="module")
def key():
    # Module-scoped: RSA keygen is the slow part of this file.
    return RsaPrivateKey.generate(1024, HmacDrbg(b"rsa-tests"))


@pytest.fixture(scope="module")
def other_key():
    return RsaPrivateKey.generate(1024, HmacDrbg(b"rsa-tests-other"))


class TestKeyGeneration:
    def test_modulus_size(self, key):
        assert key.n.bit_length() == 1024
        assert key.size == 128

    def test_key_relation(self, key):
        # e*d == 1 mod lcm(p-1, q-1) implies the round trip works.
        message = 0x1234567890ABCDEF
        assert pow(pow(message, key.e, key.n), key.d, key.n) == message

    def test_primes_multiply_to_modulus(self, key):
        assert key.p * key.q == key.n

    def test_deterministic_from_seed(self):
        first = RsaPrivateKey.generate(512, HmacDrbg(b"same-seed"))
        second = RsaPrivateKey.generate(512, HmacDrbg(b"same-seed"))
        assert first.n == second.n

    def test_too_small_rejected(self):
        with pytest.raises(RsaError):
            RsaPrivateKey.generate(256, HmacDrbg(b"x"))


class TestSignatures:
    def test_round_trip(self, key):
        signature = key.sign(b"message")
        assert key.public_key().verify(b"message", signature)

    def test_sha384(self, key):
        signature = key.sign(b"message", "sha384")
        assert key.public_key().verify(b"message", signature, "sha384")
        assert not key.public_key().verify(b"message", signature, "sha256")

    def test_wrong_message_rejected(self, key):
        assert not key.public_key().verify(b"other", key.sign(b"message"))

    def test_wrong_key_rejected(self, key, other_key):
        assert not other_key.public_key().verify(b"m", key.sign(b"m"))

    def test_bitflip_rejected(self, key):
        signature = bytearray(key.sign(b"m"))
        signature[10] ^= 1
        assert not key.public_key().verify(b"m", bytes(signature))

    def test_wrong_length_rejected(self, key):
        assert not key.public_key().verify(b"m", b"\x00" * 64)

    def test_unsupported_hash(self, key):
        with pytest.raises(RsaError):
            key.sign(b"m", "sha512")


class TestEncryption:
    def test_round_trip(self, key):
        rng = HmacDrbg(b"enc")
        ciphertext = key.public_key().encrypt(b"top secret", rng)
        assert key.decrypt(ciphertext) == b"top secret"

    def test_randomised(self, key):
        rng = HmacDrbg(b"enc2")
        first = key.public_key().encrypt(b"m", rng)
        second = key.public_key().encrypt(b"m", rng)
        assert first != second
        assert key.decrypt(first) == key.decrypt(second) == b"m"

    def test_tampered_ciphertext_rejected(self, key):
        rng = HmacDrbg(b"enc3")
        ciphertext = bytearray(key.public_key().encrypt(b"m", rng))
        ciphertext[5] ^= 1
        with pytest.raises(RsaError):
            key.decrypt(bytes(ciphertext))

    def test_wrong_key_rejected(self, key, other_key):
        rng = HmacDrbg(b"enc4")
        ciphertext = key.public_key().encrypt(b"m", rng)
        with pytest.raises(RsaError):
            other_key.decrypt(ciphertext)

    def test_plaintext_too_long(self, key):
        rng = HmacDrbg(b"enc5")
        with pytest.raises(RsaError):
            key.public_key().encrypt(b"\x00" * 100, rng)

    def test_empty_plaintext(self, key):
        rng = HmacDrbg(b"enc6")
        assert key.decrypt(key.public_key().encrypt(b"", rng)) == b""

    def test_wrong_ciphertext_length(self, key):
        with pytest.raises(RsaError):
            key.decrypt(b"\x00" * 10)


class TestEncoding:
    def test_public_key_round_trip(self, key):
        public = key.public_key()
        assert RsaPublicKey.decode(public.encode()) == public

    def test_fingerprint_distinct(self, key, other_key):
        assert key.public_key().fingerprint() != other_key.public_key().fingerprint()
