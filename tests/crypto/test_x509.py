"""Certificate, CSR, and chain-validation tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.crypto.x509 import (
    Certificate,
    CertificateError,
    CertificateIssuer,
    CertificateSigningRequest,
    Name,
    validate_chain,
)

NOW = 1_000_000
LATER = 2_000_000


@pytest.fixture(scope="module")
def rng():
    return HmacDrbg(b"x509-tests")


@pytest.fixture(scope="module")
def root(rng):
    key = PrivateKey.generate_ecdsa(rng, "P-384")
    return CertificateIssuer.self_signed_root(
        Name("Test Root CA", organization="TestOrg"), key, NOW - 100, LATER
    )


@pytest.fixture(scope="module")
def intermediate(rng, root):
    key = PrivateKey.generate_ecdsa(rng)
    cert = root.issue(
        Name("Test Intermediate"), key.public_key(), NOW - 50, LATER, is_ca=True,
        path_length=0,
    )
    return CertificateIssuer(cert, key)


@pytest.fixture(scope="module")
def leaf(rng, intermediate):
    key = PrivateKey.generate_ecdsa(rng)
    cert = intermediate.issue(
        Name("example.com"),
        key.public_key(),
        NOW - 10,
        LATER,
        san=("example.com", "www.example.com", "*.api.example.com"),
    )
    return cert, key


class TestChainValidation:
    def test_valid_chain(self, root, intermediate, leaf):
        cert, _ = leaf
        validate_chain(
            [cert, intermediate.certificate],
            [root.certificate],
            now=NOW,
            hostname="example.com",
        )

    def test_chain_including_root(self, root, intermediate, leaf):
        cert, _ = leaf
        validate_chain(
            [cert, intermediate.certificate, root.certificate],
            [root.certificate],
            now=NOW,
        )

    def test_untrusted_root_rejected(self, rng, intermediate, leaf):
        cert, _ = leaf
        other_key = PrivateKey.generate_ecdsa(rng)
        other_root = CertificateIssuer.self_signed_root(
            Name("Other Root"), other_key, NOW - 100, LATER
        )
        with pytest.raises(CertificateError):
            validate_chain(
                [cert, intermediate.certificate], [other_root.certificate], now=NOW
            )

    def test_expired_leaf_rejected(self, rng, root, intermediate):
        key = PrivateKey.generate_ecdsa(rng)
        cert = intermediate.issue(
            Name("expired.com"), key.public_key(), NOW - 100, NOW - 1
        )
        with pytest.raises(CertificateError, match="expired"):
            validate_chain(
                [cert, intermediate.certificate], [root.certificate], now=NOW
            )

    def test_not_yet_valid_rejected(self, rng, root, intermediate):
        key = PrivateKey.generate_ecdsa(rng)
        cert = intermediate.issue(
            Name("future.com"), key.public_key(), NOW + 100, LATER
        )
        with pytest.raises(CertificateError):
            validate_chain(
                [cert, intermediate.certificate], [root.certificate], now=NOW
            )

    def test_hostname_mismatch_rejected(self, root, intermediate, leaf):
        cert, _ = leaf
        with pytest.raises(CertificateError, match="hostname"):
            validate_chain(
                [cert, intermediate.certificate],
                [root.certificate],
                now=NOW,
                hostname="evil.com",
            )

    def test_non_ca_intermediate_rejected(self, rng, root, intermediate, leaf):
        cert, _ = leaf
        key = PrivateKey.generate_ecdsa(rng)
        non_ca = intermediate.issue(Name("notaca.com"), key.public_key(), NOW, LATER)
        with pytest.raises(CertificateError):
            validate_chain([cert, non_ca], [root.certificate], now=NOW)

    def test_tampered_signature_rejected(self, root, intermediate, leaf):
        cert, _ = leaf
        from dataclasses import replace

        bad = replace(cert, signature=bytes(64))
        with pytest.raises(CertificateError):
            validate_chain(
                [bad, intermediate.certificate], [root.certificate], now=NOW
            )

    def test_tampered_subject_rejected(self, root, intermediate, leaf):
        cert, _ = leaf
        from dataclasses import replace

        bad = replace(cert, subject=Name("evil.com"), san=("evil.com",))
        with pytest.raises(CertificateError):
            validate_chain(
                [bad, intermediate.certificate],
                [root.certificate],
                now=NOW,
                hostname="evil.com",
            )

    def test_empty_chain_rejected(self, root):
        with pytest.raises(CertificateError):
            validate_chain([], [root.certificate], now=NOW)

    def test_issuer_mismatch_rejected(self, rng, root, leaf):
        cert, _ = leaf
        key = PrivateKey.generate_ecdsa(rng)
        unrelated_ca = CertificateIssuer.self_signed_root(
            Name("Unrelated CA"), key, NOW - 100, LATER
        )
        with pytest.raises(CertificateError, match="issuer mismatch|trust anchor"):
            validate_chain(
                [cert, unrelated_ca.certificate], [root.certificate], now=NOW
            )


class TestHostnameMatching:
    def test_exact_san(self, leaf):
        cert, _ = leaf
        assert cert.matches_hostname("www.example.com")

    def test_case_insensitive(self, leaf):
        cert, _ = leaf
        assert cert.matches_hostname("WWW.EXAMPLE.COM")

    def test_wildcard_one_label(self, leaf):
        cert, _ = leaf
        assert cert.matches_hostname("v1.api.example.com")
        assert not cert.matches_hostname("a.b.api.example.com")

    def test_wildcard_does_not_match_bare_domain(self, leaf):
        cert, _ = leaf
        assert not cert.matches_hostname("api.example.com")


class TestSerialization:
    def test_round_trip(self, leaf):
        cert, _ = leaf
        assert Certificate.decode(cert.encode()) == cert

    def test_fingerprint_covers_signature(self, leaf):
        cert, _ = leaf
        from dataclasses import replace

        assert cert.fingerprint() != replace(cert, signature=b"x").fingerprint()

    def test_malformed_rejected(self):
        with pytest.raises((CertificateError, ValueError)):
            Certificate.decode(b"garbage")

    def test_extension_lookup(self, rng, intermediate):
        key = PrivateKey.generate_ecdsa(rng)
        cert = intermediate.issue(
            Name("ext.com"), key.public_key(), NOW, LATER,
            extensions=(("chip_id", b"\xab" * 64),),
        )
        assert cert.extension("chip_id") == b"\xab" * 64
        assert cert.extension("missing") is None


class TestCsr:
    def test_create_and_verify(self, rng):
        key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(
            Name("service.example"), key, san=("service.example",)
        )
        assert csr.verify()

    def test_round_trip(self, rng):
        key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(Name("s.example"), key)
        decoded = CertificateSigningRequest.decode(csr.encode())
        assert decoded == csr
        assert decoded.verify()

    def test_tampered_subject_fails_pop(self, rng):
        from dataclasses import replace

        key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(Name("honest.example"), key)
        bad = replace(csr, subject=Name("evil.example"))
        assert not bad.verify()

    def test_swapped_key_fails_pop(self, rng):
        from dataclasses import replace

        key = PrivateKey.generate_ecdsa(rng)
        other = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(Name("x.example"), key)
        bad = replace(csr, public_key=other.public_key())
        assert not bad.verify()

    def test_unsigned_fails(self, rng):
        key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest(
            subject=Name("x"), public_key=key.public_key()
        )
        assert not csr.verify()

    def test_fingerprint_distinct(self, rng):
        key = PrivateKey.generate_ecdsa(rng)
        csr1 = CertificateSigningRequest.create(Name("a.example"), key)
        csr2 = CertificateSigningRequest.create(Name("b.example"), key)
        assert csr1.fingerprint() != csr2.fingerprint()


class TestRsaIssuer:
    def test_rsa_root_signs_ecdsa_leaf(self, rng):
        rsa_key = PrivateKey.generate_rsa(rng, bits=1024)
        rsa_root = CertificateIssuer.self_signed_root(
            Name("RSA Root"), rsa_key, NOW - 100, LATER
        )
        leaf_key = PrivateKey.generate_ecdsa(rng)
        cert = rsa_root.issue(
            Name("mixed.example"), leaf_key.public_key(), NOW, LATER,
            san=("mixed.example",),
        )
        validate_chain([cert], [rsa_root.certificate], now=NOW,
                       hostname="mixed.example")

    def test_non_ca_cannot_issue(self, rng, intermediate):
        key = PrivateKey.generate_ecdsa(rng)
        cert = intermediate.issue(Name("leaf.com"), key.public_key(), NOW, LATER)
        fake_issuer = CertificateIssuer(cert, key)
        with pytest.raises(CertificateError):
            fake_issuer.issue(Name("child.com"), key.public_key(), NOW, LATER)
