"""HMAC-DRBG determinism and stream-separation tests."""

import pytest

from repro.crypto.drbg import HmacDrbg, system_drbg


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert HmacDrbg(b"seed").generate(100) == HmacDrbg(b"seed").generate(100)

    def test_different_seeds_different_streams(self):
        assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)

    def test_chunking_consistency(self):
        # generate(64) != generate(32)+generate(32) in HMAC_DRBG (each call
        # finalises state), but repeated runs must agree with themselves.
        first = HmacDrbg(b"s")
        second = HmacDrbg(b"s")
        assert first.generate(32) + first.generate(32) == (
            second.generate(32) + second.generate(32)
        )

    def test_reseed_changes_stream(self):
        plain = HmacDrbg(b"s")
        reseeded = HmacDrbg(b"s")
        reseeded.reseed(b"extra entropy")
        assert plain.generate(32) != reseeded.generate(32)


class TestOutputs:
    def test_lengths(self):
        rng = HmacDrbg(b"s")
        for length in (0, 1, 31, 32, 33, 100):
            assert len(rng.generate(length)) == length

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").generate(-1)

    def test_non_bytes_seed_rejected(self):
        with pytest.raises(TypeError):
            HmacDrbg("string seed")  # type: ignore[arg-type]


class TestRandintBelow:
    def test_range(self):
        rng = HmacDrbg(b"ints")
        for _ in range(200):
            assert 0 <= rng.randint_below(7) < 7

    def test_bound_one(self):
        assert HmacDrbg(b"x").randint_below(1) == 0

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"x").randint_below(0)

    def test_covers_full_range(self):
        rng = HmacDrbg(b"cover")
        seen = {rng.randint_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestFork:
    def test_forks_are_independent(self):
        parent = HmacDrbg(b"parent")
        child_a = parent.fork(b"a")
        child_b = parent.fork(b"b")
        assert child_a.generate(32) != child_b.generate(32)

    def test_fork_deterministic(self):
        first = HmacDrbg(b"p").fork(b"label")
        second = HmacDrbg(b"p").fork(b"label")
        assert first.generate(32) == second.generate(32)


def test_system_drbg_produces_output():
    assert len(system_drbg().generate(16)) == 16
