"""Property tests for RLC batch verification (DESIGN.md invariant 15).

Every verdict a batch emits must equal what
:func:`repro.crypto.ecdsa.verify_rs_reference` would say for that item
alone — on clean batches, on adversarial mixes, after bisection, and on
every fallback path (hash/curve mismatch, foreign curves, malformed
signatures).
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import batch as batch_mod
from repro.crypto.batch import (
    BatchItem,
    BatchVerifier,
    BlinderReuseError,
    verify_batch,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ec import get_curve
from repro.crypto.ecdsa import (
    CurveHashMismatchWarning,
    EcdsaPrivateKey,
    verify_rs_reference,
)

P256 = get_curve("P-256")
P384 = get_curve("P-384")

#: A fixed pool of signing keys; generating one is a base-point
#: multiply, so the pool is built once at import.
KEYS_P256 = [
    EcdsaPrivateKey.generate(P256, HmacDrbg(b"batch-key-%d" % i))
    for i in range(6)
]
KEYS_P384 = [
    EcdsaPrivateKey.generate(P384, HmacDrbg(b"batch-key-384-%d" % i))
    for i in range(2)
]


def split_rs(curve, signature):
    size = curve.coordinate_size
    return (
        int.from_bytes(signature[:size], "big"),
        int.from_bytes(signature[size:], "big"),
    )


def corrupt(signature: bytes, bit: int) -> bytes:
    """Flip one bit somewhere in the s half (stays well-formed with
    overwhelming probability, so the reference path is exercised)."""
    data = bytearray(signature)
    index = len(data) // 2 + (bit // 8) % (len(data) // 2)
    data[index] ^= 1 << (bit % 8)
    return bytes(data)


def reference_verdict(item: BatchItem) -> bool:
    key = getattr(item.key, "inner", item.key)
    size = key.curve.coordinate_size
    if len(item.signature) != 2 * size:
        return False
    r, s = split_rs(key.curve, item.signature)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CurveHashMismatchWarning)
        return verify_rs_reference(
            key.public_key() if hasattr(key, "public_key") else key,
            item.message, r, s, item.hash_name,
        )


class TestVerdictsMatchReference:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(KEYS_P256) - 1),
                st.binary(min_size=0, max_size=40),
                st.one_of(
                    st.none(),  # valid signature
                    st.integers(min_value=0, max_value=255),  # bit to flip
                ),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_mixed_valid_invalid_batches(self, spec):
        """Valid/invalid mixes: each verdict equals the reference oracle."""
        items = []
        for key_index, message, tamper in spec:
            private = KEYS_P256[key_index]
            signature = private.sign(message)
            if tamper is not None:
                signature = corrupt(signature, tamper)
            items.append(
                BatchItem(private.public_key(), message, signature, "sha256")
            )
        verdicts = verify_batch(items, HmacDrbg(b"test-mixed"))
        for item, verdict in zip(items, verdicts):
            assert verdict == reference_verdict(item)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=255),
    )
    def test_single_forged_sig_in_64_batch_isolated(self, forged, bit):
        """One forged member in a 64-batch: bisection isolates exactly
        it, every honest member still verifies True."""
        items = []
        for i in range(64):
            private = KEYS_P256[i % len(KEYS_P256)]
            message = b"member-%d" % i
            signature = private.sign(message)
            if i == forged:
                signature = corrupt(signature, bit)
            items.append(
                BatchItem(private.public_key(), message, signature, "sha256")
            )
        verifier = BatchVerifier(HmacDrbg(b"test-forged"))
        result = verifier.verify(items)
        expected = [i != forged for i in range(64)]
        # A flipped bit can (rarely) still be a valid signature only with
        # probability ~2^-256; the forged slot must come back False.
        assert result.verdicts == expected
        # The full-batch equation failed, so the bisection tree ran and
        # bottomed out in per-signature leaves around the forgery.
        assert result.bisections >= 1
        assert result.msm_checks >= 2
        assert result.per_sig_fallbacks >= 1


class TestBlinderDiscipline:
    def test_blinder_reuse_across_batches_rejected(self):
        private = KEYS_P256[0]
        items = [
            BatchItem(private.public_key(), b"msg-%d" % i,
                      private.sign(b"msg-%d" % i), "sha256")
            for i in range(4)
        ]
        verifier = BatchVerifier(HmacDrbg(b"test-blinders"))
        blinders = [(17 * (i + 1)) << 96 for i in range(4)]
        assert all(verifier.verify(items, blinders=list(blinders)).verdicts)
        with pytest.raises(BlinderReuseError):
            verifier.verify(items, blinders=list(blinders))

    def test_fresh_drbg_blinders_never_collide(self):
        """The DRBG path draws a fresh set every batch: two identical
        batches both verify (no implicit reuse rejection)."""
        private = KEYS_P256[1]
        items = [
            BatchItem(private.public_key(), b"again", private.sign(b"again"))
        ]
        verifier = BatchVerifier(HmacDrbg(b"test-fresh"))
        assert verifier.verify(items).verdicts == [True]
        assert verifier.verify(items).verdicts == [True]


class TestFallbackPaths:
    def test_curve_hash_mismatch_falls_back_per_signature(self):
        """A P-384 signature hashed with sha256 truncates the digest;
        those items take the per-signature path (which owns the PR-3
        warning) and still agree with the reference."""
        private = KEYS_P384[0]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CurveHashMismatchWarning)
            mismatch_sig = private.sign(b"short-hash", "sha256")
        good = KEYS_P256[2]
        items = [
            BatchItem(good.public_key(), b"fine", good.sign(b"fine")),
            BatchItem(good.public_key(), b"fine2", good.sign(b"fine2")),
            BatchItem(private.public_key(), b"short-hash", mismatch_sig,
                      "sha256"),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("always")
            caught = []
            warnings.showwarning = lambda *a, **k: caught.append(a[0])
            result = BatchVerifier(HmacDrbg(b"test-mismatch")).verify(items)
        assert result.verdicts == [True, True, True]
        assert result.per_sig_fallbacks == 1
        assert any(isinstance(w, CurveHashMismatchWarning) for w in caught)

    def test_foreign_curve_items_fall_back(self):
        """One curve per batch: the dominant curve batches, the other
        verifies per-signature — verdicts still all correct."""
        p256 = KEYS_P256[3]
        p384 = KEYS_P384[1]
        items = [
            BatchItem(p256.public_key(), b"a", p256.sign(b"a"), "sha256"),
            BatchItem(p384.public_key(), b"b", p384.sign(b"b", "sha384"),
                      "sha384"),
            BatchItem(p256.public_key(), b"c", p256.sign(b"c"), "sha256"),
        ]
        result = BatchVerifier(HmacDrbg(b"test-foreign")).verify(items)
        assert result.verdicts == [True, True, True]
        assert result.per_sig_fallbacks == 1

    def test_malformed_signature_is_false_without_fallback(self):
        private = KEYS_P256[4]
        items = [
            BatchItem(private.public_key(), b"ok", private.sign(b"ok")),
            BatchItem(private.public_key(), b"short", b"\x01\x02\x03"),
            BatchItem(private.public_key(), b"zero",
                      b"\x00" * (2 * P256.coordinate_size)),
        ]
        result = BatchVerifier(HmacDrbg(b"test-malformed")).verify(items)
        assert result.verdicts == [True, False, False]


class TestHintsAndDedup:
    def test_hinted_batch_passes_in_one_msm(self):
        """Fresh signatures leave recovery hints, so a clean batch is a
        single batch equation: no bisection, everything hinted."""
        items = []
        for i in range(16):
            private = KEYS_P256[i % len(KEYS_P256)]
            message = b"hinted-%d" % i
            items.append(
                BatchItem(private.public_key(), message,
                          private.sign(message))
            )
        result = BatchVerifier(HmacDrbg(b"test-hinted")).verify(items)
        assert all(result.verdicts)
        assert result.msm_checks == 1
        assert result.bisections == 0
        assert result.hinted == 16

    def test_missing_hints_still_yield_correct_verdicts(self):
        """Hints are untrusted performance data: with the table wiped,
        wrong-parity candidates cost bisections, never verdicts."""
        private = KEYS_P256[5]
        items = [
            BatchItem(private.public_key(), b"unhinted-%d" % i,
                      private.sign(b"unhinted-%d" % i))
            for i in range(8)
        ]
        saved = batch_mod.recovery_hints()
        batch_mod.reset_recovery_hints()
        try:
            result = BatchVerifier(HmacDrbg(b"test-unhinted")).verify(items)
        finally:
            batch_mod._hints = saved
        assert all(result.verdicts)

    def test_duplicate_items_deduplicated(self):
        """The fleet's repeated chain links collapse: N copies of one
        (key, message, signature) verify once and fan the verdict out."""
        private = KEYS_P256[0]
        signature = private.sign(b"shared-link")
        public = private.public_key()
        items = [
            BatchItem(public, b"shared-link", signature) for _ in range(5)
        ] + [BatchItem(public, b"unique", private.sign(b"unique"))]
        result = BatchVerifier(HmacDrbg(b"test-dedup")).verify(items)
        assert all(result.verdicts)
        assert result.deduplicated == 4

    def test_empty_batch(self):
        result = BatchVerifier(HmacDrbg(b"test-empty")).verify([])
        assert result.verdicts == [] and result.msm_checks == 0
