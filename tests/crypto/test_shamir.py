"""Shamir secret sharing tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.shamir import (
    DEFAULT_PRIME,
    Share,
    ShamirError,
    reconstruct_secret,
    split_secret,
)


@pytest.fixture
def rng():
    return HmacDrbg(b"shamir")


class TestSplitReconstruct:
    def test_round_trip(self, rng):
        secret = 0xDEADBEEF
        shares = split_secret(secret, threshold=3, num_shares=5, rng=rng)
        assert reconstruct_secret(shares[:3], 3) == secret

    def test_any_subset_works(self, rng):
        import itertools

        secret = 424242
        shares = split_secret(secret, threshold=2, num_shares=4, rng=rng)
        for subset in itertools.combinations(shares, 2):
            assert reconstruct_secret(list(subset), 2) == secret

    def test_threshold_one(self, rng):
        shares = split_secret(99, threshold=1, num_shares=3, rng=rng)
        for share in shares:
            assert reconstruct_secret([share], 1) == 99

    def test_full_threshold(self, rng):
        secret = 7
        shares = split_secret(secret, threshold=5, num_shares=5, rng=rng)
        assert reconstruct_secret(shares, 5) == secret

    def test_insufficient_shares_raise(self, rng):
        shares = split_secret(1, threshold=3, num_shares=5, rng=rng)
        with pytest.raises(ShamirError):
            reconstruct_secret(shares[:2], 3)

    def test_below_threshold_reveals_nothing(self, rng):
        # With t-1 shares, interpolating with a *guessed* extra share can
        # produce any value: reconstruct with a wrong share and check the
        # result differs from the secret (overwhelmingly likely).
        secret = 123456789
        shares = split_secret(secret, threshold=3, num_shares=3, rng=rng)
        forged = Share(index=shares[2].index, value=(shares[2].value + 1) % DEFAULT_PRIME)
        assert reconstruct_secret([shares[0], shares[1], forged], 3) != secret


class TestValidation:
    def test_bad_threshold(self, rng):
        with pytest.raises(ShamirError):
            split_secret(1, threshold=0, num_shares=3, rng=rng)
        with pytest.raises(ShamirError):
            split_secret(1, threshold=4, num_shares=3, rng=rng)

    def test_secret_out_of_range(self, rng):
        with pytest.raises(ShamirError):
            split_secret(DEFAULT_PRIME, threshold=1, num_shares=1, rng=rng)
        with pytest.raises(ShamirError):
            split_secret(-1, threshold=1, num_shares=1, rng=rng)

    def test_duplicate_indices_rejected(self, rng):
        shares = split_secret(5, threshold=2, num_shares=3, rng=rng)
        with pytest.raises(ShamirError):
            reconstruct_secret([shares[0], shares[0]], 2)

    def test_zero_secret(self, rng):
        shares = split_secret(0, threshold=2, num_shares=3, rng=rng)
        assert reconstruct_secret(shares[:2], 2) == 0
