"""ECDSA tests: RFC 6979 known answers, tamper rejection, ECDH."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.ec import P256, P384, InvalidPointError, Point, get_curve
from repro.crypto.ecdsa import EcdsaPrivateKey, EcdsaPublicKey

# RFC 6979 appendix A.2.5 (P-256) and A.2.6 (P-384), message "sample".
_P256_KEY = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
_P256_SAMPLE_R = 0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716
_P256_SAMPLE_S = 0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8
_P256_TEST_R = 0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367
_P256_TEST_S = 0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083

_P384_KEY = int(
    "6B9D3DAD2E1B8C1C05B19875B6659F4DE23C3B667BF297BA9AA47740787137D8"
    "96D5724E4C70A825F872C9EA60D2EDF5",
    16,
)
_P384_SAMPLE_R = int(
    "94EDBB92A5ECB8AAD4736E56C691916B3F88140666CE9FA73D64C4EA95AD133C"
    "81A648152E44ACF96E36DD1E80FABE46",
    16,
)
_P384_SAMPLE_S = int(
    "99EF4AEB15F178CEA1FE40DB2603138F130E740A19624526203B6351D0A3A94F"
    "A329C145786E679E7B82C71A38628AC8",
    16,
)


class TestKnownAnswers:
    def test_rfc6979_p256_sample(self):
        key = EcdsaPrivateKey(P256, _P256_KEY)
        signature = key.sign(b"sample", "sha256")
        assert int.from_bytes(signature[:32], "big") == _P256_SAMPLE_R
        assert int.from_bytes(signature[32:], "big") == _P256_SAMPLE_S

    def test_rfc6979_p256_test(self):
        key = EcdsaPrivateKey(P256, _P256_KEY)
        signature = key.sign(b"test", "sha256")
        assert int.from_bytes(signature[:32], "big") == _P256_TEST_R
        assert int.from_bytes(signature[32:], "big") == _P256_TEST_S

    def test_rfc6979_p384_sample(self):
        key = EcdsaPrivateKey(P384, _P384_KEY)
        signature = key.sign(b"sample", "sha384")
        assert int.from_bytes(signature[:48], "big") == _P384_SAMPLE_R
        assert int.from_bytes(signature[48:], "big") == _P384_SAMPLE_S

    def test_rfc6979_public_key_p256(self):
        key = EcdsaPrivateKey(P256, _P256_KEY)
        point = key.public_key().point
        assert point.x == 0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6
        assert point.y == 0x7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299


class TestSignVerify:
    @pytest.fixture
    def rng(self):
        return HmacDrbg(b"ecdsa-tests")

    @pytest.mark.parametrize("curve,hash_name", [(P256, "sha256"), (P384, "sha384")])
    def test_round_trip(self, rng, curve, hash_name):
        key = EcdsaPrivateKey.generate(curve, rng)
        signature = key.sign(b"message", hash_name)
        assert key.public_key().verify(b"message", signature, hash_name)

    def test_deterministic(self, rng):
        key = EcdsaPrivateKey.generate(P256, rng)
        assert key.sign(b"m") == key.sign(b"m")

    def test_wrong_message_rejected(self, rng):
        key = EcdsaPrivateKey.generate(P256, rng)
        signature = key.sign(b"message")
        assert not key.public_key().verify(b"other", signature)

    def test_bitflip_rejected(self, rng):
        key = EcdsaPrivateKey.generate(P256, rng)
        signature = bytearray(key.sign(b"message"))
        for index in range(0, len(signature), 7):
            flipped = bytearray(signature)
            flipped[index] ^= 0x01
            assert not key.public_key().verify(b"message", bytes(flipped))

    def test_wrong_key_rejected(self, rng):
        key = EcdsaPrivateKey.generate(P256, rng)
        other = EcdsaPrivateKey.generate(P256, rng)
        assert not other.public_key().verify(b"message", key.sign(b"message"))

    def test_wrong_length_signature_rejected(self, rng):
        key = EcdsaPrivateKey.generate(P256, rng)
        assert not key.public_key().verify(b"m", b"\x01" * 63)
        assert not key.public_key().verify(b"m", b"")

    def test_zero_rs_rejected(self, rng):
        key = EcdsaPrivateKey.generate(P256, rng)
        assert not key.public_key().verify(b"m", b"\x00" * 64)

    def test_scalar_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EcdsaPrivateKey(P256, 0)
        with pytest.raises(ValueError):
            EcdsaPrivateKey(P256, P256.n)


class TestEncoding:
    def test_public_round_trip(self):
        rng = HmacDrbg(b"enc")
        key = EcdsaPrivateKey.generate(P384, rng).public_key()
        assert EcdsaPublicKey.decode(key.encode()) == key

    def test_private_round_trip(self):
        rng = HmacDrbg(b"enc")
        key = EcdsaPrivateKey.generate(P256, rng)
        assert EcdsaPrivateKey.decode(key.encode()) == key

    def test_fingerprint_is_stable_and_distinct(self):
        rng = HmacDrbg(b"fp")
        key1 = EcdsaPrivateKey.generate(P256, rng).public_key()
        key2 = EcdsaPrivateKey.generate(P256, rng).public_key()
        assert key1.fingerprint() == key1.fingerprint()
        assert key1.fingerprint() != key2.fingerprint()


class TestEcdh:
    def test_shared_secret_agreement(self):
        rng = HmacDrbg(b"ecdh")
        alice = EcdsaPrivateKey.generate(P256, rng)
        bob = EcdsaPrivateKey.generate(P256, rng)
        assert alice.ecdh(bob.public_key()) == bob.ecdh(alice.public_key())

    def test_different_peers_different_secrets(self):
        rng = HmacDrbg(b"ecdh2")
        alice = EcdsaPrivateKey.generate(P256, rng)
        bob = EcdsaPrivateKey.generate(P256, rng)
        carol = EcdsaPrivateKey.generate(P256, rng)
        assert alice.ecdh(bob.public_key()) != alice.ecdh(carol.public_key())

    def test_curve_mismatch_rejected(self):
        rng = HmacDrbg(b"ecdh3")
        alice = EcdsaPrivateKey.generate(P256, rng)
        bob = EcdsaPrivateKey.generate(P384, rng)
        with pytest.raises(ValueError):
            alice.ecdh(bob.public_key())


class TestCurveArithmetic:
    def test_generator_order(self):
        for curve in (P256, P384):
            assert (curve.n * curve.generator).is_infinity

    def test_add_negation_is_infinity(self):
        g = P256.generator
        assert (g + (-g)).is_infinity

    def test_associativity_spot_check(self):
        g = P256.generator
        assert (2 * g) + (3 * g) == 5 * g
        assert (7 * g) + (11 * g) == 18 * g

    def test_point_validation(self):
        with pytest.raises(InvalidPointError):
            Point(P256, 1, 1)

    def test_point_codec(self):
        point = 12345 * P256.generator
        assert Point.decode(P256, point.encode()) == point
        assert Point.decode(P256, b"\x00").is_infinity

    def test_malformed_point_encoding(self):
        with pytest.raises(InvalidPointError):
            Point.decode(P256, b"\x04" + b"\x00" * 10)

    def test_unknown_curve(self):
        with pytest.raises(ValueError):
            get_curve("P-521")


class TestCurveHashMismatchWarning:
    """P-384 with the default sha256 truncates the digest below the
    curve order; sign and verify both warn (AMD uses SHA-384)."""

    @pytest.fixture
    def p384_key(self):
        return EcdsaPrivateKey.generate(P384, HmacDrbg(b"mismatch"))

    def test_sign_warns_on_short_hash(self, p384_key):
        from repro.crypto.ecdsa import CurveHashMismatchWarning

        with pytest.warns(CurveHashMismatchWarning, match="P-384 with sha256"):
            p384_key.sign(b"report", "sha256")

    def test_verify_warns_on_short_hash(self, p384_key):
        import warnings

        from repro.crypto.ecdsa import CurveHashMismatchWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CurveHashMismatchWarning)
            signature = p384_key.sign(b"report", "sha256")
        public = p384_key.public_key()
        with pytest.warns(CurveHashMismatchWarning, match="ECDSA verification"):
            assert public.verify(b"report", signature, "sha256")

    def test_matching_hash_is_silent(self, p384_key):
        import warnings

        public = p384_key.public_key()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            signature = p384_key.sign(b"report", "sha384")
            assert public.verify(b"report", signature, "sha384")

    def test_p256_with_sha256_is_silent(self):
        import warnings

        key = EcdsaPrivateKey.generate(P256, HmacDrbg(b"mismatch-256"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            signature = key.sign(b"report")
            assert key.public_key().verify(b"report", signature)
