"""Unit tests for the campaign DSL and the injector registry."""

import pytest

from repro.scenarios import (
    ARENAS,
    CAMPAIGNS,
    CampaignSpec,
    LAYERS,
    NAMESPACES,
    ScenarioSpec,
    campaign_names,
    create,
    get_campaign,
    registered_injectors,
    scenario,
)


class TestScenarioSpec:
    def test_scenario_helper_freezes_params(self):
        spec = scenario(
            "probe", "gateway", "backend_kill", "gateway:backend_unreachable",
            params={"victim": 1, "mode": "hard"},
            benign={"victim": 0},
        )
        assert spec.params == (("mode", "hard"), ("victim", 1))
        assert spec.params_dict() == {"mode": "hard", "victim": 1}
        assert spec.benign_params_dict() == {"victim": 0}
        assert spec.expected_namespace == "gateway"
        assert spec.expected_reason == "backend_unreachable"
        assert spec.title == "probe"

    def test_structurally_equal_specs_compare_equal(self):
        a = scenario("x", "kds", "kds_blackhole", "attest:kds_unreachable",
                     params={"b": 2, "a": 1})
        b = scenario("x", "kds", "kds_blackhole", "attest:kds_unreachable",
                     params={"a": 1, "b": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_benign_none_means_no_twin(self):
        spec = scenario("clean", "launch", "launch_attack",
                        "launch:boot_failure", benign=None)
        assert spec.benign_params is None
        assert spec.benign_params_dict() is None

    @pytest.mark.parametrize("kwargs, fragment", [
        (dict(layer="kernelspace"), "unknown layer"),
        (dict(expect="tcb_too_old"), "namespace"),
        (dict(expect="weird:code"), "namespace"),
        (dict(expect="attest:"), "namespace"),
        (dict(injector=""), "empty injector"),
        (dict(trigger_at=-1.0), "negative"),
        (dict(dwell=-0.5), "negative"),
    ])
    def test_validation_rejects_bad_specs(self, kwargs, fragment):
        base = dict(name="bad", layer="gateway", injector="backend_kill",
                    expect="gateway:backend_unreachable")
        base.update(kwargs)
        with pytest.raises(ValueError, match=fragment):
            ScenarioSpec(**base)


class TestCampaignSpec:
    def test_unknown_arena_rejected(self):
        with pytest.raises(ValueError, match="unknown arena"):
            CampaignSpec(name="bad", arena="chaos", scenarios=())

    def test_duplicate_scenario_names_rejected(self):
        dup = scenario("same", "gateway", "backend_kill",
                       "gateway:backend_unreachable")
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(name="bad", arena="storm", scenarios=(dup, dup))

    def test_catalog_is_complete_and_well_formed(self):
        assert set(campaign_names()) == set(CAMPAIGNS)
        for name in campaign_names():
            campaign = get_campaign(name)
            assert campaign.arena in ARENAS
            assert campaign.scenarios, name
            for spec in campaign.scenarios:
                assert spec.layer in LAYERS
                assert spec.expected_namespace in NAMESPACES
                assert spec.injector in registered_injectors(), spec.injector

    def test_get_campaign_names_the_alternatives(self):
        with pytest.raises(KeyError, match="storm-core"):
            get_campaign("no-such-campaign")


class TestInjectorRegistry:
    def test_core_injectors_are_registered(self):
        names = set(registered_injectors())
        assert {
            "backend_kill", "kds_blackhole", "tcb_rollback",
            "family_revocation", "rogue_backend", "gossip_forgery",
            "storage_bitflip", "pipeline_attack", "launch_attack",
        } <= names

    def test_create_rejects_unknown_injectors(self):
        with pytest.raises(KeyError, match="unknown injector"):
            create("no_such_injector", world=None)
