"""Campaign fixtures: each built-in campaign run exactly once per
module, at a storm size small enough for CI but large enough that
every attack lands (the taxonomy and determinism tests below share
these runs)."""

import dataclasses

import pytest

from repro.build import build_revelio_image
from repro.scenarios import CampaignRunner, get_campaign
from tests.conftest import make_spec

#: Storm size for the shared fixture runs.  Code coverage (which codes
#: each attack lands on) is independent of storm length; only the SLO
#: margins shrink, and the stable-fleet axis used here holds at 120.
STORM_SESSIONS = 120


@pytest.fixture(scope="module")
def scenario_build(registry_and_pins):
    registry, pins = registry_and_pins
    return build_revelio_image(make_spec(registry, pins))


@pytest.fixture(scope="module")
def storm_report(scenario_build):
    campaign = dataclasses.replace(
        get_campaign("storm-core"), sessions=STORM_SESSIONS
    )
    return CampaignRunner(scenario_build, campaign, seed=0).run()


@pytest.fixture(scope="module")
def pipeline_report():
    return CampaignRunner(None, get_campaign("pipeline-tail"), seed=0).run()


@pytest.fixture(scope="module")
def launch_report(scenario_build):
    return CampaignRunner(scenario_build, get_campaign("launch-61"), seed=0).run()
