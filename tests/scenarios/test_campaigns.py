"""The campaign contract, asserted end to end: every built-in attack
lands on its stable reason code, the taxonomy is fully covered, and
same-seed reports are byte-identical."""

import dataclasses

import pytest

from repro.attest import ATTEST_REASON_CODES
from repro.build.channel import CHANNEL_REASON_CODES
from repro.fleet.gateway import GATEWAY_REASON_CODES
from repro.fleet.mesh import GOSSIP_REJECT_REASONS
from repro.scenarios import CampaignRunner, get_campaign
from tests.scenarios.conftest import STORM_SESSIONS


def _assert_contract(report):
    for entry in report.scenarios:
        assert entry["landed"], (
            f"{report.campaign}/{entry['name']} missed its expected "
            f"code {entry['expect']} (observed {entry['observed']})"
        )
        assert entry["contained"], f"{report.campaign}/{entry['name']}"
        assert entry["recovered"], f"{report.campaign}/{entry['name']}"
        twin = entry["benign"]
        if twin is not None:
            assert twin["ok"], (
                f"{report.campaign}/{entry['name']}: benign twin failed "
                f"({twin})"
            )


class TestCampaignContract:
    def test_storm_core_holds_the_full_contract(self, storm_report):
        assert storm_report.ok, storm_report.violations
        _assert_contract(storm_report)
        assert storm_report.slo["ok"], storm_report.slo

    def test_pipeline_tail_lands_every_code(self, pipeline_report):
        assert pipeline_report.ok, pipeline_report.violations
        _assert_contract(pipeline_report)

    def test_launch_61_matrix(self, launch_report):
        assert launch_report.ok, launch_report.violations
        _assert_contract(launch_report)


class TestTaxonomyCompleteness:
    def test_every_stable_reason_code_is_reached(
        self, storm_report, pipeline_report, launch_report
    ):
        """Every code in the attest, gateway, mesh, and update
        taxonomies must be provoked by at least one scenario — a new
        reason code without a campaign reaching it fails here by name."""
        want = (
            {f"attest:{code}" for code in ATTEST_REASON_CODES}
            | {f"gateway:{code}" for code in GATEWAY_REASON_CODES}
            | {f"mesh:{code}" for code in GOSSIP_REJECT_REASONS}
            | {f"update:{code}" for code in CHANNEL_REASON_CODES}
        )
        reached = set()
        for report in (storm_report, pipeline_report, launch_report):
            reached.update(report.codes_reached)
        unreached = sorted(want - reached)
        assert not unreached, (
            "stable reason codes with no scenario reaching them "
            f"(add one to repro/scenarios/catalog.py): {unreached}"
        )

    def test_reached_codes_use_known_namespaces_only(
        self, storm_report, pipeline_report, launch_report
    ):
        for report in (storm_report, pipeline_report, launch_report):
            for code in report.codes_reached:
                namespace = code.partition(":")[0]
                assert namespace in (
                    "attest", "gateway", "mesh", "storage", "launch",
                    "update",
                ), code


class TestDeterminism:
    def test_storm_reports_are_byte_identical_same_seed(
        self, scenario_build, storm_report
    ):
        campaign = dataclasses.replace(
            get_campaign("storm-core"), sessions=STORM_SESSIONS
        )
        rerun = CampaignRunner(scenario_build, campaign, seed=0).run()
        assert rerun.to_json() == storm_report.to_json()

    def test_pipeline_reports_are_byte_identical_same_seed(
        self, pipeline_report
    ):
        rerun = CampaignRunner(None, get_campaign("pipeline-tail"), seed=0).run()
        assert rerun.to_json() == pipeline_report.to_json()

    def test_launch_reports_are_byte_identical_same_seed(
        self, scenario_build, launch_report
    ):
        rerun = CampaignRunner(
            scenario_build, get_campaign("launch-61"), seed=0
        ).run()
        assert rerun.to_json() == launch_report.to_json()

    def test_different_seed_changes_the_storm_report(self, scenario_build,
                                                     storm_report):
        campaign = dataclasses.replace(
            get_campaign("storm-core"), sessions=STORM_SESSIONS
        )
        other = CampaignRunner(scenario_build, campaign, seed=1).run()
        assert other.ok, other.violations
        assert other.to_json() != storm_report.to_json()


class TestRunnerValidation:
    def test_rollout_axis_requires_a_v2_build(self, scenario_build):
        with pytest.raises(ValueError):
            CampaignRunner(
                scenario_build, get_campaign("storm-core"), rollout=True
            )
