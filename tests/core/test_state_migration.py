"""Attested sealed-state migration across image versions."""

import pytest

from repro.amd.verify import AttestationError
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.core.rollout import (
    export_sealed_master_key,
    import_sealed_state,
    migrate_sealed_state,
)
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY
from repro.virt.hypervisor import Hypervisor
from tests.conftest import make_spec

SECRET_BLOCK = b"\x5a" * 4096


@pytest.fixture
def world(registry_and_pins):
    registry, pins = registry_and_pins
    build_v1 = build_revelio_image(make_spec(registry, pins, version="1.0.0"))
    build_v2 = build_revelio_image(make_spec(registry, pins, version="2.0.0"))
    deployment = RevelioDeployment(
        build_v1, num_nodes=1, latency=ZERO_LATENCY, seed=b"migrate"
    )
    deployment.launch_fleet()
    old = deployment.nodes[0]
    old.vm.storage["data"].write_block(1, SECRET_BLOCK)

    # The successor VM, booted on the same host's chip.
    new_vm = old.hypervisor.launch(build_v2.image, name="successor")
    new_vm.boot()
    return deployment, build_v1, build_v2, old, new_vm


class TestMigration:
    def test_happy_path(self, world):
        deployment, build_v1, build_v2, old, new_vm = world
        blocks = migrate_sealed_state(
            old,
            new_vm,
            deployment._new_kds_client,
            now=0,
            old_accepts=[build_v2.expected_measurement],
            new_accepts=[build_v1.expected_measurement],
        )
        assert blocks > 1
        assert new_vm.storage["data"].read_block(1) == SECRET_BLOCK

    def test_rogue_successor_refused_by_old_vm(self, world, registry_and_pins):
        deployment, _, build_v2, old, _ = world
        registry, pins = registry_and_pins
        rogue_build = build_revelio_image(
            make_spec(registry, pins, version="6.6.6",
                      extra_files={"/opt/exfiltrate": b"evil"})
        )
        rogue_vm = old.hypervisor.launch(rogue_build.image, name="rogue")
        rogue_vm.boot()
        with pytest.raises(AttestationError):
            export_sealed_master_key(
                old.vm,
                rogue_vm.identity.key_bundle(),
                deployment._new_kds_client(),
                now=0,
                accepted_measurements=[build_v2.expected_measurement],
            )

    def test_new_vm_refuses_unattested_source(self, world):
        # A forged "old node" (different AMD infra) can't feed the new
        # VM a poisoned disk: the old-side bundle fails verification.
        deployment, build_v1, build_v2, old, new_vm = world
        from repro.amd.secure_processor import AmdKeyInfrastructure

        fake_amd = AmdKeyInfrastructure(HmacDrbg(b"fake"))
        fake_chip = fake_amd.provision_chip("fake")
        fake_hv = Hypervisor(fake_chip, HmacDrbg(b"fakehv"))
        fake_vm = fake_hv.launch(build_v1.image)
        fake_vm.boot()
        encrypted = export_sealed_master_key(
            old.vm,
            new_vm.identity.key_bundle(),
            deployment._new_kds_client(),
            now=0,
            accepted_measurements=[build_v2.expected_measurement],
        )
        with pytest.raises(AttestationError):
            import_sealed_state(
                new_vm,
                encrypted,
                old.vm.disk,
                fake_vm.identity.key_bundle(),  # bundle from the fake RoT
                deployment._new_kds_client(),
                now=0,
                accepted_measurements=[build_v1.expected_measurement],
            )

    def test_intercepted_key_useless_to_third_party(self, world):
        # The exported blob is ECIES to the successor's key; another
        # (even attested) VM cannot unwrap it.
        deployment, build_v1, build_v2, old, new_vm = world
        encrypted = export_sealed_master_key(
            old.vm,
            new_vm.identity.key_bundle(),
            deployment._new_kds_client(),
            now=0,
            accepted_measurements=[build_v2.expected_measurement],
        )
        bystander = old.hypervisor.launch(deployment.build.image,
                                          name="bystander")
        bystander.boot()
        from repro.core.key_sharing import (
            KeySharingError,
            decrypt_with_private_key,
        )

        with pytest.raises(KeySharingError):
            decrypt_with_private_key(bystander.identity.private_key, encrypted)

    def test_old_vm_must_be_running(self, world):
        deployment, _, build_v2, old, new_vm = world
        old.vm.shutdown()
        with pytest.raises(Exception):
            export_sealed_master_key(
                old.vm,
                new_vm.identity.key_bundle(),
                deployment._new_kds_client(),
                now=0,
                accepted_measurements=[build_v2.expected_measurement],
            )
