"""Deployment orchestration unit tests."""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from repro.net.simnet import NetworkError
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def build(registry_and_pins):
    registry, pins = registry_and_pins
    return build_revelio_image(make_spec(registry, pins))


class TestOrchestration:
    def test_domain_read_from_image(self, build):
        deployment = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                       seed=b"dep-1")
        assert deployment.domain == "boundary-node.example"

    def test_node_ips_sequential(self, build):
        deployment = RevelioDeployment(build, num_nodes=3, latency=ZERO_LATENCY,
                                       seed=b"dep-2")
        assert [deployment.node_ip(i) for i in range(3)] == [
            "10.0.0.1", "10.0.0.2", "10.0.0.3",
        ]

    def test_deploy_is_idempotent_shorthand(self, build):
        deployment = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                       seed=b"dep-3").deploy()
        assert deployment.provisioning is not None
        assert deployment.leader.host.ip_address == deployment.provisioning.leader_ip

    def test_leader_before_provisioning_raises(self, build):
        deployment = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                       seed=b"dep-4")
        with pytest.raises(RuntimeError, match="not provisioned"):
            deployment.leader

    def test_duplicate_user_ip_rejected(self, build):
        deployment = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                       seed=b"dep-5").deploy()
        deployment.make_user("u-a", "10.2.0.50")
        with pytest.raises(NetworkError, match="already in use"):
            deployment.make_user("u-b", "10.2.0.50")

    def test_per_node_dns_names(self, build):
        deployment = RevelioDeployment(build, num_nodes=2, latency=ZERO_LATENCY,
                                       seed=b"dep-6").deploy()
        for index in range(2):
            assert (
                deployment.network.dns.resolve(f"node{index}.{deployment.domain}")
                == deployment.node_ip(index)
            )

    def test_service_domain_round_robins(self, build):
        deployment = RevelioDeployment(build, num_nodes=2, latency=ZERO_LATENCY,
                                       seed=b"dep-7").deploy()
        resolved = {deployment.network.dns.resolve(deployment.domain)
                    for _ in range(4)}
        assert resolved == {"10.0.0.1", "10.0.0.2"}

    def test_deterministic_across_runs(self, build):
        first = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                  seed=b"same").deploy()
        second = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                   seed=b"same").deploy()
        assert (
            first.nodes[0].vm.identity.public_key
            == second.nodes[0].vm.identity.public_key
        )
        assert (
            first.provisioning.certificate_chain[0].public_key
            == second.provisioning.certificate_chain[0].public_key
        )

    def test_different_seeds_different_keys(self, build):
        first = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                  seed=b"seed-a").deploy()
        second = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                   seed=b"seed-b").deploy()
        assert (
            first.nodes[0].vm.identity.public_key
            != second.nodes[0].vm.identity.public_key
        )

    def test_sp_pins_fleet_chips_and_ips_by_default(self, build):
        deployment = RevelioDeployment(build, num_nodes=2, latency=ZERO_LATENCY,
                                       seed=b"dep-8")
        deployment.launch_fleet()
        deployment.create_sp_node()
        assert len(deployment.sp.approved_chip_ids) == 2
        assert deployment.sp.approved_ips == {"10.0.0.1", "10.0.0.2"}

    def test_sp_pinning_can_be_disabled(self, build):
        deployment = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                       seed=b"dep-9")
        deployment.launch_fleet()
        deployment.create_sp_node(pin_chip_ids=False, pin_ips=False)
        assert deployment.sp.approved_chip_ids is None
        assert deployment.sp.approved_ips is None
