"""KDS client latency accounting and caching tests."""

import pytest

from repro.amd.kds import KeyDistributionServer
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.core.kds_client import KdsClient
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import LatencyModel, SimClock


@pytest.fixture
def setup():
    amd = AmdKeyInfrastructure(HmacDrbg(b"kds-client-tests"))
    kds = KeyDistributionServer(amd)
    chip = amd.provision_chip("kc-chip")
    clock = SimClock()
    model = LatencyModel(kds_rtt=0.4, kds_processing=0.0273)
    return amd, kds, chip, clock, model


class TestCaching:
    def test_first_fetch_charges_latency(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        assert clock.now == pytest.approx(0.4273)
        assert client.fetches == 1

    def test_cache_hit_is_free(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        after_first = clock.now
        client.get_vcek(chip.chip_id, chip.current_tcb)
        assert clock.now == after_first
        assert client.cache_hits == 1

    def test_cache_disabled_always_fetches(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.fetches == 2
        assert clock.now == pytest.approx(2 * 0.4273)

    def test_tcb_update_invalidates_cache_key(self, setup):
        amd, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        from repro.amd.tcb import TcbVersion

        chip.update_tcb(TcbVersion(9, 9, 9, 250))
        client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.fetches == 2

    def test_chain_cached(self, setup):
        _, kds, _, clock, model = setup
        client = KdsClient(kds, clock, model)
        client.cert_chain()
        client.cert_chain()
        assert client.fetches == 1

    def test_clear_cache(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        client.clear_cache()
        client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.fetches == 2

    def test_trust_anchor_is_local(self, setup):
        _, kds, _, clock, model = setup
        client = KdsClient(kds, clock, model)
        assert client.trust_anchor == kds.ark_certificate
        assert clock.now == 0.0  # pinned, never fetched


class TestBundledChain:
    """The KDS bundles the ASK/ARK chain with every VCEK response, so a
    full VCEK+chain verification costs exactly one round trip — with or
    without caching."""

    def test_chain_rides_along_with_vcek(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        client.cert_chain()
        assert client.fetches == 1
        assert clock.now == pytest.approx(0.4273)

    def test_chain_free_even_with_cache_disabled(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        after_vcek = clock.now
        chain = client.cert_chain()
        assert chain  # served from the bundled response
        assert client.fetches == 1
        assert clock.now == after_vcek
        # The bundle is not a cache hit: the counters stay honest.
        assert client.cache_hits == 0

    def test_uncached_session_charges_one_trip_per_vcek(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        for _ in range(3):  # three fresh attestations of the same chip
            client.get_vcek(chip.chip_id, chip.current_tcb)
            client.cert_chain()
        assert client.fetches == 3
        assert clock.now == pytest.approx(3 * 0.4273)

    def test_standalone_chain_fetch_still_charged(self, setup):
        _, kds, _, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        client.cert_chain()  # no prior VCEK response to ride along with
        assert client.fetches == 1
        assert clock.now == pytest.approx(0.4273)

    def test_clear_cache_drops_bundled_chain(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        client.get_vcek(chip.chip_id, chip.current_tcb)
        client.clear_cache()
        client.cert_chain()
        assert client.fetches == 2


class TestRequestCoalescing:
    """Concurrent VCEK fetches for the same chip share one in-flight
    request (health-probe rounds measure in isolated clock scopes that
    share a base time, so their fetches overlap)."""

    def test_overlapping_fetches_share_one_round_trip(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        with clock.isolated() as first:
            client.get_vcek(chip.chip_id, chip.current_tcb)
        with clock.isolated() as second:
            client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.fetches == 1
        assert client.coalesced_hits == 1
        # The joiner waits out the full remaining flight time: same
        # latency as the original request, but no second round trip.
        assert second.elapsed == pytest.approx(first.elapsed)

    def test_joiner_pays_only_remaining_flight_time(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        with clock.isolated():
            client.get_vcek(chip.chip_id, chip.current_tcb)
        clock.advance(0.2)  # the base timeline catches up mid-flight
        with clock.isolated() as late:
            client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.coalesced_hits == 1
        assert late.elapsed == pytest.approx(0.4273 - 0.2)

    def test_completed_flight_is_not_joined(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        client.get_vcek(chip.chip_id, chip.current_tcb)  # lands on base time
        client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.fetches == 2
        assert client.coalesced_hits == 0

    def test_joined_response_still_populates_cache_and_chain(self, setup):
        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model)
        with clock.isolated():
            client.get_vcek(chip.chip_id, chip.current_tcb)
            client.clear_cache()  # forget the cache, not the flight
            # clear_cache drops the in-flight table too; refetch to get
            # a live flight with an empty cache.
            client.get_vcek(chip.chip_id, chip.current_tcb)
            client._vcek_cache.clear()
            client._chain_cache = None
        with clock.isolated():
            client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.coalesced_hits == 1
        assert len(client._vcek_cache) == 1
        assert client.cert_chain()  # served from the bundled chain

    def test_different_tcb_does_not_coalesce(self, setup):
        amd, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        from repro.amd.tcb import TcbVersion

        with clock.isolated():
            client.get_vcek(chip.chip_id, chip.current_tcb)
        chip.update_tcb(TcbVersion(9, 9, 9, 250))
        with clock.isolated():
            client.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.fetches == 2
        assert client.coalesced_hits == 0

    def test_blackholed_kds_never_joins_inflight(self, setup):
        """Fail closed: while the WAN path is down only the local cache
        may answer — an in-flight response must not be joined."""
        from repro.fleet.faults import KdsBlackhole
        from repro.net.simnet import NetworkError

        _, kds, chip, clock, model = setup
        client = KdsClient(kds, clock, model, cache_enabled=False)
        with clock.isolated():
            client.get_vcek(chip.chip_id, chip.current_tcb)
        blackhole = KdsBlackhole(client)
        with clock.isolated():
            with pytest.raises(NetworkError):
                blackhole.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.coalesced_hits == 0
        blackhole.active = False
        with clock.isolated():
            blackhole.get_vcek(chip.chip_id, chip.current_tcb)
        assert client.coalesced_hits == 1
