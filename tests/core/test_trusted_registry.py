"""Delegated verification registries (auditor + DAO) tests."""

import pytest

from repro.core.trusted_registry import (
    Auditor,
    AuditorRegistry,
    DaoRegistry,
    RegistryError,
    StaticRegistry,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey

MEASUREMENT_A = b"\xaa" * 48
MEASUREMENT_B = b"\xbb" * 48
DOMAIN = "svc.example"


class TestAuditorRegistry:
    @pytest.fixture
    def auditor(self):
        return Auditor(PrivateKey.generate_ecdsa(HmacDrbg(b"auditor-key")))

    @pytest.fixture
    def registry(self, auditor):
        return AuditorRegistry(auditor.public_key)

    def test_endorsement_flow(self, auditor, registry):
        registry.ingest(auditor.endorse(DOMAIN, MEASUREMENT_A))
        assert registry.golden_measurements(DOMAIN) == {MEASUREMENT_A}
        assert registry.golden_measurements("other.example") == set()

    def test_revocation_flow(self, auditor, registry):
        registry.ingest(auditor.endorse(DOMAIN, MEASUREMENT_A))
        registry.ingest(auditor.revoke(DOMAIN, MEASUREMENT_A))
        assert registry.golden_measurements(DOMAIN) == set()
        assert registry.revoked_measurements(DOMAIN) == {MEASUREMENT_A}

    def test_forged_statement_rejected(self, registry):
        imposter = Auditor(PrivateKey.generate_ecdsa(HmacDrbg(b"imposter")))
        with pytest.raises(RegistryError):
            registry.ingest(imposter.endorse(DOMAIN, MEASUREMENT_A))

    def test_tampered_statement_rejected(self, auditor, registry):
        from dataclasses import replace

        statement = auditor.endorse(DOMAIN, MEASUREMENT_A)
        tampered = replace(statement, measurement=MEASUREMENT_B)
        with pytest.raises(RegistryError):
            registry.ingest(tampered)

    def test_case_insensitive_domains(self, auditor, registry):
        registry.ingest(auditor.endorse("SVC.example", MEASUREMENT_A))
        assert registry.golden_measurements("svc.EXAMPLE") == {MEASUREMENT_A}


class TestDaoRegistry:
    @pytest.fixture
    def dao(self):
        return DaoRegistry(members=["alice", "bob", "carol", "dave", "erin"])

    def test_threshold(self, dao):
        assert dao.threshold == 3

    def test_endorsement_requires_majority(self, dao):
        proposal = dao.propose(DOMAIN, MEASUREMENT_A)
        dao.vote(proposal, "alice", True)
        dao.vote(proposal, "bob", True)
        assert dao.golden_measurements(DOMAIN) == set()
        dao.vote(proposal, "carol", True)
        assert dao.golden_measurements(DOMAIN) == {MEASUREMENT_A}

    def test_no_votes_do_not_count(self, dao):
        proposal = dao.propose(DOMAIN, MEASUREMENT_A)
        for member in ["alice", "bob"]:
            dao.vote(proposal, member, True)
        for member in ["carol", "dave", "erin"]:
            dao.vote(proposal, member, False)
        assert dao.golden_measurements(DOMAIN) == set()
        assert not dao.proposal_status(proposal).executed

    def test_revocation_proposal(self, dao):
        endorse = dao.propose(DOMAIN, MEASUREMENT_A)
        for member in ["alice", "bob", "carol"]:
            dao.vote(endorse, member, True)
        revoke = dao.propose(DOMAIN, MEASUREMENT_A, action="revoke")
        for member in ["alice", "bob", "carol"]:
            dao.vote(revoke, member, True)
        assert dao.golden_measurements(DOMAIN) == set()
        assert dao.revoked_measurements(DOMAIN) == {MEASUREMENT_A}

    def test_non_member_cannot_vote(self, dao):
        proposal = dao.propose(DOMAIN, MEASUREMENT_A)
        with pytest.raises(RegistryError):
            dao.vote(proposal, "mallory", True)

    def test_vote_change(self, dao):
        proposal = dao.propose(DOMAIN, MEASUREMENT_A)
        dao.vote(proposal, "alice", True)
        dao.vote(proposal, "alice", False)
        dao.vote(proposal, "bob", True)
        dao.vote(proposal, "carol", True)
        assert not dao.proposal_status(proposal).executed

    def test_executed_proposal_closed(self, dao):
        proposal = dao.propose(DOMAIN, MEASUREMENT_A)
        for member in ["alice", "bob", "carol"]:
            dao.vote(proposal, member, True)
        with pytest.raises(RegistryError):
            dao.vote(proposal, "dave", True)

    def test_bad_action(self, dao):
        with pytest.raises(RegistryError):
            dao.propose(DOMAIN, MEASUREMENT_A, action="maybe")

    def test_empty_dao_rejected(self):
        with pytest.raises(RegistryError):
            DaoRegistry(members=[])

    def test_unknown_proposal(self, dao):
        with pytest.raises(RegistryError):
            dao.vote(999, "alice", True)


class TestStaticRegistry:
    def test_lookup(self):
        registry = StaticRegistry(
            golden={DOMAIN: [MEASUREMENT_A]},
            revoked={DOMAIN: [MEASUREMENT_B]},
        )
        assert registry.golden_measurements(DOMAIN) == {MEASUREMENT_A}
        assert registry.revoked_measurements(DOMAIN) == {MEASUREMENT_B}
        assert registry.golden_measurements("other") == set()
