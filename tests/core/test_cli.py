"""CLI tests (direct main() invocation; no subprocesses)."""

import pytest

from repro.cli import main


class TestBuildMeasureVerify:
    def test_build_writes_image(self, tmp_path, capsys):
        out = tmp_path / "image.rvm"
        assert main(["build", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert out.exists()
        assert "measurement:" in captured

    def test_measure_matches_build(self, tmp_path, capsys):
        out = tmp_path / "image.rvm"
        main(["build", "--out", str(out)])
        build_output = capsys.readouterr().out
        golden = next(
            line.split()[-1] for line in build_output.splitlines()
            if line.startswith("measurement:")
        )
        assert main(["measure", str(out)]) == 0
        measure_output = capsys.readouterr().out
        assert golden in measure_output

    def test_verify_image_ok(self, tmp_path, capsys):
        out = tmp_path / "image.rvm"
        main(["build", "--out", str(out)])
        golden = next(
            line.split()[-1] for line in capsys.readouterr().out.splitlines()
            if line.startswith("measurement:")
        )
        assert main(["verify-image", str(out), golden]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_image_mismatch(self, tmp_path, capsys):
        out = tmp_path / "image.rvm"
        main(["build", "--out", str(out)])
        capsys.readouterr()
        assert main(["verify-image", str(out), "00" * 48]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_tampered_image_file_detected(self, tmp_path, capsys):
        out = tmp_path / "image.rvm"
        main(["build", "--out", str(out)])
        golden = next(
            line.split()[-1] for line in capsys.readouterr().out.splitlines()
            if line.startswith("measurement:")
        )
        # Tamper with the stored image: flip a byte in the kernel blob.
        from repro.virt.image import VmImage
        from dataclasses import replace

        image = VmImage.decode(out.read_bytes())
        tampered = replace(image, cmdline=image.cmdline + " init=/bin/backdoor")
        out.write_bytes(tampered.encode())
        assert main(["verify-image", str(out), golden]) == 1

    def test_cryptpad_use_case(self, tmp_path):
        out = tmp_path / "cp.rvm"
        assert main(["build", "--use-case", "cryptpad", "--out", str(out)]) == 0

    def test_builds_are_deterministic(self, tmp_path, capsys):
        out_a = tmp_path / "a.rvm"
        out_b = tmp_path / "b.rvm"
        main(["build", "--out", str(out_a)])
        main(["build", "--out", str(out_b)])
        assert out_a.read_bytes() == out_b.read_bytes()


class TestDemos:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--nodes", "2"]) == 0
        output = capsys.readouterr().out
        assert "attested access: OK" in output

    def test_attack_demo_detects_everything(self, capsys):
        assert main(["attack-demo"]) == 0
        assert "3/3 attacks detected" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
