"""Report bundles and ECIES key wrapping tests."""

import hashlib
from dataclasses import replace

import pytest

from repro.amd.kds import KeyDistributionServer
from repro.amd.policy import REVELIO_POLICY
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.amd.verify import AttestationError
from repro.core.kds_client import KdsClient
from repro.core.key_sharing import (
    BUNDLE_KIND_PUBLIC_KEY,
    KeySharingError,
    ReportBundle,
    decrypt_with_private_key,
    encrypt_to_public_key,
    report_data_for,
    verify_report_bundle,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ec import P256
from repro.crypto.ecdsa import EcdsaPrivateKey
from repro.crypto.keys import PrivateKey
from repro.net.latency import ZERO_LATENCY, SimClock


@pytest.fixture(scope="module")
def world():
    rng = HmacDrbg(b"key-sharing-tests")
    amd = AmdKeyInfrastructure(rng.fork(b"amd"))
    kds = KeyDistributionServer(amd)
    chip = amd.provision_chip("ks-chip")
    guest = chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
    key = EcdsaPrivateKey.generate(P256, rng.fork(b"id"))
    wrapped = PrivateKey("ecdsa", key)
    payload = wrapped.public_key().encode()
    report = guest.get_report(
        report_data_for(wrapped.public_key().fingerprint())
    )
    bundle = ReportBundle(BUNDLE_KIND_PUBLIC_KEY, report, payload)
    client = KdsClient(kds, SimClock(), ZERO_LATENCY)
    return {
        "rng": rng, "amd": amd, "kds": kds, "chip": chip, "guest": guest,
        "key": key, "bundle": bundle, "client": client,
    }


class TestBundles:
    def test_round_trip(self, world):
        bundle = world["bundle"]
        assert ReportBundle.decode(bundle.encode()) == bundle

    def test_binding_ok(self, world):
        assert world["bundle"].binding_ok()

    def test_binding_detects_payload_swap(self, world):
        other_key = PrivateKey.generate_ecdsa(HmacDrbg(b"other"))
        swapped = replace(world["bundle"], payload=other_key.public_key().encode())
        assert not swapped.binding_ok()

    def test_malformed_rejected(self):
        with pytest.raises(KeySharingError):
            ReportBundle.decode(b"garbage")

    def test_report_data_helper(self):
        digest = hashlib.sha256(b"x").digest()
        assert report_data_for(digest) == digest + b"\x00" * 32
        with pytest.raises(KeySharingError):
            report_data_for(b"short")


class TestBundleVerification:
    def test_happy_path(self, world):
        verified = verify_report_bundle(
            world["bundle"], world["client"], now=0,
            expected_measurements=[world["guest"].measurement],
        )
        assert verified.report.measurement == world["guest"].measurement

    def test_unknown_measurement_rejected(self, world):
        with pytest.raises(AttestationError) as excinfo:
            verify_report_bundle(
                world["bundle"], world["client"], now=0,
                expected_measurements=[b"\x00" * 48],
            )
        assert excinfo.value.reason == "measurement_mismatch"

    def test_payload_swap_rejected(self, world):
        other_key = PrivateKey.generate_ecdsa(HmacDrbg(b"mitm"))
        swapped = replace(world["bundle"], payload=other_key.public_key().encode())
        with pytest.raises(AttestationError) as excinfo:
            verify_report_bundle(
                swapped, world["client"], now=0,
                expected_measurements=[world["guest"].measurement],
            )
        assert excinfo.value.reason == "report_data_mismatch"

    def test_chip_allowlist_enforced(self, world):
        with pytest.raises(AttestationError) as excinfo:
            verify_report_bundle(
                world["bundle"], world["client"], now=0,
                expected_measurements=[world["guest"].measurement],
                allowed_chip_ids=[b"\xff" * 64],
            )
        assert excinfo.value.reason == "chip_id_not_allowed"

    def test_forged_report_rejected(self, world):
        # Attacker fabricates a report for their own key with a stolen
        # measurement but no access to a genuine AMD-SP.
        fake_amd = AmdKeyInfrastructure(HmacDrbg(b"fake"))
        fake_chip = fake_amd.provision_chip("fake-chip")
        fake_guest = fake_chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
        key = PrivateKey.generate_ecdsa(HmacDrbg(b"fk"))
        forged = ReportBundle(
            BUNDLE_KIND_PUBLIC_KEY,
            fake_guest.get_report(report_data_for(key.public_key().fingerprint())),
            key.public_key().encode(),
        )
        with pytest.raises(AttestationError):
            verify_report_bundle(
                forged, world["client"], now=0,
                expected_measurements=[fake_guest.measurement],
            )


class TestEcies:
    def test_round_trip(self):
        rng = HmacDrbg(b"ecies")
        recipient = EcdsaPrivateKey.generate(P256, rng)
        blob = encrypt_to_public_key(recipient.public_key(), b"tls private key", rng)
        assert decrypt_with_private_key(recipient, blob) == b"tls private key"

    def test_wrong_recipient_fails(self):
        rng = HmacDrbg(b"ecies2")
        recipient = EcdsaPrivateKey.generate(P256, rng)
        eavesdropper = EcdsaPrivateKey.generate(P256, rng)
        blob = encrypt_to_public_key(recipient.public_key(), b"secret", rng)
        with pytest.raises(KeySharingError):
            decrypt_with_private_key(eavesdropper, blob)

    def test_tampered_blob_fails(self):
        rng = HmacDrbg(b"ecies3")
        recipient = EcdsaPrivateKey.generate(P256, rng)
        blob = bytearray(encrypt_to_public_key(recipient.public_key(), b"s", rng))
        blob[-1] ^= 1
        with pytest.raises(KeySharingError):
            decrypt_with_private_key(recipient, bytes(blob))

    def test_randomised(self):
        rng = HmacDrbg(b"ecies4")
        recipient = EcdsaPrivateKey.generate(P256, rng)
        first = encrypt_to_public_key(recipient.public_key(), b"s", rng)
        second = encrypt_to_public_key(recipient.public_key(), b"s", rng)
        assert first != second

    def test_malformed_blob(self):
        rng = HmacDrbg(b"ecies5")
        recipient = EcdsaPrivateKey.generate(P256, rng)
        with pytest.raises(KeySharingError):
            decrypt_with_private_key(recipient, b"not a blob")
