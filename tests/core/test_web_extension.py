"""Web extension unit tests (registration, discovery, verdicts)."""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.core.trusted_registry import StaticRegistry
from repro.core.web_extension import RevelioExtension
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def deployment(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(make_spec(registry, pins))
    return RevelioDeployment(
        build, num_nodes=1, latency=ZERO_LATENCY, seed=b"ext-tests"
    ).deploy()


class TestRegistration:
    def test_register_accumulates_measurements(self, deployment):
        extension = RevelioExtension(deployment._new_kds_client())
        extension.register_site("a.example", [b"\x01" * 48])
        extension.register_site("a.example", [b"\x02" * 48])
        registration = extension._sites["a.example"]
        assert registration.expected_measurements == {b"\x01" * 48, b"\x02" * 48}

    def test_registration_case_insensitive(self, deployment):
        extension = RevelioExtension(deployment._new_kds_client())
        extension.register_site("A.Example", [b"\x01" * 48])
        assert extension.is_registered("a.example")

    def test_unregistered_site_not_intercepted(self, deployment):
        browser, extension = deployment.make_user(
            "ext-u1", "10.3.0.1", register_service=False
        )
        extension.opportunistic_discovery = False
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert extension.events == []
        assert extension.pinned_key_fingerprint(deployment.domain) is None

    def test_no_golden_value_blocks(self, deployment):
        browser, extension = deployment.make_user(
            "ext-u2", "10.3.0.2", register_service=False
        )
        extension.register_site(deployment.domain)  # registered, no golden
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert "golden" in result.block_reason


class TestDiscovery:
    def test_probe_only_once_per_session(self, deployment):
        browser, extension = deployment.make_user(
            "ext-u3", "10.3.0.3", register_service=False
        )
        browser.navigate(f"https://{deployment.domain}/")
        browser.navigate(f"https://{deployment.domain}/")
        discovered = [e for e in extension.events if e.kind == "discovered"]
        assert len(discovered) == 1

    def test_non_revelio_site_not_discovered(self, deployment):
        from repro.crypto.drbg import HmacDrbg
        from repro.crypto.keys import PrivateKey
        from repro.net.http import HttpResponse, HttpServer

        rng = HmacDrbg(b"plain-site")
        key = PrivateKey.generate_ecdsa(rng)
        cert = deployment.web_pki.intermediate.issue(
            __import__("repro.crypto.x509", fromlist=["Name"]).Name("plain.example"),
            key.public_key(), 0, 2**61, san=("plain.example",),
        )
        host = deployment.network.add_host("plain-site", "10.3.9.1")
        server = HttpServer("plain")
        server.add_route("GET", "/", lambda r, c: HttpResponse.ok(b"no revelio"))
        server.serve_tls(host, [cert, deployment.web_pki.intermediate.certificate],
                         key, rng.fork(b"tls"))
        deployment.network.dns.register("plain.example", "10.3.9.1")

        browser, extension = deployment.make_user(
            "ext-u4", "10.3.0.4", register_service=False
        )
        result = browser.navigate("https://plain.example/")
        assert not result.blocked
        assert not any(e.kind == "discovered" for e in extension.events)

    def test_discovery_can_be_disabled(self, deployment):
        browser, extension = deployment.make_user(
            "ext-u5", "10.3.0.5", register_service=False
        )
        extension.opportunistic_discovery = False
        browser.navigate(f"https://{deployment.domain}/")
        assert extension.events == []


class TestRegistryIntegration:
    def test_registry_supplies_golden(self, deployment):
        registry = StaticRegistry(
            golden={deployment.domain: [deployment.build.expected_measurement]}
        )
        browser, extension = deployment.make_user(
            "ext-u6", "10.3.0.6", register_service=False,
            trusted_registry=registry,
        )
        extension.register_site(deployment.domain, use_registry=True)
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked

    def test_manual_and_registry_combine(self, deployment):
        registry = StaticRegistry(golden={deployment.domain: [b"\x09" * 48]})
        browser, extension = deployment.make_user(
            "ext-u7", "10.3.0.7", register_service=False,
            trusted_registry=registry,
        )
        extension.register_site(
            deployment.domain,
            [deployment.build.expected_measurement],
            use_registry=True,
        )
        assert not browser.navigate(f"https://{deployment.domain}/").blocked

    def test_registry_revocation_beats_manual_golden(self, deployment):
        registry = StaticRegistry(
            revoked={deployment.domain: [deployment.build.expected_measurement]}
        )
        browser, extension = deployment.make_user(
            "ext-u8", "10.3.0.8", register_service=False,
            trusted_registry=registry,
        )
        extension.register_site(
            deployment.domain,
            [deployment.build.expected_measurement],
            use_registry=True,
        )
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked


class TestEventLog:
    def test_validated_event_recorded(self, deployment):
        browser, extension = deployment.make_user("ext-u9", "10.3.0.9")
        browser.navigate(f"https://{deployment.domain}/")
        kinds = [e.kind for e in extension.events]
        assert kinds == ["validated"]

    def test_violation_then_block_events(self, deployment):
        browser, extension = deployment.make_user(
            "ext-u10", "10.3.0.10", register_service=False
        )
        extension.register_site(deployment.domain, [b"\xff" * 48])
        browser.navigate(f"https://{deployment.domain}/")
        kinds = [e.kind for e in extension.events]
        assert kinds == ["violation", "blocked"]

    def test_override_records_warning_path(self, deployment):
        browser, extension = deployment.make_user(
            "ext-u11", "10.3.0.11", register_service=False,
            user_override=lambda domain, reason: True,
        )
        extension.register_site(deployment.domain, [b"\xff" * 48])
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert result.warnings
        kinds = [e.kind for e in extension.events]
        assert "violation" in kinds and "blocked" not in kinds


class TestTcbFloor:
    """minimum_tcb threading: extension-wide and per-registration."""

    def test_registration_floor_satisfied(self, deployment):
        from repro.amd.tcb import TcbVersion

        browser, extension = deployment.make_user("ext-t1", "10.3.2.1")
        extension.register_site(
            deployment.domain, minimum_tcb=TcbVersion(1, 0, 0, 0)
        )
        assert not browser.navigate(f"https://{deployment.domain}/").blocked

    def test_registration_floor_blocks_old_tcb(self, deployment):
        from repro.amd.tcb import TcbVersion

        browser, extension = deployment.make_user("ext-t2", "10.3.2.2")
        extension.register_site(
            deployment.domain, minimum_tcb=TcbVersion(255, 255, 255, 255)
        )
        verdict = extension.before_request(
            browser, deployment.domain, f"https://{deployment.domain}/"
        )
        assert verdict.blocked
        assert verdict.reason_code == "tcb_too_old"
        assert "tcb_too_old" in verdict.reason

    def test_extension_wide_floor(self, deployment):
        from repro.amd.tcb import TcbVersion

        browser, extension = deployment.make_user("ext-t3", "10.3.2.3")
        extension.minimum_tcb = TcbVersion(255, 255, 255, 255)
        verdict = extension.before_request(
            browser, deployment.domain, f"https://{deployment.domain}/"
        )
        assert verdict.blocked and verdict.reason_code == "tcb_too_old"

    def test_per_site_floor_overrides_extension_floor(self, deployment):
        from repro.amd.tcb import TcbVersion

        browser, extension = deployment.make_user("ext-t4", "10.3.2.4")
        extension.minimum_tcb = TcbVersion(255, 255, 255, 255)
        extension.register_site(
            deployment.domain, minimum_tcb=TcbVersion(1, 0, 0, 0)
        )
        assert not browser.navigate(f"https://{deployment.domain}/").blocked

    def test_measurement_violation_carries_stable_code(self, deployment):
        browser, extension = deployment.make_user(
            "ext-t5", "10.3.2.5", register_service=False
        )
        extension.register_site(deployment.domain, [b"\xff" * 48])
        verdict = extension.before_request(
            browser, deployment.domain, f"https://{deployment.domain}/"
        )
        assert verdict.blocked
        assert verdict.reason_code == "measurement_mismatch"
