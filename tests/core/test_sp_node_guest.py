"""Error-path unit tests for the SP node and the Revelio node server."""

import pytest

from repro.build import build_revelio_image
from repro.core import BOOTSTRAP_PORT, RevelioDeployment
from repro.core.guest import GuestError, RevelioNode
from repro.core.sp_node import ProvisioningError
from repro.crypto import encoding
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def deployment(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(make_spec(registry, pins))
    deployment = RevelioDeployment(
        build, num_nodes=2, latency=ZERO_LATENCY, seed=b"spg"
    )
    deployment.launch_fleet()
    deployment.create_sp_node()
    return deployment


class TestSpNodeErrors:
    def test_empty_fleet_rejected(self, deployment):
        with pytest.raises(ProvisioningError, match="empty"):
            deployment.sp.provision_fleet([])

    def test_bad_leader_index_rejected(self, deployment):
        with pytest.raises(ProvisioningError, match="leader"):
            deployment.sp.provision_fleet(
                [deployment.node_ip(0)], leader_index=5
            )

    def test_unreachable_node_fails_cleanly(self, deployment):
        from repro.net.simnet import NetworkError

        with pytest.raises(NetworkError):
            deployment.sp.provision_fleet(["10.99.99.99"])

    def test_non_csr_bundle_rejected(self, deployment):
        node = deployment.nodes[0]
        key_bundle = node.vm.identity.key_bundle()  # wrong kind
        with pytest.raises(ProvisioningError, match="non-CSR"):
            deployment.sp.attest_node(node.host.ip_address, key_bundle)

    def test_csr_domain_mismatch_rejected(self, registry_and_pins, deployment):
        # A node built for another domain (launched on the same AMD
        # infrastructure, so its report verifies) presents a valid
        # bundle; the SP for *this* domain still refuses the CSR.
        from repro.crypto.drbg import HmacDrbg
        from repro.virt.hypervisor import Hypervisor

        registry, pins = registry_and_pins
        other_build = build_revelio_image(
            make_spec(registry, pins, service_domain="other.example")
        )
        chip = deployment.amd.provision_chip("spg-other-chip")
        hypervisor = Hypervisor(chip, HmacDrbg(b"spg-other-hv"))
        vm = hypervisor.launch(other_build.image)
        vm.boot()
        bundle = vm.identity.csr_bundle()
        deployment.sp.expected_measurements.append(
            other_build.expected_measurement
        )
        deployment.sp.approved_chip_ids.append(chip.chip_id)
        try:
            with pytest.raises(ProvisioningError, match="does not cover"):
                deployment.sp.attest_node("10.0.0.1", bundle)
        finally:
            deployment.sp.expected_measurements.remove(
                other_build.expected_measurement
            )
            deployment.sp.approved_chip_ids.remove(chip.chip_id)


class TestNodeServerErrors:
    def test_malformed_certificate_delivery(self, deployment):
        probe = deployment.network.add_host("spg-probe1", "10.6.1.1")
        raw = probe.request(
            deployment.node_ip(0),
            BOOTSTRAP_PORT,
            HttpRequest("POST", "/revelio/certificate", body=b"garbage").encode(),
        )
        assert HttpResponse.decode(raw).status == 500

    def test_key_request_before_leadership(self, deployment):
        # Node has no TLS identity installed yet -> not the leader.
        probe = deployment.network.add_host("spg-probe2", "10.6.1.2")
        bundle = deployment.nodes[1].vm.identity.key_bundle()
        raw = probe.request(
            deployment.node_ip(0),
            BOOTSTRAP_PORT,
            HttpRequest(
                "POST", "/revelio/key-request", body=bundle.encode()
            ).encode(),
        )
        assert HttpResponse.decode(raw).status == 500

    def test_malformed_key_request(self, deployment):
        probe = deployment.network.add_host("spg-probe3", "10.6.1.3")
        raw = probe.request(
            deployment.node_ip(0),
            BOOTSTRAP_PORT,
            HttpRequest("POST", "/revelio/key-request", body=b"junk").encode(),
        )
        assert HttpResponse.decode(raw).status in (403, 500)

    def test_attestation_endpoint_404_before_install(self, deployment):
        # HTTPS isn't even served before the identity installs; probe the
        # handler directly.
        node = deployment.nodes[0].node
        response = node._serve_attestation(HttpRequest("GET", "/x"), None)
        assert response.status in (404, 200)

    def test_unbooted_vm_rejected_by_node(self, registry_and_pins):
        from repro.amd.secure_processor import AmdKeyInfrastructure
        from repro.crypto.drbg import HmacDrbg
        from repro.net.simnet import Network
        from repro.virt.hypervisor import Hypervisor

        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        amd = AmdKeyInfrastructure(HmacDrbg(b"spg-unbooted"))
        hypervisor = Hypervisor(amd.provision_chip("c"), HmacDrbg(b"hv"))
        vm = hypervisor.launch(build.image)  # never booted
        network = Network(ZERO_LATENCY)
        host = network.add_host("unbooted", "10.6.1.9")
        from repro.core.kds_client import KdsClient
        from repro.amd.kds import KeyDistributionServer

        kds = KdsClient(KeyDistributionServer(amd), network.clock, ZERO_LATENCY)
        with pytest.raises(Exception):
            RevelioNode(vm, host, kds)

    def test_cert_mismatching_key_rejected(self, registry_and_pins):
        # The SP (or a MITM) delivers a certificate whose key matches no
        # fleet member: the leader check fails and key acquisition from a
        # bogus leader address errors out.
        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        deployment = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"spg-badcert"
        )
        deployment.launch_fleet()
        from repro.crypto.drbg import HmacDrbg
        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import Name

        stranger = PrivateKey.generate_ecdsa(HmacDrbg(b"stranger"))
        bogus_cert = deployment.web_pki.intermediate.issue(
            Name(deployment.domain), stranger.public_key(), 0, 2**61,
            san=(deployment.domain,),
        )
        probe = deployment.network.add_host("spg-probe4", "10.6.1.4")
        payload = encoding.encode(
            {
                "chain": [bogus_cert.encode()],
                "leader_ip": "10.99.99.99",  # nobody there
            }
        )
        raw = probe.request(
            deployment.node_ip(0),
            BOOTSTRAP_PORT,
            HttpRequest("POST", "/revelio/certificate", body=payload).encode(),
        )
        # The node is not the leader (key mismatch) and cannot reach the
        # bogus leader -> the delivery fails, nothing is installed.
        assert HttpResponse.decode(raw).status == 500
        assert not deployment.nodes[0].node.serving
