"""Unit tests for the browser shell and the benchmark harness."""

import pytest

from repro.bench.harness import Reporter, bench_scale, scaled_blocks
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def deployment(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(make_spec(registry, pins))
    return RevelioDeployment(
        build, num_nodes=1, latency=ZERO_LATENCY, seed=b"browser-tests"
    ).deploy()


class TestBrowser:
    def test_history_records_navigations(self, deployment):
        browser, _ = deployment.make_user("b-u1", "10.8.0.1")
        browser.navigate(f"https://{deployment.domain}/")
        browser.navigate(f"https://{deployment.domain}/missing")
        assert len(browser.history) == 2
        assert browser.history[0].response.status == 200
        assert browser.history[1].response.status == 404

    def test_blocked_navigation_has_no_response(self, deployment):
        browser, extension = deployment.make_user(
            "b-u2", "10.8.0.2", register_service=False
        )
        extension.register_site(deployment.domain, [b"\x00" * 48])
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert result.response is None
        assert result.block_reason

    def test_connection_fingerprint_absent_without_connection(self, deployment):
        browser, _ = deployment.make_user("b-u3", "10.8.0.3",
                                          with_extension=False)
        assert browser.connection_public_key_fingerprint("nowhere.example") is None

    def test_new_session_closes_connections(self, deployment):
        browser, _ = deployment.make_user("b-u4", "10.8.0.4",
                                          with_extension=False)
        browser.navigate(f"https://{deployment.domain}/")
        assert browser.client.current_connection(deployment.domain) is not None
        browser.new_session()
        assert browser.client.current_connection(deployment.domain) is None


class TestHarness:
    def test_reporter_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REVELIO_RESULTS_DIR", str(tmp_path))
        reporter = Reporter("unit-test", "a title")
        reporter.line("hello")
        reporter.compare("metric", 10.0, 12.5, note="(x)")
        reporter.header(["a", "b"], [4, 4])
        reporter.row(["1", "2"], [4, 4])
        path = reporter.finish()
        content = path.read_text()
        assert "unit-test: a title" in content
        assert "hello" in content
        assert "12.5" in content
        assert "unit-test" in capsys.readouterr().out

    def test_compare_without_paper_value(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REVELIO_RESULTS_DIR", str(tmp_path))
        reporter = Reporter("unit-test-2", "t")
        reporter.compare("measured-only", None, 5.0)
        path = reporter.finish()
        assert "measured-only" in path.read_text()

    def test_bench_scale_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REVELIO_BENCH_SCALE", raising=False)
        assert bench_scale() == pytest.approx(1 / 32)
        monkeypatch.setenv("REVELIO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        monkeypatch.setenv("REVELIO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_scaled_blocks_floor(self, monkeypatch):
        monkeypatch.setenv("REVELIO_BENCH_SCALE", "0.001")
        assert scaled_blocks(4096 * 10) == 8  # clamps to the minimum
        monkeypatch.setenv("REVELIO_BENCH_SCALE", "1.0")
        assert scaled_blocks(4096 * 100) == 100
