"""Image rollout and certificate renewal tests."""

import pytest

from repro.amd.verify import AttestationError
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.core.rollout import (
    RolloutError,
    renew_certificate,
    roll_out_image,
)
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture
def world(registry_and_pins):
    registry, pins = registry_and_pins
    build_v1 = build_revelio_image(make_spec(registry, pins, version="1.0.0"))
    build_v2 = build_revelio_image(make_spec(registry, pins, version="2.0.0"))
    deployment = RevelioDeployment(
        build_v1, num_nodes=2, latency=ZERO_LATENCY, seed=b"rollout"
    ).deploy()
    return deployment, build_v1, build_v2


class TestRollout:
    def test_fleet_runs_new_image_after_rollout(self, world):
        deployment, build_v1, build_v2 = world
        result = roll_out_image(deployment, build_v2)
        assert result.new_measurement == build_v2.expected_measurement
        for deployed in deployment.nodes:
            assert deployed.vm.measurement == build_v2.expected_measurement
            assert deployed.node.serving

    def test_users_attest_new_image(self, world):
        deployment, _, build_v2 = world
        roll_out_image(deployment, build_v2)
        browser, extension = deployment.make_user(
            "ro-user", "10.7.0.1", register_service=False
        )
        extension.register_site(
            deployment.domain, [build_v2.expected_measurement]
        )
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked

    def test_old_measurement_revoked(self, world):
        deployment, build_v1, build_v2 = world
        roll_out_image(deployment, build_v2)
        assert (
            bytes(build_v1.expected_measurement)
            in deployment.sp.revoked_measurements
        )
        # A lingering old-image node can no longer be provisioned.
        lingering_chip = deployment.amd.provision_chip("lingering")
        from repro.crypto.drbg import HmacDrbg
        from repro.virt.hypervisor import Hypervisor

        hypervisor = Hypervisor(lingering_chip, HmacDrbg(b"lihv"))
        old_vm = hypervisor.launch(build_v1.image, ip_address="10.0.0.77")
        old_vm.boot()
        host = deployment.network.add_host("lingering", "10.0.0.77",
                                           firewall=old_vm.firewall)
        from repro.core.guest import RevelioNode

        RevelioNode(old_vm, host, deployment._new_kds_client())
        deployment.sp.approved_ips.add("10.0.0.77")
        deployment.sp.approved_chip_ids.append(lingering_chip.chip_id)
        with pytest.raises(AttestationError) as excinfo:
            deployment.sp.provision_fleet(["10.0.0.77"])
        assert excinfo.value.reason == "measurement_revoked"

    def test_old_sealed_disks_unreadable_by_new_image(self, world):
        deployment, build_v1, build_v2 = world
        # Write sealed state under v1 first.
        deployment.nodes[0].vm.storage["data"].write_block(2, b"\x5a" * 4096)
        result = roll_out_image(deployment, build_v2)
        assert result.retired_disks
        # Splice the old sealed data partition under a new-image VM:
        # boot fails, because the sealing key differs (F6 intact).
        from repro.storage.partition import PartitionTable
        from repro.virt.vm import BootFailure

        old_disk = next(iter(result.retired_disks.values()))
        deployed = deployment.nodes[0]
        victim = deployed.hypervisor.launch(build_v2.image, name="splice-test")
        old_table = PartitionTable.read_from(old_disk)
        new_table = PartitionTable.read_from(victim.disk)
        old_data = old_table.open(old_disk, "data")
        new_data = new_table.open(victim.disk, "data")
        for block in range(min(old_data.num_blocks, new_data.num_blocks)):
            new_data.write_block(block, old_data.read_block(block))
        with pytest.raises(BootFailure):
            victim.boot()

    def test_identical_measurement_rejected(self, world):
        deployment, build_v1, _ = world
        with pytest.raises(RolloutError, match="identical"):
            roll_out_image(deployment, build_v1)

    def test_rollout_requires_provisioned_fleet(self, registry_and_pins):
        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        bare = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                 seed=b"bare")
        with pytest.raises(RolloutError):
            roll_out_image(bare, build)


class TestRenewal:
    def test_renewal_keeps_tls_key(self, world):
        deployment, _, _ = world
        old_leaf = deployment.provisioning.certificate_chain[0]
        result = renew_certificate(deployment)
        new_leaf = result.certificate_chain[0]
        assert new_leaf.public_key == old_leaf.public_key
        assert new_leaf.serial != old_leaf.serial

    def test_users_unaffected_by_renewal(self, world):
        deployment, _, _ = world
        browser, extension = deployment.make_user("rn-user", "10.7.0.2")
        assert not browser.navigate(f"https://{deployment.domain}/").blocked
        pinned_before = extension.pinned_key_fingerprint(deployment.domain)

        renew_certificate(deployment)
        # Sessions were reset by the server restart; the client silently
        # reconnects and the pinned key still matches.
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert extension.pinned_key_fingerprint(deployment.domain) == pinned_before

    def test_renewal_requires_provisioning(self, registry_and_pins):
        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        bare = RevelioDeployment(build, num_nodes=1, latency=ZERO_LATENCY,
                                 seed=b"bare2")
        with pytest.raises(RolloutError):
            renew_certificate(bare)

    def test_all_nodes_still_share_key_after_renewal(self, world):
        deployment, _, _ = world
        renew_certificate(deployment)
        keys = {d.node.tls_private_key.d for d in deployment.nodes}
        assert len(keys) == 1


class TestKeyRotation:
    """Leader change = new TLS key pair: §6.4's re-validation option."""

    def _rotate_key(self, deployment):
        old_key = deployment.provisioning.certificate_chain[0].public_key
        deployment.provisioning = deployment.sp.provision_fleet(
            [d.host.ip_address for d in deployment.nodes], leader_index=1
        )
        new_key = deployment.provisioning.certificate_chain[0].public_key
        assert new_key != old_key  # genuinely rotated

    def test_strict_user_blocked_on_rotation(self, world):
        deployment, _, _ = world
        browser, _ = deployment.make_user("kr-strict", "10.7.0.3")
        assert not browser.navigate(f"https://{deployment.domain}/").blocked
        self._rotate_key(deployment)
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert "re-keyed" in result.block_reason

    def test_reattesting_user_continues_after_rotation(self, world):
        deployment, _, _ = world
        browser, extension = deployment.make_user(
            "kr-flex", "10.7.0.4", reattest_on_rekey=True
        )
        assert not browser.navigate(f"https://{deployment.domain}/").blocked
        self._rotate_key(deployment)
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert any("re-attestation succeeded" in w for w in result.warnings)
        # Pin now tracks the new key.
        new_key = deployment.provisioning.certificate_chain[0].public_key
        assert extension.pinned_key_fingerprint(
            deployment.domain
        ) == new_key.fingerprint()

    def test_reattest_still_blocks_real_redirect(self, world):
        # reattest_on_rekey must NOT weaken the redirect defence: the
        # evil endpoint has no valid report, so re-attestation fails.
        deployment, _, _ = world
        browser, _ = deployment.make_user(
            "kr-victim", "10.7.0.5", reattest_on_rekey=True
        )
        assert not browser.navigate(f"https://{deployment.domain}/").blocked

        from repro.crypto.drbg import HmacDrbg
        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import CertificateSigningRequest, Name
        from repro.net.http import HttpResponse, HttpServer
        from repro.pki.certbot import CertbotClient

        rng = HmacDrbg(b"kr-evil")
        evil_key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(
            Name(deployment.domain), evil_key, san=(deployment.domain,)
        )
        chain = CertbotClient(
            deployment.acme, deployment.network.dns
        ).obtain_certificate(deployment.domain, csr)
        evil_host = deployment.network.add_host("kr-evil", "10.7.6.6")
        server = HttpServer("evil")
        server.add_route("GET", "/", lambda r, c: HttpResponse.ok(b"phish"))
        server.serve_tls(evil_host, chain, evil_key, rng.fork(b"tls"))
        deployment.network.dns.redirect(deployment.domain, "10.7.6.6")
        browser.client.close_all()
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
