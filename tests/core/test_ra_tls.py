"""RA-TLS integration tests: CA-less attested TLS channels."""

import pytest

from repro.build import NetworkPolicy, build_revelio_image
from repro.core import RevelioDeployment
from repro.core.ra_tls import (
    RA_TLS_PORT,
    RaTlsError,
    extract_report,
    issue_ra_tls_certificate,
    ra_tls_connect,
    serve_ra_tls,
    validate_ra_tls_certificate,
)
from repro.crypto.drbg import HmacDrbg
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def deployment(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(
        make_spec(
            registry, pins,
            network_policy=NetworkPolicy(
                allowed_inbound_ports=(443, 8080, RA_TLS_PORT)
            ),
        )
    )
    deployment = RevelioDeployment(
        build, num_nodes=1, latency=ZERO_LATENCY, seed=b"ra-tls"
    ).deploy()
    serve_ra_tls(deployment.nodes[0].node)
    return deployment


@pytest.fixture
def client(deployment):
    index = getattr(client, "_counter", 0)
    client._counter = index + 1
    return deployment.network.add_host(f"ra-client-{index}", f"10.4.0.{index + 1}")


class TestHappyPath:
    def test_connect_and_request(self, deployment, client):
        connection = ra_tls_connect(
            client,
            deployment.node_ip(0),
            RA_TLS_PORT,
            f"{deployment.nodes[0].vm.name}.ra-tls",
            deployment._new_kds_client(),
            [deployment.build.expected_measurement],
            HmacDrbg(b"c1"),
        )
        response = HttpResponse.decode(
            connection.request(HttpRequest("GET", "/").encode())
        )
        assert response.status == 200

    def test_certificate_carries_valid_report(self, deployment):
        node = deployment.nodes[0]
        certificate = issue_ra_tls_certificate(
            node.vm.guest, node.vm.identity.wrapped_private_key, "test-subject"
        )
        report = extract_report(certificate)
        assert report.measurement == deployment.build.expected_measurement

    def test_chip_allowlist_supported(self, deployment, client):
        chip_id = deployment.nodes[0].vm.guest.processor.chip_id
        connection = ra_tls_connect(
            client,
            deployment.node_ip(0),
            RA_TLS_PORT,
            f"{deployment.nodes[0].vm.name}.ra-tls",
            deployment._new_kds_client(),
            [deployment.build.expected_measurement],
            HmacDrbg(b"c2"),
            allowed_chip_ids=[chip_id],
        )
        connection.close()


class TestRejections:
    def test_wrong_measurement_rejected(self, deployment, client):
        with pytest.raises(RaTlsError, match="golden"):
            ra_tls_connect(
                client,
                deployment.node_ip(0),
                RA_TLS_PORT,
                f"{deployment.nodes[0].vm.name}.ra-tls",
                deployment._new_kds_client(),
                [b"\x00" * 48],
                HmacDrbg(b"c3"),
            )

    def test_wrong_chip_rejected(self, deployment, client):
        with pytest.raises(RaTlsError, match="verification"):
            ra_tls_connect(
                client,
                deployment.node_ip(0),
                RA_TLS_PORT,
                f"{deployment.nodes[0].vm.name}.ra-tls",
                deployment._new_kds_client(),
                [deployment.build.expected_measurement],
                HmacDrbg(b"c4"),
                allowed_chip_ids=[b"\xaa" * 64],
            )

    def test_certificate_without_report_rejected(self, deployment):
        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import Certificate, Name
        from dataclasses import replace

        key = PrivateKey.generate_ecdsa(HmacDrbg(b"no-report"))
        unsigned = Certificate(
            subject=Name("bare"), issuer=Name("bare"),
            public_key=key.public_key(), serial=1,
            not_before=0, not_after=2**61,
        )
        bare = replace(unsigned, signature=key.sign(unsigned.tbs_bytes()))
        with pytest.raises(RaTlsError, match="no attestation report"):
            validate_ra_tls_certificate(
                bare, deployment._new_kds_client(), 0,
                [deployment.build.expected_measurement],
            )

    def test_stolen_report_on_attacker_key_rejected(self, deployment):
        # An attacker grafts a genuine VM's report onto a certificate
        # for their own key: the REPORT_DATA binding catches it.
        from dataclasses import replace

        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import Certificate, Name
        from repro.core.ra_tls import REPORT_EXTENSION

        node = deployment.nodes[0]
        genuine = issue_ra_tls_certificate(
            node.vm.guest, node.vm.identity.wrapped_private_key, "victim"
        )
        stolen_report = genuine.extension(REPORT_EXTENSION)
        attacker_key = PrivateKey.generate_ecdsa(HmacDrbg(b"attacker"))
        unsigned = Certificate(
            subject=Name("attacker"), issuer=Name("attacker"),
            public_key=attacker_key.public_key(), serial=1,
            not_before=0, not_after=2**61,
            extensions=((REPORT_EXTENSION, stolen_report),),
        )
        forged = replace(
            unsigned, signature=attacker_key.sign(unsigned.tbs_bytes())
        )
        with pytest.raises(RaTlsError, match="does not endorse"):
            validate_ra_tls_certificate(
                forged, deployment._new_kds_client(), 0,
                [deployment.build.expected_measurement],
            )

    def test_not_self_signed_rejected(self, deployment):
        from dataclasses import replace

        node = deployment.nodes[0]
        genuine = issue_ra_tls_certificate(
            node.vm.guest, node.vm.identity.wrapped_private_key, "victim2"
        )
        unsigned = replace(genuine, signature=b"\x00" * 64)
        with pytest.raises(RaTlsError, match="self-signed"):
            validate_ra_tls_certificate(
                unsigned, deployment._new_kds_client(), 0,
                [deployment.build.expected_measurement],
            )

    def test_firewall_still_applies(self, deployment, registry_and_pins):
        # A *default-policy* image (no 8443) cannot expose RA-TLS: the
        # measured firewall blocks it, keeping the config attested.
        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        other = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"ra-closed"
        ).deploy()
        serve_ra_tls(other.nodes[0].node)  # server binds...
        probe = other.network.add_host("ra-probe", "10.4.9.1")
        from repro.net.firewall import ConnectionRefused

        with pytest.raises(ConnectionRefused):
            ra_tls_connect(
                probe, other.node_ip(0), RA_TLS_PORT, "x",
                other._new_kds_client(),
                [other.build.expected_measurement], HmacDrbg(b"c5"),
            )
