"""Boundary-node use case: Revelio-protected protocol translation."""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto import encoding
from repro.ic import (
    AssetCanister,
    BoundaryNodeApp,
    BoundaryNodeError,
    KvCanister,
    ServiceWorker,
    build_service_worker,
)
from repro.ic.boundary_node import SERVICE_WORKER_PATH
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec

INDEX_HTML = b"<html><body>ic dapp</body></html>"


@pytest.fixture(scope="module")
def subnet():
    from repro.ic import Subnet

    subnet = Subnet(num_replicas=4, seed=b"bn-tests")
    subnet.install_canister("frontend", AssetCanister({"/index.html": INDEX_HTML}))
    subnet.install_canister("app", KvCanister())
    return subnet


@pytest.fixture(scope="module")
def deployment(registry_and_pins, subnet):
    registry, pins = registry_and_pins
    worker = build_service_worker(subnet.public_key)
    build = build_revelio_image(
        make_spec(registry, pins, extra_files={SERVICE_WORKER_PATH: worker})
    )
    deployment = RevelioDeployment(
        build, num_nodes=2, latency=ZERO_LATENCY, seed=b"bn-deploy"
    )
    app = BoundaryNodeApp(subnet)
    deployment.launch_fleet(app_factory=app.install)
    deployment.create_sp_node()
    deployment.provision_certificates()
    return deployment


class TestDirectMode:
    def test_index_served_from_canister(self, deployment):
        browser, _ = deployment.make_user("bn-u1", "10.2.1.1")
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert result.response.body == INDEX_HTML

    def test_attestation_passes(self, deployment):
        browser, extension = deployment.make_user("bn-u2", "10.2.1.2")
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert any(e.kind == "validated" for e in extension.events)


class TestServiceWorkerMode:
    def _install_worker(self, deployment, browser):
        response, _ = browser.client.get(f"https://{deployment.domain}/sw.js")
        assert response.status == 200
        return ServiceWorker.decode(response.body)

    def test_worker_served_from_measured_rootfs(self, deployment, subnet):
        browser, _ = deployment.make_user("bn-u3", "10.2.1.3")
        browser.navigate(f"https://{deployment.domain}/")
        worker = self._install_worker(deployment, browser)
        assert worker.verify_signatures
        assert worker.subnet_public_key == subnet.public_key

    def test_worker_round_trip(self, deployment):
        browser, _ = deployment.make_user("bn-u4", "10.2.1.4")
        browser.navigate(f"https://{deployment.domain}/")
        worker = self._install_worker(deployment, browser)
        base = f"https://{deployment.domain}"
        worker.call(
            browser.client, base, "app", "put",
            encoding.encode({"key": "greeting", "value": b"hello ic"}),
            kind="update",
        )
        raw = worker.call(browser.client, base, "app", "get", b"greeting")
        assert encoding.decode(raw)["value"] == b"hello ic"

    def test_forged_responses_detected_by_worker(
        self, registry_and_pins, subnet
    ):
        registry, pins = registry_and_pins
        worker_blob = build_service_worker(subnet.public_key)
        build = build_revelio_image(
            make_spec(registry, pins,
                      extra_files={SERVICE_WORKER_PATH: worker_blob})
        )
        deployment = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"bn-forge"
        )
        evil_app = BoundaryNodeApp(subnet, forge_responses=True)
        deployment.launch_fleet(app_factory=evil_app.install)
        deployment.create_sp_node()
        deployment.provision_certificates()
        browser, _ = deployment.make_user("bn-u5", "10.2.1.5")
        browser.navigate(f"https://{deployment.domain}/")
        worker = self._install_worker(deployment, browser)
        with pytest.raises(BoundaryNodeError, match="forged"):
            worker.call(
                browser.client, f"https://{deployment.domain}", "app", "keys", b""
            )

    def test_malicious_worker_image_fails_attestation(
        self, registry_and_pins, subnet, deployment
    ):
        # A BN image shipping a verification-skipping worker has a
        # different measurement; an extension pinning the honest golden
        # value blocks the site.
        registry, pins = registry_and_pins
        evil_worker = build_service_worker(subnet.public_key,
                                           verify_signatures=False)
        evil_build = build_revelio_image(
            make_spec(registry, pins,
                      extra_files={SERVICE_WORKER_PATH: evil_worker})
        )
        honest_build = deployment.build
        assert (
            evil_build.expected_measurement != honest_build.expected_measurement
        )
        evil_deployment = RevelioDeployment(
            evil_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"bn-evil"
        )
        evil_app = BoundaryNodeApp(subnet)
        evil_deployment.launch_fleet(app_factory=evil_app.install)
        evil_deployment.create_sp_node()
        evil_deployment.provision_certificates()
        browser, extension = evil_deployment.make_user(
            "bn-u6", "10.2.1.6", register_service=False
        )
        # The user pins the *honest* golden measurement.
        extension.register_site(
            evil_deployment.domain, [honest_build.expected_measurement]
        )
        result = browser.navigate(f"https://{evil_deployment.domain}/")
        assert result.blocked
        assert "measurement" in result.block_reason

    def test_malformed_worker_blob_rejected(self):
        with pytest.raises(BoundaryNodeError):
            ServiceWorker.decode(b"not a worker")
