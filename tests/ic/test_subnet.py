"""IC substrate tests: threshold signing, canisters, BFT subnet."""

import pytest

from repro.crypto import encoding
from repro.crypto.drbg import HmacDrbg
from repro.ic.canister import AssetCanister, CanisterError, KvCanister
from repro.ic.subnet import CertifiedResponse, Subnet, SubnetError
from repro.ic.threshold import (
    SigningSession,
    ThresholdError,
    ThresholdKey,
    threshold_sign,
)


class TestThresholdKey:
    def test_sign_with_threshold_shares(self):
        key = ThresholdKey(threshold=3, num_replicas=5, rng=HmacDrbg(b"tk"))
        shares = [key.share_for(i) for i in (0, 2, 4)]
        signature = threshold_sign(key, b"message", shares)
        assert key.public_key.verify(b"message", signature)

    def test_insufficient_shares_fail(self):
        key = ThresholdKey(threshold=3, num_replicas=5, rng=HmacDrbg(b"tk2"))
        session = SigningSession(key, b"m")
        session.contribute(key.share_for(0))
        session.contribute(key.share_for(1))
        assert not session.ready
        with pytest.raises(ThresholdError):
            session.sign()

    def test_any_threshold_subset_works(self):
        import itertools

        key = ThresholdKey(threshold=2, num_replicas=4, rng=HmacDrbg(b"tk3"))
        for subset in itertools.combinations(range(4), 2):
            shares = [key.share_for(i) for i in subset]
            assert key.public_key.verify(b"m", threshold_sign(key, b"m", shares))

    def test_corrupted_share_detected(self):
        from repro.crypto.shamir import Share
        from repro.ic.threshold import KeyShare

        key = ThresholdKey(threshold=2, num_replicas=4, rng=HmacDrbg(b"tk4"))
        good = key.share_for(0)
        bad = KeyShare(
            replica_index=1,
            share=Share(index=2, value=(key.share_for(1).share.value + 1)),
        )
        with pytest.raises(ThresholdError):
            threshold_sign(key, b"m", [good, bad])

    def test_bad_parameters(self):
        with pytest.raises(ThresholdError):
            ThresholdKey(threshold=0, num_replicas=3, rng=HmacDrbg(b"x"))
        with pytest.raises(ThresholdError):
            ThresholdKey(threshold=5, num_replicas=3, rng=HmacDrbg(b"x"))


class TestCanisters:
    def test_kv_put_get(self):
        canister = KvCanister()
        canister.update("put", encoding.encode({"key": "k", "value": b"v"}))
        result = encoding.decode(canister.query("get", b"k"))
        assert result == {"found": True, "value": b"v"}

    def test_kv_missing(self):
        result = encoding.decode(KvCanister().query("get", b"nope"))
        assert result["found"] is False

    def test_kv_delete(self):
        canister = KvCanister({"k": b"v"})
        canister.update("delete", b"k")
        assert encoding.decode(canister.query("get", b"k"))["found"] is False

    def test_unknown_methods(self):
        with pytest.raises(CanisterError):
            KvCanister().query("nope", b"")
        with pytest.raises(CanisterError):
            KvCanister().update("get", b"")  # query method not callable as update

    def test_asset_canister(self):
        canister = AssetCanister({"/index.html": b"<html>app</html>"})
        result = encoding.decode(canister.query("http_request", b"/index.html"))
        assert result == {"status": 200, "body": b"<html>app</html>"}
        missing = encoding.decode(canister.query("http_request", b"/nope"))
        assert missing["status"] == 404

    def test_state_digest_tracks_state(self):
        canister = KvCanister()
        before = canister.state_digest()
        canister.update("put", encoding.encode({"key": "k", "value": b"v"}))
        assert canister.state_digest() != before

    def test_clone_is_independent(self):
        canister = KvCanister({"k": b"v"})
        clone = canister.clone()
        clone.update("delete", b"k")
        assert encoding.decode(canister.query("get", b"k"))["found"] is True


class TestSubnet:
    @pytest.fixture
    def subnet(self):
        subnet = Subnet(num_replicas=4, seed=b"subnet-tests")
        subnet.install_canister("kv", KvCanister())
        return subnet

    def test_fault_tolerance_bound(self, subnet):
        assert subnet.fault_tolerance == 1
        assert subnet.agreement_threshold == 3

    def test_update_then_query_certified(self, subnet):
        update = subnet.update(
            "kv", "put", encoding.encode({"key": "k", "value": b"v"})
        )
        assert update.verify(subnet.public_key)
        query = subnet.query("kv", "get", b"k")
        assert query.verify(subnet.public_key)
        assert encoding.decode(query.response)["value"] == b"v"

    def test_certified_response_codec(self, subnet):
        response = subnet.query("kv", "keys", b"")
        assert CertifiedResponse.decode(response.encode()) == response

    def test_forged_response_fails_verification(self, subnet):
        from dataclasses import replace

        response = subnet.query("kv", "keys", b"")
        forged = replace(response, response=b"forged")
        assert not forged.verify(subnet.public_key)

    def test_one_byzantine_replica_tolerated(self, subnet):
        subnet.replicas[2].corrupt_execution = True
        update = subnet.update(
            "kv", "put", encoding.encode({"key": "a", "value": b"1"})
        )
        assert update.verify(subnet.public_key)
        query = subnet.query("kv", "get", b"a")
        assert encoding.decode(query.response)["value"] == b"1"

    def test_one_offline_replica_tolerated(self, subnet):
        subnet.replicas[0].offline = True
        query = subnet.query("kv", "keys", b"")
        assert query.verify(subnet.public_key)

    def test_too_many_faults_halt_subnet(self, subnet):
        subnet.replicas[0].corrupt_execution = True
        subnet.replicas[1].corrupt_execution = True
        with pytest.raises(SubnetError):
            subnet.query("kv", "keys", b"")

    def test_byzantine_cannot_forge_certification(self, subnet):
        # A single corrupted replica's answer never gathers a threshold
        # signature: its forged response is simply outvoted, and the
        # certified answer is the honest one.
        subnet.replicas[3].corrupt_execution = True
        query = subnet.query("kv", "keys", b"")
        assert not query.response.startswith(b"forged")

    def test_minimum_subnet_size(self):
        with pytest.raises(SubnetError):
            Subnet(num_replicas=3)

    def test_larger_subnet(self):
        subnet = Subnet(num_replicas=13, seed=b"big")
        subnet.install_canister("kv", KvCanister())
        assert subnet.fault_tolerance == 4
        for index in range(4):
            subnet.replicas[index].corrupt_execution = True
        query = subnet.query("kv", "keys", b"")
        assert query.verify(subnet.public_key)
