"""Intel TDX substrate tests + the hardware-agnostic TEE layer."""

import pytest

from repro.amd.policy import REVELIO_POLICY
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.amd.kds import KeyDistributionServer
from repro.core.kds_client import KdsClient
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY, SimClock
from repro.tdx import (
    IntelInfrastructure,
    ProvisioningCertificationService,
    TdQuote,
    TdxError,
    verify_td_quote,
)
from repro.tee import (
    KIND_SEV_SNP,
    KIND_TDX,
    TeeError,
    TeeEvidence,
    TeeVerifier,
    snp_evidence,
    tdx_evidence,
)


@pytest.fixture(scope="module")
def intel():
    return IntelInfrastructure(HmacDrbg(b"tdx-tests"))


@pytest.fixture(scope="module")
def pcs(intel):
    return ProvisioningCertificationService(intel)


@pytest.fixture(scope="module")
def platform(intel):
    return intel.provision_platform("tdx-host-1")


@pytest.fixture
def td(platform):
    return platform.launch_td(b"revelio-td-image")


class TestTdLifecycle:
    def test_mrtd_deterministic(self, platform):
        first = platform.launch_td(b"image").mrtd
        second = platform.launch_td(b"image").mrtd
        assert first == second
        assert platform.launch_td(b"other").mrtd != first

    def test_mrtd_portable_across_platforms(self, intel):
        a = intel.provision_platform("host-a").launch_td(b"image").mrtd
        b = intel.provision_platform("host-b").launch_td(b"image").mrtd
        assert a == b

    def test_rtmr_extension(self, td):
        import hashlib

        zero = td.rtmr(0)
        digest = hashlib.sha384(b"runtime event").digest()
        td.extend_rtmr(0, digest)
        assert td.rtmr(0) == hashlib.sha384(zero + digest).digest()
        assert td.rtmr(1) == b"\x00" * 48

    def test_rtmr_validation(self, td):
        with pytest.raises(TdxError):
            td.extend_rtmr(4, b"\x00" * 48)
        with pytest.raises(TdxError):
            td.extend_rtmr(0, b"short")

    def test_sealing_bound_to_mrtd(self, platform):
        a = platform.launch_td(b"image")
        b = platform.launch_td(b"image")
        c = platform.launch_td(b"tampered")
        assert a.derive_sealing_key() == b.derive_sealing_key()
        assert a.derive_sealing_key() != c.derive_sealing_key()


class TestQuotes:
    def test_quote_verifies(self, pcs, td):
        quote = td.get_quote(b"\x11" * 64)
        pck = pcs.get_pck_certificate(quote.platform_id, quote.tee_tcb_svn)
        verify_td_quote(
            quote, pck, pcs.cert_chain(), [pcs.root_certificate], now=0,
            expected_mrtd=td.mrtd, expected_report_data=b"\x11" * 64,
        )

    def test_quote_codec(self, td):
        quote = td.get_quote(b"\x22" * 64)
        assert TdQuote.decode(quote.encode()) == quote

    def test_bad_report_data_size(self, td):
        with pytest.raises(TdxError):
            td.get_quote(b"short")

    def test_tampered_mrtd_rejected(self, pcs, td):
        from dataclasses import replace

        quote = replace(td.get_quote(b"\x00" * 64), mrtd=b"\xff" * 48)
        pck = pcs.get_pck_certificate(quote.platform_id, quote.tee_tcb_svn)
        with pytest.raises(TdxError, match="signature"):
            verify_td_quote(quote, pck, pcs.cert_chain(), [pcs.root_certificate], 0)

    def test_wrong_platform_pck_rejected(self, intel, pcs, td):
        other = intel.provision_platform("tdx-host-2")
        quote = td.get_quote(b"\x00" * 64)
        wrong_pck = pcs.get_pck_certificate(other.platform_id, other.tcb_svn)
        with pytest.raises(TdxError, match="different platform"):
            verify_td_quote(
                quote, wrong_pck, pcs.cert_chain(), [pcs.root_certificate], 0
            )

    def test_foreign_intel_rejected(self, td, pcs):
        fake = IntelInfrastructure(HmacDrbg(b"fake-intel"))
        fake_pcs = ProvisioningCertificationService(fake)
        fake_platform = fake.provision_platform("fake-host")
        fake_td = fake_platform.launch_td(b"revelio-td-image")
        quote = fake_td.get_quote(b"\x00" * 64)
        pck = fake_pcs.get_pck_certificate(quote.platform_id, quote.tee_tcb_svn)
        with pytest.raises(TdxError, match="chain"):
            verify_td_quote(
                quote, pck, fake_pcs.cert_chain(),
                [pcs.root_certificate],  # genuine Intel anchor
                now=0,
            )

    def test_unknown_platform(self, intel):
        with pytest.raises(TdxError):
            intel.pck_public_key(b"\x00" * 32, 1)


class TestTeeAbstraction:
    @pytest.fixture(scope="class")
    def verifier(self, pcs):
        amd = AmdKeyInfrastructure(HmacDrbg(b"tee-amd"))
        kds = KeyDistributionServer(amd)
        self_chip = amd.provision_chip("tee-chip")
        kds_client = KdsClient(kds, SimClock(), ZERO_LATENCY)
        verifier = TeeVerifier({KIND_SEV_SNP: kds_client, KIND_TDX: pcs})
        return verifier, self_chip

    def test_supported_kinds(self, verifier):
        tee_verifier, _ = verifier
        assert list(tee_verifier.supported_kinds()) == [KIND_SEV_SNP, KIND_TDX]

    def test_verify_snp_evidence(self, verifier):
        tee_verifier, chip = verifier
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        evidence = snp_evidence(guest.get_report(b"\x33" * 64))
        verified = tee_verifier.verify(
            evidence, now=0, expected_measurements=[guest.measurement],
            expected_report_data=b"\x33" * 64,
        )
        assert verified.kind == KIND_SEV_SNP
        assert verified.measurement == guest.measurement

    def test_verify_tdx_evidence(self, verifier, td):
        tee_verifier, _ = verifier
        evidence = tdx_evidence(td.get_quote(b"\x44" * 64))
        verified = tee_verifier.verify(
            evidence, now=0, expected_measurements=[td.mrtd]
        )
        assert verified.kind == KIND_TDX
        assert verified.measurement == td.mrtd

    def test_envelope_round_trip(self, td):
        evidence = tdx_evidence(td.get_quote(b"\x00" * 64))
        assert TeeEvidence.decode(evidence.encode()) == evidence

    def test_wrong_golden_rejected_uniformly(self, verifier, td):
        tee_verifier, chip = verifier
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        for evidence in (
            snp_evidence(guest.get_report(b"\x00" * 64)),
            tdx_evidence(td.get_quote(b"\x00" * 64)),
        ):
            with pytest.raises(TeeError, match="golden"):
                tee_verifier.verify(
                    evidence, now=0, expected_measurements=[b"\x99" * 48]
                )

    def test_unknown_kind_rejected(self, verifier):
        tee_verifier, _ = verifier
        with pytest.raises(TeeError, match="no verifier"):
            tee_verifier.verify(
                TeeEvidence(kind="arm-cca", body=b""), now=0,
                expected_measurements=[],
            )

    def test_cross_technology_report_data_check(self, verifier, td):
        tee_verifier, _ = verifier
        evidence = tdx_evidence(td.get_quote(b"\x55" * 64))
        with pytest.raises(TeeError, match="REPORT_DATA"):
            tee_verifier.verify(
                evidence, now=0, expected_measurements=[td.mrtd],
                expected_report_data=b"\x66" * 64,
            )

    def test_malformed_envelope(self):
        with pytest.raises(TeeError):
            TeeEvidence.decode(b"junk")
