"""Shared fixtures: a pinned package registry and built Revelio images."""

import pytest

from repro.build import ImageSpec, Package, PackagePin, PackageRegistry, build_revelio_image
from repro.crypto import sigcache
from repro.crypto.drbg import HmacDrbg


@pytest.fixture(autouse=True)
def _fresh_signature_cache():
    """Isolate the process-wide verification cache per test: fixtures
    reuse DRBG seeds, so identical signatures recur across tests and
    would otherwise leak cache hits between them.  (The EC point
    precompute cache is deliberately left alone — it only affects
    speed, never observable state.)"""
    sigcache.reset_cache()
    yield
    sigcache.reset_cache()


def make_registry():
    """A registry with the software the use-case images install."""
    registry = PackageRegistry()
    pins = {}
    catalogue = [
        Package.create(
            "nginx",
            "1.24.0",
            files={
                "/usr/sbin/nginx": b"\x7fELF-nginx" + b"n" * 2000,
                "/etc/nginx/nginx.conf": b"server { listen 443 ssl; }",
            },
            build_files={"/usr/include/nginx.h": b"#define NGINX"},
        ),
        Package.create(
            "cryptpad-server",
            "5.2.1",
            files={
                "/opt/cryptpad/server.js": b"// cryptpad server " + b"c" * 3000,
                "/opt/cryptpad/www/app.js": b"// e2ee client code " + b"a" * 1500,
            },
        ),
        Package.create(
            "ic-boundary-node",
            "0.9.0",
            files={
                "/opt/ic/boundary-node": b"\x7fELF-bn" + b"b" * 4000,
                "/opt/ic/service-worker.js": b"// ic service worker " + b"s" * 1000,
            },
        ),
        Package.create(
            "revelio-agent",
            "1.0.0",
            files={
                "/usr/bin/revelio-agent": b"\x7fELF-agent" + b"r" * 1000,
            },
        ),
    ]
    for package in catalogue:
        digest = registry.publish(package)
        pins[package.name] = PackagePin(package.name, package.version, digest)
    return registry, pins


@pytest.fixture(scope="session")
def registry_and_pins():
    return make_registry()


def make_spec(registry, pins, name="boundary-node", init_steps=None, **overrides):
    """An ImageSpec for the standard test service."""
    package_names = {
        "boundary-node": ["nginx", "ic-boundary-node", "revelio-agent"],
        "cryptpad": ["nginx", "cryptpad-server", "revelio-agent"],
    }.get(name, ["nginx", "revelio-agent"])
    kwargs = dict(
        name=name,
        version="1.0.0",
        registry=registry,
        package_pins=[pins[p] for p in package_names],
        service_domain=f"{name}.example",
        services=("https",),
        data_volume_blocks=16,
    )
    if init_steps is not None:
        kwargs["init_steps"] = init_steps
    kwargs.update(overrides)
    return ImageSpec(**kwargs)


@pytest.fixture(scope="session")
def built_image(registry_and_pins):
    """A fully built boundary-node image (init steps included)."""
    registry, pins = registry_and_pins
    return build_revelio_image(make_spec(registry, pins))


@pytest.fixture
def rng():
    return HmacDrbg(b"test-fixture-rng")
