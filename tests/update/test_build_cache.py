"""The content-addressed build cache: incremental rebuilds reuse
unchanged stages, cached and uncached builds stay byte-identical."""

from repro.build import BuildCache, build_revelio_image, cache_key
from tests.conftest import make_registry, make_spec


class TestCacheKey:
    def test_keys_are_length_framed(self):
        # (b"ab", b"c") and (b"a", b"bc") must not collide.
        assert cache_key(b"ab", b"c") != cache_key(b"a", b"bc")

    def test_keys_are_deterministic(self):
        assert cache_key(b"x", b"y") == cache_key(b"x", b"y")


class TestBuildCache:
    def test_memo_hits_on_second_lookup(self):
        cache = BuildCache()
        calls = []
        key = cache_key(b"input")
        assert cache.memo("rootfs", key, lambda: calls.append(1) or b"v") == b"v"
        assert cache.memo("rootfs", key, lambda: calls.append(1) or b"v") == b"v"
        assert len(calls) == 1
        assert cache.hits["rootfs"] == 1 and cache.misses["rootfs"] == 1
        assert cache.hit_ratio() == 0.5

    def test_stats_reset_keeps_entries(self):
        cache = BuildCache()
        cache.memo("verity", cache_key(b"k"), lambda: b"v")
        cache.reset_stats()
        assert len(cache) == 1
        assert cache.hit_ratio() == 0.0
        cache.memo("verity", cache_key(b"k"), lambda: b"boom")
        assert cache.hits["verity"] == 1


class TestIncrementalRebuild:
    def test_same_spec_rebuild_hits_every_stage(self, update_world):
        cache = update_world["cache"]
        registry, pins = update_world["registry"], update_world["pins"]
        before_hits = dict(cache.hits)
        rebuild = build_revelio_image(make_spec(registry, pins), cache=cache)
        assert rebuild.image.encode() == update_world["base"].image.encode()
        for stage in ("rootfs", "verity", "measurement"):
            assert cache.hits[stage] > before_hits.get(stage, 0), stage

    def test_cached_build_equals_uncached_build(self, update_world):
        registry, pins = update_world["registry"], update_world["pins"]
        uncached = build_revelio_image(make_spec(registry, pins))
        assert uncached.image.encode() == update_world["base"].image.encode()
        assert uncached.root_hash == update_world["base"].root_hash
        assert (
            uncached.expected_measurement
            == update_world["base"].expected_measurement
        )

    def test_one_package_change_misses_but_builds_correctly(self):
        registry, pins = make_registry()
        cache = BuildCache()
        build_revelio_image(make_spec(registry, pins), cache=cache)
        misses_before = dict(cache.misses)
        changed = build_revelio_image(
            make_spec(registry, pins, version="9.9.9"), cache=cache
        )
        # A different version writes a different manifest: the rootfs
        # stage must recompute, not serve a stale slice.
        assert cache.misses["rootfs"] == misses_before["rootfs"] + 1
        fresh = build_revelio_image(make_spec(registry, pins, version="9.9.9"))
        assert changed.image.encode() == fresh.image.encode()

    def test_cache_stats_surface_on_the_build(self, update_world):
        assert update_world["base"].cache_stats["entries"] >= 3
        uncached = build_revelio_image(
            make_spec(update_world["registry"], update_world["pins"])
        )
        assert uncached.cache_stats == {}
