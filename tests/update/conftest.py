"""Build-layer fixtures: a base build and a one-package-change target."""

import pytest

from repro.build import (
    BuildCache,
    Package,
    PackagePin,
    build_revelio_image,
)
from tests.conftest import make_registry, make_spec


@pytest.fixture(scope="module")
def update_world():
    """One registry, a shared build cache, the base build, and a target
    build that differs by exactly one bumped package."""
    registry, pins = make_registry()
    cache = BuildCache()
    base = build_revelio_image(make_spec(registry, pins), cache=cache)

    bumped = Package.create(
        "revelio-agent",
        "1.0.1",
        files={"/usr/bin/revelio-agent": b"\x7fELF-agent-v2" + b"r" * 1000},
    )
    digest = registry.publish(bumped)
    pins_v2 = dict(pins)
    pins_v2["revelio-agent"] = PackagePin("revelio-agent", "1.0.1", digest)
    target = build_revelio_image(
        make_spec(registry, pins_v2, version="1.0.1"), cache=cache
    )
    return {
        "registry": registry,
        "pins": pins,
        "pins_v2": pins_v2,
        "cache": cache,
        "base": base,
        "target": target,
    }
