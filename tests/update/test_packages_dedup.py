"""Registry payload deduplication: identical file contents published
under different packages (or versions) are stored once, by content
hash, without changing any resolve/pinning behaviour."""

import pytest

from repro.build import Package, PackageError, PackagePin, PackageRegistry


def _publish(registry, name, version, files):
    package = Package.create(name, version, files=files)
    return package, registry.publish(package)


class TestPayloadDedup:
    def test_identical_payloads_are_interned_across_packages(self):
        registry = PackageRegistry()
        shared = b"\x7fELF-shared-runtime" + b"x" * 4096
        _publish(registry, "app-a", "1.0.0", {"/opt/a/bin": shared})
        _publish(registry, "app-b", "1.0.0", {"/opt/b/bin": shared})
        stats = registry.dedup_stats()
        assert stats["packages"] == 2
        assert stats["deduped_bytes"] == len(shared)
        assert stats["stored_bytes"] == stats["logical_bytes"] - len(shared)

    def test_version_bump_shares_unchanged_files(self):
        registry = PackageRegistry()
        unchanged = b"config-that-never-changes" * 100
        _publish(
            registry, "svc", "1.0.0",
            {"/etc/svc.conf": unchanged, "/usr/bin/svc": b"\x7fELF-v1"},
        )
        _publish(
            registry, "svc", "2.0.0",
            {"/etc/svc.conf": unchanged, "/usr/bin/svc": b"\x7fELF-v2"},
        )
        stats = registry.dedup_stats()
        assert stats["deduped_bytes"] == len(unchanged)

    def test_dedup_preserves_resolve_and_digest(self):
        plain, deduped = PackageRegistry(), PackageRegistry()
        files = {"/opt/app/bin": b"\x7fELF-app" + b"a" * 500}
        _, digest_a = _publish(plain, "app", "1.0.0", dict(files))
        # Publish a twin payload first so the second registry interns
        # the app's contents against an existing blob.
        _publish(deduped, "twin", "1.0.0", dict(files))
        _, digest_b = _publish(deduped, "app", "1.0.0", dict(files))
        assert digest_a == digest_b
        pin = PackagePin("app", "1.0.0", digest_a)
        assert (
            plain.resolve(pin).file_items == deduped.resolve(pin).file_items
        )

    def test_interned_storage_shares_one_object(self):
        registry = PackageRegistry()
        blob = b"B" * 2048
        _, digest_one = _publish(registry, "one", "1.0.0", {"/a": blob})
        _, digest_two = _publish(
            registry, "two", "1.0.0", {"/b": bytes(blob)}
        )
        content_one = registry.resolve(
            PackagePin("one", "1.0.0", digest_one)
        ).files["/a"]
        content_two = registry.resolve(
            PackagePin("two", "1.0.0", digest_two)
        ).files["/b"]
        assert content_one is content_two

    def test_tampered_payloads_still_fail_the_pin(self):
        registry = PackageRegistry()
        _, digest = _publish(registry, "app", "1.0.0", {"/opt/app": b"good"})
        registry.tamper("app", "1.0.0", {"/opt/app": b"evil"})
        with pytest.raises(PackageError, match="digest mismatch"):
            registry.resolve(PackagePin("app", "1.0.0", digest))

    def test_republish_conflict_still_rejected(self):
        registry = PackageRegistry()
        _publish(registry, "app", "1.0.0", {"/opt/app": b"original"})
        with pytest.raises(PackageError, match="different contents"):
            _publish(registry, "app", "1.0.0", {"/opt/app": b"tampered"})
