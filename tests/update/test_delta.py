"""Block-level delta images: minimal diffs, exact application, typed
fail-closed rejection on every tampering vector."""

import dataclasses
import hashlib

import pytest

from repro.build import (
    DELTA_REASON_CODES,
    DeltaError,
    ImageDelta,
    apply_delta,
    compute_delta,
)


@pytest.fixture(scope="module")
def delta(update_world):
    return compute_delta(
        update_world["base"].image, update_world["target"].image
    )


class TestComputeDelta:
    def test_one_package_change_ships_a_fraction_of_the_image(
        self, update_world, delta
    ):
        full = len(update_world["target"].image.disk_image)
        assert 0 < delta.delta_bytes() <= full // 4

    def test_roots_and_digests_recorded(self, update_world, delta):
        assert delta.base_root_hash == update_world["base"].root_hash
        assert delta.target_root_hash == update_world["target"].root_hash
        assert delta.base_disk_digest == hashlib.sha256(
            update_world["base"].image.disk_image
        ).digest()

    def test_cross_image_delta_refused(self, update_world):
        other = dataclasses.replace(
            update_world["target"].image, name="other-image"
        )
        with pytest.raises(ValueError, match="image identities"):
            compute_delta(update_world["base"].image, other)

    def test_blob_hashes_are_position_bound(self, delta):
        hashes = delta.blob_hashes()
        assert len(hashes) == len(delta.changed_blocks)
        (first_index, first_content) = delta.changed_blocks[0]
        transposed = dataclasses.replace(
            delta,
            changed_blocks=(
                ((first_index + 1, first_content),)
                + delta.changed_blocks[1:]
            ),
        )
        assert transposed.blob_hashes()[0] != hashes[0]


class TestApplyDelta:
    def test_apply_reproduces_the_target_exactly(self, update_world, delta):
        applied = apply_delta(
            update_world["base"].image, delta,
            target_measurement=update_world["target"].expected_measurement,
        )
        assert applied == update_world["target"].image
        assert (
            applied.disk_image == update_world["target"].image.disk_image
        )

    def test_roundtrip_through_encoded_blob(self, update_world, delta):
        decoded = ImageDelta.decode(delta.encode())
        applied = apply_delta(update_world["base"].image, decoded)
        assert applied.disk_image == update_world["target"].image.disk_image

    def test_wrong_base_is_base_mismatch(self, update_world, delta):
        with pytest.raises(DeltaError) as info:
            apply_delta(update_world["target"].image, delta)
        assert info.value.code == "base_mismatch"

    def test_corrupted_block_is_delta_corrupt(self, update_world, delta):
        index, content = delta.changed_blocks[0]
        flipped = bytes([content[0] ^ 0xFF]) + content[1:]
        tampered = dataclasses.replace(
            delta,
            changed_blocks=((index, flipped),) + delta.changed_blocks[1:],
        )
        with pytest.raises(DeltaError) as info:
            apply_delta(update_world["base"].image, tampered)
        assert info.value.code == "delta_corrupt"

    def test_lying_target_root_is_digest_mismatch(self, update_world, delta):
        lying = dataclasses.replace(
            delta, target_root_hash=delta.base_root_hash
        )
        with pytest.raises(DeltaError) as info:
            apply_delta(update_world["base"].image, lying)
        assert info.value.code == "digest_mismatch"

    def test_wrong_signed_measurement_is_digest_mismatch(
        self, update_world, delta
    ):
        with pytest.raises(DeltaError) as info:
            apply_delta(
                update_world["base"].image, delta,
                target_measurement=update_world["base"].expected_measurement,
            )
        assert info.value.code == "digest_mismatch"

    def test_unreadable_blob_is_delta_corrupt(self):
        with pytest.raises(DeltaError) as info:
            ImageDelta.decode(b"not a delta at all")
        assert info.value.code == "delta_corrupt"

    def test_every_code_is_stable(self):
        assert DELTA_REASON_CODES == (
            "base_mismatch", "delta_corrupt", "digest_mismatch"
        )
