"""The signed update channel: manifest round trips, the node-side gate
(signature, epoch, base chain), and the full client pipeline."""

import dataclasses

import pytest

from repro.attest import VerificationPolicy, reset_tracer
from repro.attest.trace import get_tracer
from repro.build import (
    CHANNEL_REASON_CODES,
    ChannelError,
    SignedManifest,
    UpdateChannel,
    UpdateClient,
    compute_delta,
    verify_manifest,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


@pytest.fixture(scope="module")
def channel_world(update_world):
    base, target = update_world["base"], update_world["target"]
    key = PrivateKey.generate_ecdsa(HmacDrbg(b"channel-tests"), "P-256")
    channel = UpdateChannel(key, image_name=base.image.name)
    delta = compute_delta(base.image, target.image)
    signed = channel.publish(
        delta, base.expected_measurement, target.expected_measurement
    )
    return {
        "key": key,
        "channel": channel,
        "delta": delta,
        "signed": signed,
        "blob": channel.blob(signed.manifest.delta_digest),
    }


class TestManifest:
    def test_signed_manifest_round_trips(self, channel_world):
        signed = channel_world["signed"]
        assert SignedManifest.decode(signed.encode()) == signed

    def test_epochs_are_monotonic(self, update_world, channel_world):
        key = PrivateKey.generate_ecdsa(HmacDrbg(b"epochs"), "P-256")
        channel = UpdateChannel(
            key, image_name=update_world["base"].image.name
        )
        first = channel.publish(
            channel_world["delta"],
            update_world["base"].expected_measurement,
            update_world["target"].expected_measurement,
        )
        second = channel.publish(
            channel_world["delta"],
            update_world["base"].expected_measurement,
            update_world["target"].expected_measurement,
        )
        assert (first.manifest.epoch, second.manifest.epoch) == (1, 2)
        assert channel.manifest_at(1) == first
        assert channel.latest() == second

    def test_channel_refuses_foreign_image(self, channel_world, update_world):
        foreign = dataclasses.replace(
            channel_world["delta"], image_name="someone-else"
        )
        with pytest.raises(ValueError, match="channel serves"):
            channel_world["channel"].publish(
                foreign,
                update_world["base"].expected_measurement,
                update_world["target"].expected_measurement,
            )


class TestVerifyManifest:
    def test_genuine_manifest_verifies(self, channel_world):
        manifest = verify_manifest(
            channel_world["signed"],
            trusted_key=channel_world["key"].public_key(),
            last_epoch=0,
        )
        assert manifest.epoch == 1

    def test_wrong_key_is_bad_signature(self, channel_world):
        stranger = PrivateKey.generate_ecdsa(HmacDrbg(b"stranger"), "P-256")
        with pytest.raises(ChannelError) as info:
            verify_manifest(
                channel_world["signed"],
                trusted_key=stranger.public_key(),
                last_epoch=0,
            )
        assert info.value.code == "bad_signature"
        assert get_tracer().update.rejections["bad_signature"] == 1

    def test_replayed_epoch_is_stale(self, channel_world):
        with pytest.raises(ChannelError) as info:
            verify_manifest(
                channel_world["signed"],
                trusted_key=channel_world["key"].public_key(),
                last_epoch=channel_world["signed"].manifest.epoch,
            )
        assert info.value.code == "stale_epoch"

    def test_moved_node_is_base_mismatch(self, channel_world, update_world):
        with pytest.raises(ChannelError) as info:
            verify_manifest(
                channel_world["signed"],
                trusted_key=channel_world["key"].public_key(),
                last_epoch=0,
                node_measurement=update_world["target"].expected_measurement,
            )
        assert info.value.code == "base_mismatch"

    def test_policy_golden_set_gates_the_base(
        self, channel_world, update_world
    ):
        policy = VerificationPolicy(
            golden_measurements=[
                update_world["target"].expected_measurement
            ]
        )
        with pytest.raises(ChannelError) as info:
            verify_manifest(
                channel_world["signed"],
                trusted_key=channel_world["key"].public_key(),
                last_epoch=0,
                policy=policy,
            )
        assert info.value.code == "base_mismatch"
        # The same manifest passes once its base is in the golden set.
        welcoming = VerificationPolicy(
            golden_measurements=[update_world["base"].expected_measurement]
        )
        verify_manifest(
            channel_world["signed"],
            trusted_key=channel_world["key"].public_key(),
            last_epoch=0,
            policy=welcoming,
        )


class TestUpdateClient:
    def test_full_pipeline_applies_and_advances_epoch(
        self, channel_world, update_world
    ):
        client = UpdateClient(channel_world["key"].public_key())
        applied = client.apply(
            update_world["base"].image,
            channel_world["signed"],
            channel_world["blob"],
        )
        assert applied == update_world["target"].image
        assert client.epoch == 1
        snapshot = get_tracer().update.snapshot()
        assert snapshot["applied"] == 1 and snapshot["rejections"] == {}

    def test_tampered_blob_is_delta_corrupt(
        self, channel_world, update_world
    ):
        blob = bytearray(channel_world["blob"])
        blob[-1] ^= 0xFF
        client = UpdateClient(channel_world["key"].public_key())
        with pytest.raises(ChannelError) as info:
            client.apply(
                update_world["base"].image,
                channel_world["signed"],
                bytes(blob),
            )
        assert info.value.code == "delta_corrupt"
        assert client.epoch == 0  # never advanced

    def test_swapped_blocks_fail_the_signed_block_hashes(
        self, channel_world, update_world
    ):
        delta = channel_world["delta"]
        (a_index, a_content) = delta.changed_blocks[0]
        (b_index, b_content) = delta.changed_blocks[1]
        swapped = dataclasses.replace(
            delta,
            changed_blocks=(
                ((a_index, b_content), (b_index, a_content))
                + delta.changed_blocks[2:]
            ),
        )
        # A fresh channel signs the swapped delta so its blob digest is
        # self-consistent; the *original* signed manifest must still
        # reject it (the block hashes are position-bound).
        client = UpdateClient(channel_world["key"].public_key())
        with pytest.raises(ChannelError) as info:
            client.apply(
                update_world["base"].image,
                channel_world["signed"],
                swapped.encode(),
            )
        assert info.value.code == "delta_corrupt"

    def test_shared_apply_cache_deduplicates_work(
        self, channel_world, update_world
    ):
        cache = {}
        for _ in range(3):
            client = UpdateClient(
                channel_world["key"].public_key(), apply_cache=cache
            )
            applied = client.apply(
                update_world["base"].image,
                channel_world["signed"],
                channel_world["blob"],
            )
            assert applied.disk_image == (
                update_world["target"].image.disk_image
            )
        assert get_tracer().update.apply_cache_hits == 2
        assert len(cache) == 1

    def test_taxonomy_is_stable(self):
        assert CHANNEL_REASON_CODES == (
            "bad_signature",
            "base_mismatch",
            "delta_corrupt",
            "digest_mismatch",
            "stale_epoch",
        )
