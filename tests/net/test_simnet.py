"""Simulated network, DNS, firewall, and latency accounting tests."""

import pytest

from repro.build import NetworkPolicy
from repro.net.dns import DnsError, DnsRegistry
from repro.net.firewall import ConnectionRefused, Firewall
from repro.net.latency import ZERO_LATENCY, LatencyModel, SimClock
from repro.net.simnet import Network, NetworkError


def _echo(payload, context):
    return b"echo:" + payload


class TestHostsAndRouting:
    @pytest.fixture
    def net(self):
        return Network(ZERO_LATENCY)

    def test_round_trip(self, net):
        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(8080, _echo)
        assert client.request("10.0.0.1", 8080, b"hi") == b"echo:hi"

    def test_no_route(self, net):
        client = net.add_host("client", "10.0.0.2")
        with pytest.raises(NetworkError, match="no route"):
            client.request("10.9.9.9", 80, b"x")

    def test_closed_port(self, net):
        net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        with pytest.raises(NetworkError, match="refused"):
            client.request("10.0.0.1", 80, b"x")

    def test_duplicate_ip_rejected(self, net):
        net.add_host("a", "10.0.0.1")
        with pytest.raises(NetworkError):
            net.add_host("b", "10.0.0.1")

    def test_close_port(self, net):
        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(80, _echo)
        server.close_port(80)
        with pytest.raises(NetworkError):
            client.request("10.0.0.1", 80, b"x")

    def test_invalid_port(self, net):
        server = net.add_host("server", "10.0.0.1")
        with pytest.raises(NetworkError):
            server.listen(0, _echo)


class TestFirewall:
    def test_revelio_policy_blocks_ssh(self):
        firewall = Firewall.from_network_policy(NetworkPolicy())
        assert firewall.allows_inbound(443)
        assert firewall.allows_inbound(8080)  # Revelio bootstrap endpoint
        assert not firewall.allows_inbound(22)
        assert not firewall.allows_inbound(9999)

    def test_ssh_must_be_explicitly_enabled(self):
        # Port 22 listed but ssh_enabled False -> still blocked.
        firewall = Firewall(allowed_inbound_ports=(443, 22), ssh_enabled=False)
        assert not firewall.allows_inbound(22)
        enabled = Firewall(allowed_inbound_ports=(443,), ssh_enabled=True)
        assert enabled.allows_inbound(22)

    def test_network_enforces_firewall(self):
        net = Network(ZERO_LATENCY)
        vm = net.add_host(
            "revelio-vm", "10.0.0.1",
            firewall=Firewall.from_network_policy(NetworkPolicy()),
        )
        attacker = net.add_host("attacker", "10.6.6.6")
        vm.listen(443, _echo)
        assert attacker.request("10.0.0.1", 443, b"ok") == b"echo:ok"
        with pytest.raises(ConnectionRefused):
            attacker.request("10.0.0.1", 22, b"ssh")


class TestInterceptors:
    @pytest.fixture
    def net(self):
        return Network(ZERO_LATENCY)

    def test_redirect(self, net):
        honest = net.add_host("honest", "10.0.0.1")
        evil = net.add_host("evil", "10.6.6.6")
        client = net.add_host("client", "10.0.0.2")
        honest.listen(80, lambda p, c: b"honest")
        evil.listen(80, lambda p, c: b"evil")
        net.add_interceptor(
            lambda src, dst, port, payload: (src, "10.6.6.6", port, payload)
            if dst == "10.0.0.1"
            else (src, dst, port, payload)
        )
        assert client.request("10.0.0.1", 80, b"x") == b"evil"

    def test_tamper(self, net):
        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(80, _echo)
        net.add_interceptor(lambda s, d, p, payload: (s, d, p, b"tampered"))
        assert client.request("10.0.0.1", 80, b"original") == b"echo:tampered"

    def test_drop(self, net):
        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(80, _echo)
        net.add_interceptor(lambda s, d, p, payload: None)
        with pytest.raises(NetworkError, match="dropped"):
            client.request("10.0.0.1", 80, b"x")

    def test_remove_interceptor(self, net):
        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(80, _echo)
        dropper = lambda s, d, p, payload: None  # noqa: E731
        net.add_interceptor(dropper)
        net.remove_interceptor(dropper)
        assert client.request("10.0.0.1", 80, b"x") == b"echo:x"


class TestClockAndLatency:
    def test_rtt_charged(self):
        net = Network(LatencyModel(base_rtt=0.01))
        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(80, _echo)
        client.request("10.0.0.1", 80, b"x")
        client.request("10.0.0.1", 80, b"x")
        assert net.clock.now == pytest.approx(0.02)

    def test_processing_time_charged(self):
        net = Network(LatencyModel(base_rtt=0.0))

        def slow(payload, context):
            context.add_processing_time(0.5)
            return b"done"

        server = net.add_host("server", "10.0.0.1")
        client = net.add_host("client", "10.0.0.2")
        server.listen(80, slow)
        client.request("10.0.0.1", 80, b"x")
        assert net.clock.now == pytest.approx(0.5)

    def test_pair_override(self):
        model = LatencyModel(base_rtt=0.005, pair_rtt={("client", "kds"): 0.4})
        assert model.rtt("client", "kds") == 0.4
        assert model.rtt("kds", "client") == 0.4
        assert model.rtt("client", "server") == 0.005

    def test_clock_monotonic(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestRegions:
    def _model(self):
        return LatencyModel(
            base_rtt=0.005,
            pair_rtt={("client", "kds"): 0.4},
            region_rtt={("us-east", "eu"): 0.08},
        )

    def test_cross_region_uses_region_map_either_order(self):
        model = self._model()
        assert model.rtt_between("a", "b", "us-east", "eu") == 0.08
        assert model.rtt_between("a", "b", "eu", "us-east") == 0.08

    def test_same_or_missing_region_uses_base(self):
        model = self._model()
        assert model.rtt_between("a", "b", "eu", "eu") == 0.005
        assert model.rtt_between("a", "b", None, "eu") == 0.005
        assert model.rtt_between("a", "b", "us-east", None) == 0.005
        assert model.rtt_between("a", "b") == 0.005

    def test_unmapped_region_pair_falls_back_to_base(self):
        model = self._model()
        assert model.rtt_between("a", "b", "us-east", "ap") == 0.005

    def test_pair_override_beats_region_map(self):
        model = self._model()
        assert model.rtt_between("client", "kds", "us-east", "eu") == 0.4
        assert model.rtt_between("kds", "client", "eu", "us-east") == 0.4

    def test_network_charges_region_rtt_on_exchange(self):
        net = Network(self._model())
        server = net.add_host("server", "10.0.0.1", region="eu")
        client = net.add_host("client", "10.0.0.2", region="us-east")
        local = net.add_host("local", "10.0.0.3", region="eu")
        server.listen(80, _echo)
        client.request("10.0.0.1", 80, b"x")
        assert net.clock.now == pytest.approx(0.08)
        local.request("10.0.0.1", 80, b"x")
        assert net.clock.now == pytest.approx(0.085)
        assert net.rtt_between(client, server) == 0.08
        assert net.rtt_between(local, server) == 0.005


class TestDns:
    def test_register_resolve(self):
        dns = DnsRegistry()
        dns.register("example.com", "10.0.0.1")
        assert dns.resolve("example.com") == "10.0.0.1"
        assert dns.resolve("EXAMPLE.COM") == "10.0.0.1"

    def test_nxdomain(self):
        with pytest.raises(DnsError):
            DnsRegistry().resolve("missing.example")

    def test_txt_records(self):
        dns = DnsRegistry()
        dns.set_txt("_acme-challenge.example.com", ["token123"])
        assert dns.get_txt("_acme-challenge.example.com") == ["token123"]
        assert dns.get_txt("other.example.com") == []

    def test_redirect_attack(self):
        dns = DnsRegistry()
        dns.register("service.example", "10.0.0.1")
        previous = dns.redirect("service.example", "10.6.6.6")
        assert previous == ["10.0.0.1"]
        assert dns.resolve("service.example") == "10.6.6.6"

    def test_round_robin(self):
        dns = DnsRegistry()
        dns.register("fleet.example", ["10.0.0.1", "10.0.0.2"])
        dns.add_record("fleet.example", "10.0.0.3")
        seen = [dns.resolve("fleet.example") for _ in range(6)]
        assert seen == ["10.0.0.1", "10.0.0.2", "10.0.0.3"] * 2
        assert dns.resolve_all("fleet.example") == [
            "10.0.0.1", "10.0.0.2", "10.0.0.3",
        ]

    def test_empty_record_set_rejected(self):
        import pytest as _pytest

        with _pytest.raises(DnsError):
            DnsRegistry().register("x.example", [])
