"""TLS handshake/record and HTTP stack tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.crypto.x509 import Name
from repro.net.http import (
    ConnectionInfo,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    parse_url,
)
from repro.net.latency import ZERO_LATENCY
from repro.net.simnet import Network
from repro.net.tls import TlsHandshakeError, TlsServer, tls_connect
from repro.pki.ca import WebPki

NOW = 0


@pytest.fixture
def world():
    """A network with a PKI, one TLS server, and one client host."""
    rng = HmacDrbg(b"tls-tests")
    net = Network(ZERO_LATENCY)
    pki = WebPki.create(rng.fork(b"pki"))
    server_host = net.add_host("server", "10.0.0.1")
    client_host = net.add_host("client", "10.0.0.2")
    net.dns.register("service.example", "10.0.0.1")

    server_key = PrivateKey.generate_ecdsa(rng.fork(b"server-key"))
    leaf = pki.intermediate.issue(
        Name("service.example"),
        server_key.public_key(),
        0,
        10**9,
        san=("service.example",),
    )
    http = HttpServer("service.example")
    http.add_route("GET", "/", lambda req, ctx: HttpResponse.ok(b"<html>hello</html>"))
    http.add_route(
        "POST", "/submit",
        lambda req, ctx: HttpResponse.ok(b"got:" + req.body, "text/plain"),
    )
    http.serve_tls(server_host, pki.chain_for(leaf), server_key, rng.fork(b"srv"))
    return {
        "net": net,
        "pki": pki,
        "rng": rng,
        "client_host": client_host,
        "server_host": server_host,
        "server_key": server_key,
        "leaf": leaf,
        "http": http,
    }


class TestTlsHandshake:
    def test_connect_and_exchange(self, world):
        connection = tls_connect(
            world["client_host"], "10.0.0.1", 443, "service.example",
            [world["pki"].trust_anchor], world["rng"].fork(b"c1"), NOW,
        )
        request = HttpRequest("GET", "/").encode()
        response = HttpResponse.decode(connection.request(request))
        assert response.status == 200
        assert response.body == b"<html>hello</html>"

    def test_peer_public_key_exposed(self, world):
        connection = tls_connect(
            world["client_host"], "10.0.0.1", 443, "service.example",
            [world["pki"].trust_anchor], world["rng"].fork(b"c2"), NOW,
        )
        assert connection.peer_public_key == world["server_key"].public_key()

    def test_untrusted_ca_rejected(self, world):
        other_pki = WebPki.create(HmacDrbg(b"other-pki"))
        with pytest.raises(TlsHandshakeError):
            tls_connect(
                world["client_host"], "10.0.0.1", 443, "service.example",
                [other_pki.trust_anchor], world["rng"].fork(b"c3"), NOW,
            )

    def test_hostname_mismatch_rejected(self, world):
        with pytest.raises(TlsHandshakeError):
            tls_connect(
                world["client_host"], "10.0.0.1", 443, "evil.example",
                [world["pki"].trust_anchor], world["rng"].fork(b"c4"), NOW,
            )

    def test_impersonator_without_private_key_fails(self, world):
        # An attacker replays the honest certificate chain but signs the
        # transcript with a different key: the signature check catches it.
        rng = world["rng"]
        evil_key = PrivateKey.generate_ecdsa(rng.fork(b"evil"))
        evil_host = world["net"].add_host("evil", "10.6.6.6")
        evil_tls = TlsServer(
            world["pki"].chain_for(world["leaf"]),  # stolen chain
            evil_key,  # ...but not the private key
            lambda p, c: p,
            rng.fork(b"evil-srv"),
        )
        evil_host.listen(443, evil_tls.handle)
        with pytest.raises(TlsHandshakeError, match="signature"):
            tls_connect(
                world["client_host"], "10.6.6.6", 443, "service.example",
                [world["pki"].trust_anchor], rng.fork(b"c5"), NOW,
            )

    def test_sessions_survive_multiple_requests(self, world):
        connection = tls_connect(
            world["client_host"], "10.0.0.1", 443, "service.example",
            [world["pki"].trust_anchor], world["rng"].fork(b"c6"), NOW,
        )
        for index in range(5):
            body = f"msg-{index}".encode()
            response = HttpResponse.decode(
                connection.request(HttpRequest("POST", "/submit", body=body).encode())
            )
            assert response.body == b"got:" + body

    def test_server_restart_invalidates_sessions(self, world):
        connection = tls_connect(
            world["client_host"], "10.0.0.1", 443, "service.example",
            [world["pki"].trust_anchor], world["rng"].fork(b"c7"), NOW,
        )
        world["http"].tls.reset_sessions()
        from repro.net.tls import TlsRecordError

        with pytest.raises(TlsRecordError):
            connection.request(HttpRequest("GET", "/").encode())

    def test_closed_connection_rejects_requests(self, world):
        connection = tls_connect(
            world["client_host"], "10.0.0.1", 443, "service.example",
            [world["pki"].trust_anchor], world["rng"].fork(b"c8"), NOW,
        )
        connection.close()
        from repro.net.tls import TlsError

        with pytest.raises(TlsError):
            connection.request(b"x")


class TestHttpClient:
    def test_get(self, world):
        client = HttpClient(
            world["client_host"], [world["pki"].trust_anchor],
            world["rng"].fork(b"hc"),
        )
        response, info = client.get("https://service.example/")
        assert response.status == 200
        assert info.scheme == "https"
        assert info.destination_ip == "10.0.0.1"
        assert info.peer_public_key == world["server_key"].public_key()

    def test_post(self, world):
        client = HttpClient(
            world["client_host"], [world["pki"].trust_anchor],
            world["rng"].fork(b"hc2"),
        )
        response, _ = client.post("https://service.example/submit", b"payload")
        assert response.body == b"got:payload"

    def test_connection_reuse(self, world):
        client = HttpClient(
            world["client_host"], [world["pki"].trust_anchor],
            world["rng"].fork(b"hc3"),
        )
        _, first = client.get("https://service.example/")
        _, second = client.get("https://service.example/")
        assert first.session_id == second.session_id

    def test_reconnect_after_server_restart(self, world):
        client = HttpClient(
            world["client_host"], [world["pki"].trust_anchor],
            world["rng"].fork(b"hc4"),
        )
        _, first = client.get("https://service.example/")
        world["http"].tls.reset_sessions()
        response, second = client.get("https://service.example/")
        assert response.status == 200
        assert first.session_id != second.session_id

    def test_404(self, world):
        client = HttpClient(
            world["client_host"], [world["pki"].trust_anchor],
            world["rng"].fork(b"hc5"),
        )
        response, _ = client.get("https://service.example/missing")
        assert response.status == 404

    def test_plain_http(self, world):
        plain = HttpServer("plain")
        plain.add_route("GET", "/", lambda r, c: HttpResponse.ok(b"insecure"))
        plain.serve_plain(world["server_host"], 80)
        client = HttpClient(world["client_host"], [], world["rng"].fork(b"hc6"))
        response, info = client.get("http://service.example/")
        assert response.body == b"insecure"
        assert info.peer_certificate is None


class TestUrlParsing:
    @pytest.mark.parametrize(
        "url,scheme,host,port,path",
        [
            ("https://a.example/", "https", "a.example", 443, "/"),
            ("https://a.example", "https", "a.example", 443, "/"),
            ("http://a.example:8080/x/y", "http", "a.example", 8080, "/x/y"),
            ("https://a.example/.well-known/report", "https", "a.example", 443,
             "/.well-known/report"),
        ],
    )
    def test_valid(self, url, scheme, host, port, path):
        parsed = parse_url(url)
        assert (parsed.scheme, parsed.hostname, parsed.port, parsed.path) == (
            scheme, host, port, path,
        )

    @pytest.mark.parametrize("url", ["ftp://x/", "https://", "no-scheme", "https://h:bad/"])
    def test_invalid(self, url):
        with pytest.raises(HttpError):
            parse_url(url)


class TestMessageCodecs:
    def test_request_round_trip(self):
        request = HttpRequest("POST", "/x", {"h": "v"}, b"body")
        assert HttpRequest.decode(request.encode()) == request

    def test_response_round_trip(self):
        response = HttpResponse(201, {"h": "v"}, b"body")
        assert HttpResponse.decode(response.encode()) == response

    def test_malformed(self):
        with pytest.raises(HttpError):
            HttpRequest.decode(b"junk")
        with pytest.raises(HttpError):
            HttpResponse.decode(b"junk")

    def test_connection_info_no_cert(self):
        info = ConnectionInfo("http", "1.2.3.4")
        assert info.peer_public_key is None
