"""Sync vs event-kernel simnet parity.

The same request schedule must produce the same responses and the same
elapsed simulated time whether the network runs synchronously (each
exchange advances the shared clock in place) or in event mode (each
exchange is measured in an isolated clock scope and replayed as a
kernel sleep).  This is the contract that lets every synchronous
component run unchanged under the event kernel — including
cross-region routes priced by the inter-region RTT map.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import LatencyModel, SimClock
from repro.net.simnet import Network
from repro.sim import EventKernel, SimRng, sleep
from repro.sim.kernel import run_until_complete

REGIONS = ("us-east", "eu", None)


def _build_world(base_rtt, region_rtt, processing, client_region, server_region):
    net = Network(
        LatencyModel(
            base_rtt=base_rtt,
            region_rtt={("us-east", "eu"): region_rtt},
        )
    )
    server = net.add_host("server", "10.0.0.1", region=server_region)
    client = net.add_host("client", "10.0.0.2", region=client_region)

    def handler(payload, context):
        context.add_processing_time(processing)
        return b"echo:" + payload

    server.listen(80, handler)
    return net, client


@settings(max_examples=40, deadline=None)
@given(
    base_rtt=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    region_rtt=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    processing=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    client_region=st.sampled_from(REGIONS),
    server_region=st.sampled_from(REGIONS),
    payloads=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=5),
)
def test_sync_and_event_mode_agree(
    base_rtt, region_rtt, processing, client_region, server_region, payloads
):
    # Synchronous run: requests advance the shared clock in place.
    net_sync, client_sync = _build_world(
        base_rtt, region_rtt, processing, client_region, server_region
    )
    sync_trace = []
    for payload in payloads:
        response = client_sync.request("10.0.0.1", 80, payload)
        sync_trace.append((response, net_sync.clock.now))

    # Event-mode run: the same schedule inside one kernel process, each
    # exchange measured and replayed as a kernel sleep.
    net_event, client_event = _build_world(
        base_rtt, region_rtt, processing, client_region, server_region
    )
    kernel = EventKernel(net_event.clock, SimRng(0))
    net_event.enable_event_mode(kernel)
    event_trace = []

    def driver():
        for payload in payloads:
            with net_event.measure() as scope:
                response = client_event.request("10.0.0.1", 80, payload)
            yield sleep(scope.elapsed)
            event_trace.append((response, net_event.clock.now))

    run_until_complete(kernel, driver())

    assert len(event_trace) == len(sync_trace)
    for (sync_response, sync_time), (event_response, event_time) in zip(
        sync_trace, event_trace
    ):
        assert event_response == sync_response
        # Scope replay may reassociate float additions; allow ulp noise.
        assert abs(event_time - sync_time) < 1e-9


@settings(max_examples=20, deadline=None)
@given(
    region_rtt=st.floats(min_value=0.01, max_value=0.3, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_event_mode_trace_is_seed_deterministic(region_rtt, seed):
    """Same seed, same jittered schedule, same final sim time."""

    def one_run():
        net, client = _build_world(0.005, region_rtt, 0.01, "us-east", "eu")
        kernel = EventKernel(net.clock, SimRng(seed))
        net.enable_event_mode(kernel)
        jitter = kernel.rng.fork("jitter")
        trace = []

        def driver():
            for index in range(10):
                yield sleep(jitter.expovariate(50.0))
                with net.measure() as scope:
                    response = client.request("10.0.0.1", 80, b"%d" % index)
                yield sleep(scope.elapsed)
                trace.append((response, net.clock.now))

        run_until_complete(kernel, driver())
        return trace

    assert one_run() == one_run()
