"""Property-based tests over the storage stack invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import RamBlockDevice
from repro.storage.dm_crypt import luks_format, luks_open
from repro.storage.dm_verity import VerityError, verity_format, verity_open
from repro.storage.filesystem import FileSystem, build_image, image_to_device

import pytest


# -- dm-verity: ANY corruption is detected ------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    num_blocks=st.integers(min_value=1, max_value=40),
    corrupt_offset_frac=st.floats(min_value=0.0, max_value=0.999),
    mask=st.integers(min_value=1, max_value=255),
    seed=st.binary(min_size=4, max_size=8),
)
def test_verity_detects_any_data_corruption(num_blocks, corrupt_offset_frac,
                                            mask, seed):
    block_size = 512
    data = RamBlockDevice(
        num_blocks, block_size,
        initial=HmacDrbg(seed).generate(num_blocks * block_size),
    )
    result = verity_format(data, salt=b"prop")
    device = verity_open(data, result.hash_device, result.root_hash)
    offset = int(corrupt_offset_frac * num_blocks * block_size)
    data.corrupt(offset, xor_mask=mask)
    with pytest.raises(VerityError):
        device.read_block(offset // block_size)


@settings(max_examples=20, deadline=None)
@given(
    num_blocks=st.integers(min_value=1, max_value=30),
    seed=st.binary(min_size=4, max_size=8),
)
def test_verity_clean_device_fully_readable(num_blocks, seed):
    block_size = 512
    data = RamBlockDevice(
        num_blocks, block_size,
        initial=HmacDrbg(seed).generate(num_blocks * block_size),
    )
    result = verity_format(data, salt=b"prop2")
    device = verity_open(data, result.hash_device, result.root_hash)
    device.verify_all()


# -- dm-crypt: round trips and key isolation -----------------------------------


@settings(max_examples=20, deadline=None)
@given(
    num_blocks=st.integers(min_value=1, max_value=8),
    first=st.integers(min_value=0, max_value=4),
    seed=st.binary(min_size=4, max_size=8),
)
def test_dmcrypt_round_trip(num_blocks, first, seed):
    rng = HmacDrbg(seed)
    device = RamBlockDevice(16, 512)
    volume = luks_format(device, rng, master_key=rng.generate(64))
    data = rng.generate(num_blocks * 512)
    if first + num_blocks > volume.num_blocks:
        first = 0
        num_blocks = min(num_blocks, volume.num_blocks)
        data = data[: num_blocks * 512]
    volume.write_blocks(first, data)
    assert volume.read_blocks(first, num_blocks) == data


@settings(max_examples=15, deadline=None)
@given(seed=st.binary(min_size=4, max_size=8))
def test_dmcrypt_different_keys_cannot_open(seed):
    from repro.storage.dm_crypt import DmCryptError

    rng = HmacDrbg(seed)
    device = RamBlockDevice(8, 512)
    key = rng.generate(64)
    luks_format(device, rng, master_key=key)
    other = bytearray(key)
    other[0] ^= 1
    with pytest.raises(DmCryptError):
        luks_open(device, master_key=bytes(other))


@settings(max_examples=15, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=2000),
    seed=st.binary(min_size=4, max_size=8),
)
def test_dmcrypt_ciphertext_hides_plaintext(payload, seed):
    # No plaintext run of >= 8 bytes survives into the ciphertext.
    rng = HmacDrbg(seed)
    device = RamBlockDevice(8, 512)
    volume = luks_format(device, rng, master_key=rng.generate(64))
    block = payload.ljust(512, b"\x00")[:512]
    volume.write_block(0, block)
    raw = b"".join(device.read_block(i) for i in range(device.num_blocks))
    for start in range(0, len(payload) - 8):
        window = payload[start : start + 8]
        if window != b"\x00" * 8:
            assert window not in raw


# -- filesystem: determinism and faithfulness ---------------------------------


_paths = st.from_regex(r"/[a-z]{1,8}(/[a-z0-9._-]{1,10}){0,3}", fullmatch=True)
_file_maps = st.dictionaries(_paths, st.binary(max_size=3000), max_size=10)


@settings(max_examples=25, deadline=None)
@given(files=_file_maps)
def test_filesystem_build_deterministic(files):
    assert build_image(files) == build_image(dict(reversed(list(files.items()))))


@settings(max_examples=25, deadline=None)
@given(files=_file_maps)
def test_filesystem_reads_back_exactly(files):
    fs = FileSystem(image_to_device(build_image(files)))
    assert fs.list_files() == sorted(files)
    for path, content in files.items():
        assert fs.read_file(path) == content


@settings(max_examples=20, deadline=None)
@given(files=_file_maps, extra=st.binary(min_size=1, max_size=50))
def test_filesystem_any_change_changes_image(files, extra):
    changed = dict(files)
    changed["/mutation-marker"] = extra
    assert build_image(files) != build_image(changed)
