"""Property tests over the reproducible build (requirement F5).

Determinism: equal specs — even built from independently constructed
registries — yield byte-identical images and equal golden measurements.
Sensitivity: any single-byte change to a package file, and any
reordering of the init-step sequence, shifts the measurement.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.build import (
    DEFAULT_INIT_STEPS,
    ImageSpec,
    Package,
    PackagePin,
    PackageRegistry,
    build_revelio_image,
)
from repro.build.measurement import expected_measurement_for_image

_SETTINGS = settings(max_examples=25, deadline=None)


def _spec(app_blob: bytes, init_steps=DEFAULT_INIT_STEPS) -> ImageSpec:
    """A minimal spec whose only free variables are the app package's
    contents and the init-step order."""
    registry = PackageRegistry()
    pins = []
    for package in (
        Package.create("app", "1.0.0", files={"/opt/app/bin": app_blob}),
        Package.create(
            "agent", "1.0.0", files={"/usr/bin/agent": b"\x7fELF-agent"}
        ),
    ):
        digest = registry.publish(package)
        pins.append(PackagePin(package.name, package.version, digest))
    return ImageSpec(
        name="prop-node",
        version="1.0.0",
        registry=registry,
        package_pins=pins,
        service_domain="prop.example",
        services=("https",),
        data_volume_blocks=8,
        init_steps=tuple(init_steps),
    )


@_SETTINGS
@given(app_blob=st.binary(min_size=1, max_size=512))
def test_same_spec_builds_byte_identical_images(app_blob):
    first = build_revelio_image(_spec(app_blob))
    second = build_revelio_image(_spec(app_blob))
    assert first.image.encode() == second.image.encode()
    assert first.root_hash == second.root_hash
    assert first.expected_measurement == second.expected_measurement


@_SETTINGS
@given(app_blob=st.binary(min_size=1, max_size=512))
def test_golden_equals_replayed_measurement(app_blob):
    build = build_revelio_image(_spec(app_blob))
    assert build.expected_measurement == expected_measurement_for_image(build.image)


@_SETTINGS
@given(
    app_blob=st.binary(min_size=1, max_size=512),
    data=st.data(),
)
def test_single_byte_package_mutation_changes_measurement(app_blob, data):
    index = data.draw(st.integers(0, len(app_blob) - 1), label="byte index")
    mask = data.draw(st.integers(1, 255), label="xor mask")
    mutated = bytearray(app_blob)
    mutated[index] ^= mask
    honest = build_revelio_image(_spec(app_blob))
    tampered = build_revelio_image(_spec(bytes(mutated)))
    assert honest.root_hash != tampered.root_hash
    assert honest.expected_measurement != tampered.expected_measurement


@_SETTINGS
@given(steps=st.permutations(DEFAULT_INIT_STEPS))
def test_init_step_reorder_changes_measurement(steps):
    assume(tuple(steps) != DEFAULT_INIT_STEPS)
    baseline = build_revelio_image(_spec(b"app"))
    reordered = build_revelio_image(_spec(b"app", init_steps=tuple(steps)))
    assert baseline.expected_measurement != reordered.expected_measurement


def test_different_registries_same_content_agree():
    """The examples' two-independent-parties scenario, as a unit test."""
    first = build_revelio_image(_spec(b"release-blob"))
    second = build_revelio_image(_spec(b"release-blob"))
    assert first.image.encode() == second.image.encode()


def test_extra_golden_measurements_shift_measurement():
    base = build_revelio_image(_spec(b"app"))
    spec = _spec(b"app")
    spec.extra_golden_measurements = (b"\x42" * 48,)
    with_goldens = build_revelio_image(spec)
    assert base.expected_measurement != with_goldens.expected_measurement


def test_min_data_volume_enforced():
    from repro.build import BuildError

    registry = PackageRegistry()
    digest = registry.publish(Package.create("a", "1", files={"/a": b"x"}))
    with pytest.raises(BuildError, match="data volume"):
        ImageSpec(
            name="n",
            version="1",
            registry=registry,
            package_pins=[PackagePin("a", "1", digest)],
            service_domain="n.example",
            data_volume_blocks=2,
        )
