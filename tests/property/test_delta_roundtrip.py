"""Property tests over the delta-update path (invariant 17).

Round trip: for random base/target builds, applying the computed delta
reproduces the target disk byte-for-byte, the verity root, and the
golden measurement — including through the encoded blob. Fail-closed:
a corrupted block, a replayed epoch, or a manifest signed by the wrong
key raises a typed error before any image object exists.
"""

import dataclasses
import functools

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.attest import reset_tracer
from repro.build import (
    ChannelError,
    DeltaError,
    ImageDelta,
    ImageSpec,
    Package,
    PackagePin,
    PackageRegistry,
    UpdateChannel,
    UpdateClient,
    apply_delta,
    build_revelio_image,
    compute_delta,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey

_SETTINGS = settings(max_examples=25, deadline=None)
_FEWER = settings(max_examples=10, deadline=None)


def _spec(app_blob: bytes, version: str) -> ImageSpec:
    registry = PackageRegistry()
    pins = []
    for package in (
        Package.create("app", version, files={"/opt/app/bin": app_blob}),
        Package.create(
            "agent", "1.0.0", files={"/usr/bin/agent": b"\x7fELF-agent"}
        ),
    ):
        digest = registry.publish(package)
        pins.append(PackagePin(package.name, package.version, digest))
    return ImageSpec(
        name="delta-prop-node",
        version=version,
        registry=registry,
        package_pins=pins,
        service_domain="delta-prop.example",
        services=("https",),
        data_volume_blocks=8,
    )


def _pair(base_blob: bytes, target_blob: bytes):
    base = build_revelio_image(_spec(base_blob, "1.0.0"))
    target = build_revelio_image(_spec(target_blob, "1.0.1"))
    return base, target


@functools.lru_cache(maxsize=1)
def _fixed_world():
    """One base/target/channel trio for the channel-level properties,
    so each Hypothesis example varies only the adversarial input."""
    base, target = _pair(b"app-v1", b"app-v2")
    key = PrivateKey.generate_ecdsa(HmacDrbg(b"delta-prop-genuine"), "P-256")
    channel = UpdateChannel(key, image_name=base.image.name)
    signed = channel.publish(
        compute_delta(base.image, target.image),
        base.expected_measurement,
        target.expected_measurement,
    )
    return base, target, key, signed, channel.blob(signed.manifest.delta_digest)


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


@_FEWER
@given(
    base_blob=st.binary(min_size=1, max_size=512),
    target_blob=st.binary(min_size=1, max_size=512),
)
def test_delta_roundtrip_reproduces_target_exactly(base_blob, target_blob):
    base, target = _pair(base_blob, target_blob)
    delta = compute_delta(base.image, target.image)
    applied = apply_delta(
        base.image,
        ImageDelta.decode(delta.encode()),
        target_measurement=target.expected_measurement,
    )
    assert applied.disk_image == target.image.disk_image
    assert applied.encode() == target.image.encode()
    assert delta.target_root_hash == target.root_hash
    assert delta.delta_bytes() <= len(target.image.disk_image)


@_SETTINGS
@given(data=st.data())
def test_corrupted_block_never_yields_an_image(data):
    base, target, _, _, _ = _fixed_world()
    delta = compute_delta(base.image, target.image)
    which = data.draw(
        st.integers(0, len(delta.changed_blocks) - 1), label="block"
    )
    index, content = delta.changed_blocks[which]
    offset = data.draw(st.integers(0, len(content) - 1), label="offset")
    mask = data.draw(st.integers(1, 255), label="mask")
    mutated = bytearray(content)
    mutated[offset] ^= mask
    tampered = dataclasses.replace(
        delta,
        changed_blocks=(
            delta.changed_blocks[:which]
            + ((index, bytes(mutated)),)
            + delta.changed_blocks[which + 1:]
        ),
    )
    with pytest.raises(DeltaError) as info:
        apply_delta(base.image, tampered)
    assert info.value.code == "delta_corrupt"


@_SETTINGS
@given(ahead=st.integers(0, 8))
def test_replayed_epoch_never_yields_an_image(ahead):
    base, _, key, signed, blob = _fixed_world()
    client = UpdateClient(
        key.public_key(), epoch=signed.manifest.epoch + ahead
    )
    with pytest.raises(ChannelError) as info:
        client.apply(base.image, signed, blob)
    assert info.value.code == "stale_epoch"
    assert client.epoch == signed.manifest.epoch + ahead


@_SETTINGS
@given(seed=st.binary(min_size=1, max_size=32))
def test_wrongly_signed_manifest_never_yields_an_image(seed):
    base, target, key, _, _ = _fixed_world()
    attacker = PrivateKey.generate_ecdsa(
        HmacDrbg(b"delta-prop-attacker:" + seed), "P-256"
    )
    assume(
        attacker.public_key().fingerprint() != key.public_key().fingerprint()
    )
    forge = UpdateChannel(attacker, image_name=base.image.name)
    forged = forge.publish(
        compute_delta(base.image, target.image),
        base.expected_measurement,
        target.expected_measurement,
    )
    client = UpdateClient(key.public_key())
    with pytest.raises(ChannelError) as info:
        client.apply(
            base.image, forged, forge.blob(forged.manifest.delta_digest)
        )
    assert info.value.code == "bad_signature"
    assert client.epoch == 0
