"""Randomised end-to-end invariant: *no user with a correct golden value
ever reaches a page served by a wrong-measurement endpoint*.

Hypothesis drives random scenario mixes — honest deployments, tampered
images, DNS redirects, key rotations — and the test asserts the single
property the whole system exists to provide: an extension-equipped user
whose golden set contains exactly the honest measurement either reaches
an honest endpoint or is blocked.  Never a third outcome.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from repro.virt.hypervisor import LaunchAttack
from repro.virt.vm import BootFailure
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def builds(registry_and_pins):
    registry, pins = registry_and_pins
    honest = build_revelio_image(make_spec(registry, pins))
    evil = build_revelio_image(
        make_spec(registry, pins, extra_files={"/opt/backdoor": b"evil"})
    )
    return honest, evil


_scenarios = st.fixed_dictionaries(
    {
        "serve_evil_image": st.booleans(),
        "redirect_to_impostor": st.booleans(),
        "rotate_leader": st.booleans(),
        "navigations": st.integers(min_value=1, max_value=4),
        "seed": st.binary(min_size=4, max_size=8),
    }
)


@settings(max_examples=12, deadline=None)
@given(scenario=_scenarios)
def test_honest_golden_never_reaches_wrong_endpoint(builds, scenario):
    honest, evil = builds
    build = evil if scenario["serve_evil_image"] else honest
    deployment = RevelioDeployment(
        build, num_nodes=2, latency=ZERO_LATENCY,
        seed=b"inv-" + scenario["seed"],
    )
    deployment.deploy()

    impostor_body = b"<html>impostor</html>"
    if scenario["redirect_to_impostor"]:
        from repro.crypto.drbg import HmacDrbg
        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import CertificateSigningRequest, Name
        from repro.net.http import HttpResponse, HttpServer
        from repro.pki.certbot import CertbotClient

        rng = HmacDrbg(b"impostor" + scenario["seed"])
        key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(
            Name(deployment.domain), key, san=(deployment.domain,)
        )
        chain = CertbotClient(
            deployment.acme, deployment.network.dns
        ).obtain_certificate(deployment.domain, csr)
        host = deployment.network.add_host("impostor", "10.6.6.6")
        server = HttpServer("impostor")
        server.add_route("GET", "/", lambda r, c: HttpResponse.ok(impostor_body))
        server.serve_tls(host, chain, key, rng.fork(b"tls"))
        deployment.network.dns.redirect(deployment.domain, "10.6.6.6")

    browser, extension = deployment.make_user(
        "inv-user", "10.2.0.77", register_service=False
    )
    # The user's golden set holds exactly the HONEST measurement.
    extension.register_site(deployment.domain, [honest.expected_measurement])

    for step in range(scenario["navigations"]):
        if scenario["rotate_leader"] and step == 1 and not scenario[
            "redirect_to_impostor"
        ]:
            deployment.provisioning = deployment.sp.provision_fleet(
                [d.host.ip_address for d in deployment.nodes], leader_index=1
            )
            browser.client.close_all()
        result = browser.navigate(f"https://{deployment.domain}/")

        served_honestly = (
            not scenario["serve_evil_image"]
            and not scenario["redirect_to_impostor"]
        )
        if result.blocked:
            continue  # blocking is always a safe outcome
        # THE invariant: an unblocked access implies an honest endpoint.
        assert served_honestly, (
            f"user reached a dishonest endpoint at step {step}: {scenario}"
        )
        assert result.response.body != impostor_body
        # And the serving VM really measures the honest golden value.
        assert (
            deployment.nodes[0].vm.measurement == honest.expected_measurement
        )


@settings(max_examples=8, deadline=None)
@given(
    corrupt_offset=st.integers(min_value=4096, max_value=4096 * 40),
    seed=st.binary(min_size=4, max_size=8),
)
def test_any_disk_corruption_never_yields_running_service(
    builds, corrupt_offset, seed
):
    """Random offline disk corruption: the VM either fails to boot or
    (if the flip landed outside verified regions, e.g. the empty data
    partition) boots with its measurement intact."""
    honest, _ = builds
    deployment = RevelioDeployment(
        honest, num_nodes=1, latency=ZERO_LATENCY, seed=b"corr-" + seed
    )
    try:
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                tamper_disk=lambda disk: disk.corrupt(
                    corrupt_offset % disk.size_bytes
                )
            )
        )
    except BootFailure:
        return  # detected: the safe outcome
    # Booted: the corruption must have been outside the measured rootfs
    # (e.g. the not-yet-encrypted data partition), and the measurement
    # still matches the golden value.
    vm = deployment.nodes[0].vm
    assert vm.measurement == honest.expected_measurement
    vm.storage["verity"].verify_all()  # rootfs is still fully intact
