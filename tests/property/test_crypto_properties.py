"""Property-based tests (hypothesis) over the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import encoding
from repro.crypto.aes import AES
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.crypto.kdf import hkdf
from repro.crypto.merkle import MerkleTree
from repro.crypto.modes import AeadCipher, XtsCipher
from repro.crypto.shamir import reconstruct_secret, split_secret

# -- canonical encoding ------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.binary(max_size=64),
    st.text(max_size=32),
)

_encodables = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


@given(_encodables)
def test_encoding_round_trip(value):
    assert encoding.decode(encoding.encode(value)) == value


@given(_encodables, _encodables)
def test_encoding_injective(left, right):
    if encoding.encode(left) == encoding.encode(right):
        assert left == right


# -- AES / XTS / AEAD --------------------------------------------------------


@given(st.binary(min_size=16, max_size=16), st.sampled_from([16, 24, 32]))
def test_aes_round_trip(block, key_size):
    cipher = AES(bytes(range(key_size)))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=1, max_value=4),
    st.binary(min_size=8, max_size=8),
)
def test_xts_round_trip(first_sector, num_sectors, seed):
    rng = HmacDrbg(seed)
    xts = XtsCipher(rng.generate(64), sector_size=512)
    data = rng.generate(512 * num_sectors)
    assert xts.decrypt(xts.encrypt(data, first_sector), first_sector) == data


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=256), st.binary(max_size=64), st.binary(min_size=12, max_size=12))
def test_aead_round_trip(plaintext, aad, nonce):
    aead = AeadCipher(b"\x07" * 32)
    assert aead.open(nonce, aead.seal(nonce, plaintext, aad), aad) == plaintext


# -- HKDF --------------------------------------------------------------------


@given(st.binary(max_size=64), st.binary(max_size=32), st.integers(min_value=0, max_value=128))
def test_hkdf_length_and_prefix(ikm, info, length):
    out = hkdf(ikm, info=info, length=length)
    assert len(out) == length
    longer = hkdf(ikm, info=info, length=length + 16)
    assert longer[:length] == out


# -- Merkle ------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=40),
    st.sampled_from([2, 3, 128]),
)
def test_merkle_all_leaves_provable(blocks, arity):
    tree = MerkleTree.from_blocks(blocks, arity=arity)
    for index, block in enumerate(blocks):
        proof = tree.prove(index)
        assert MerkleTree.verify_proof(sha256(block), proof, tree.root, arity=arity)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=20),
    st.data(),
)
def test_merkle_detects_substitution(blocks, data):
    tree = MerkleTree.from_blocks(blocks, arity=2)
    index = data.draw(st.integers(min_value=0, max_value=len(blocks) - 1))
    proof = tree.prove(index)
    tampered = blocks[index] + b"!"
    assert not MerkleTree.verify_proof(
        sha256(tampered), proof, tree.root, arity=2
    )


# -- Shamir ------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**200),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=4),
    st.binary(min_size=4, max_size=16),
)
def test_shamir_round_trip(secret, threshold, extra, seed):
    from repro.crypto.shamir import DEFAULT_PRIME

    secret %= DEFAULT_PRIME
    num_shares = threshold + extra
    shares = split_secret(secret, threshold, num_shares, HmacDrbg(seed))
    # Use the *last* threshold shares, not the first, to vary indices.
    assert reconstruct_secret(shares[-threshold:], threshold) == secret
