"""Property-based tests over attestation invariants."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amd.policy import REVELIO_POLICY, GuestPolicy
from repro.amd.report import AttestationReport
from repro.amd.secure_processor import AmdKeyInfrastructure, launch_digest
from repro.amd.tcb import TcbVersion
from repro.crypto.drbg import HmacDrbg


@pytest.fixture(scope="module")
def chip():
    return AmdKeyInfrastructure(HmacDrbg(b"prop-amd")).provision_chip("prop-chip")


# -- launch digest is a collision-resistant commitment --------------------------


@settings(max_examples=40, deadline=None)
@given(
    state_a=st.binary(max_size=200),
    state_b=st.binary(max_size=200),
)
def test_launch_digest_injective_on_state(state_a, state_b):
    if state_a != state_b:
        assert launch_digest(state_a, REVELIO_POLICY) != launch_digest(
            state_b, REVELIO_POLICY
        )
    else:
        assert launch_digest(state_a, REVELIO_POLICY) == launch_digest(
            state_b, REVELIO_POLICY
        )


@settings(max_examples=20, deadline=None)
@given(
    state=st.binary(max_size=100),
    debug=st.booleans(),
    smt=st.booleans(),
)
def test_launch_digest_binds_policy(state, debug, smt):
    policy = GuestPolicy(debug_allowed=debug, smt_allowed=smt)
    base = launch_digest(state, REVELIO_POLICY)
    other = launch_digest(state, policy)
    if policy == REVELIO_POLICY:
        assert base == other
    elif policy.encode_qword() != REVELIO_POLICY.encode_qword():
        assert base != other


# -- report wire format round trips ------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    report_data=st.binary(min_size=64, max_size=64),
    guest_svn=st.integers(min_value=0, max_value=2**32 - 1),
    vmpl=st.integers(min_value=0, max_value=3),
    tcb=st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
)
def test_report_codec_round_trip(chip, report_data, guest_svn, vmpl, tcb):
    guest = chip.launch_vm(b"fw", REVELIO_POLICY, vmpl=vmpl, guest_svn=guest_svn)
    report = guest.get_report(report_data)
    decoded = AttestationReport.decode(report.encode())
    assert decoded == report
    assert decoded.verify_signature(chip.vcek_private().public_key())


@settings(max_examples=25, deadline=None)
@given(
    byte_index=st.integers(min_value=0, max_value=10_000),
    mask=st.integers(min_value=1, max_value=255),
)
def test_any_wire_bitflip_breaks_verification(chip, byte_index, mask):
    guest = chip.launch_vm(b"fw-bitflip", REVELIO_POLICY)
    wire = bytearray(guest.get_report(b"\x00" * 64).encode())
    wire[byte_index % len(wire)] ^= mask
    try:
        tampered = AttestationReport.decode(bytes(wire))
    except Exception:
        return  # structurally invalid: also a detection
    assert not tampered.verify_signature(chip.vcek_private().public_key())


# -- sealing keys partition by measurement ------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    state_a=st.binary(max_size=60),
    state_b=st.binary(max_size=60),
    context=st.binary(max_size=20),
)
def test_sealing_keys_partition_by_measurement(chip, state_a, state_b, context):
    guest_a = chip.launch_vm(state_a, REVELIO_POLICY)
    guest_b = chip.launch_vm(state_b, REVELIO_POLICY)
    key_a = guest_a.derive_sealing_key(context)
    key_b = guest_b.derive_sealing_key(context)
    assert (key_a == key_b) == (state_a == state_b)


# -- TCB codec -----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(components=st.tuples(*[st.integers(min_value=0, max_value=255)] * 4))
def test_tcb_codec_round_trip(components):
    tcb = TcbVersion(*components)
    assert TcbVersion.decode(tcb.encode()) == tcb


@settings(max_examples=50, deadline=None)
@given(
    a=st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
    b=st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
)
def test_tcb_at_least_is_partial_order(a, b):
    tcb_a, tcb_b = TcbVersion(*a), TcbVersion(*b)
    # antisymmetry
    if tcb_a.at_least(tcb_b) and tcb_b.at_least(tcb_a):
        assert tcb_a == tcb_b
    # reflexivity
    assert tcb_a.at_least(tcb_a)


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**64 - 1))
def test_policy_qword_round_trip_of_known_bits(value):
    policy = GuestPolicy.decode_qword(value)
    # Re-encoding keeps all modelled bits (unmodelled bits are dropped).
    assert GuestPolicy.decode_qword(policy.encode_qword()) == policy
