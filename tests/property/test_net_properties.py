"""Property/fuzz tests over the network stack's codecs and TLS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.crypto.x509 import Name
from repro.net.http import HttpError, HttpRequest, HttpResponse, parse_url
from repro.net.latency import ZERO_LATENCY
from repro.net.simnet import Network
from repro.net.tls import TlsError, TlsServer, tls_connect
from repro.pki.ca import WebPki

# -- HTTP codecs ---------------------------------------------------------------

_headers = st.dictionaries(st.text(max_size=16), st.text(max_size=32), max_size=5)


@given(
    method=st.sampled_from(["GET", "POST", "PUT", "DELETE"]),
    path=st.text(max_size=64),
    headers=_headers,
    body=st.binary(max_size=2000),
)
def test_http_request_round_trip(method, path, headers, body):
    request = HttpRequest(method, path, headers, body)
    assert HttpRequest.decode(request.encode()) == request


@given(
    status=st.integers(min_value=100, max_value=599),
    headers=_headers,
    body=st.binary(max_size=2000),
)
def test_http_response_round_trip(status, headers, body):
    response = HttpResponse(status, headers, body)
    assert HttpResponse.decode(response.encode()) == response


@given(junk=st.binary(max_size=200))
def test_http_decode_never_crashes_uncontrolled(junk):
    for decoder in (HttpRequest.decode, HttpResponse.decode):
        try:
            decoder(junk)
        except (HttpError, ValueError, KeyError, TypeError):
            pass  # controlled rejection is fine


@given(
    host=st.from_regex(r"[a-z][a-z0-9-]{0,20}(\.[a-z]{2,5}){1,2}", fullmatch=True),
    port=st.integers(min_value=1, max_value=65535),
    path=st.from_regex(r"(/[a-zA-Z0-9._-]{0,10}){0,4}", fullmatch=True),
    scheme=st.sampled_from(["http", "https"]),
)
def test_url_parse_round_trip(host, port, path, scheme):
    url = f"{scheme}://{host}:{port}{path}"
    parsed = parse_url(url)
    assert parsed.hostname == host
    assert parsed.port == port
    assert parsed.scheme == scheme
    assert parsed.path == (path or "/")


# -- TLS: garbage and truncation never crash the server -------------------------


@pytest.fixture(scope="module")
def tls_world():
    rng = HmacDrbg(b"tls-fuzz")
    net = Network(ZERO_LATENCY)
    pki = WebPki.create(rng.fork(b"pki"))
    server_host = net.add_host("server", "10.0.0.1")
    client_host = net.add_host("client", "10.0.0.2")
    key = PrivateKey.generate_ecdsa(rng.fork(b"key"))
    leaf = pki.intermediate.issue(
        Name("fuzz.example"), key.public_key(), 0, 10**9, san=("fuzz.example",)
    )
    server = TlsServer(pki.chain_for(leaf), key, lambda p, c: p, rng.fork(b"srv"))
    server_host.listen(443, server.handle)
    return net, pki, client_host, rng


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(max_size=300))
def test_tls_server_rejects_garbage_controlled(tls_world, junk):
    net, _, client_host, _ = tls_world
    try:
        client_host.request("10.0.0.1", 443, junk)
    except (TlsError, ValueError, KeyError, TypeError):
        pass  # a controlled error, never a hang or state corruption


@settings(max_examples=20, deadline=None)
@given(cut=st.integers(min_value=1, max_value=50), seed=st.binary(min_size=4, max_size=8))
def test_tls_truncated_handshake_rejected(tls_world, cut, seed):
    from repro.crypto import encoding
    from repro.crypto.ec import P256
    from repro.crypto.ecdsa import EcdsaPrivateKey

    net, _, client_host, _ = tls_world
    rng = HmacDrbg(seed)
    hello = encoding.encode(
        {
            "type": "client_hello",
            "random": rng.generate(32),
            "ecdh_pub": EcdsaPrivateKey.generate(P256, rng).public_key().encode(),
            "sni": "fuzz.example",
        }
    )
    truncated = hello[: max(1, len(hello) - cut)]
    with pytest.raises((TlsError, ValueError, KeyError, TypeError)):
        client_host.request("10.0.0.1", 443, truncated)


@settings(max_examples=20, deadline=None)
@given(flip=st.integers(min_value=0, max_value=10_000), seed=st.binary(min_size=4, max_size=8))
def test_tls_record_bitflips_never_leak(tls_world, flip, seed):
    """Any record tamper yields a controlled failure, never plaintext."""
    net, pki, client_host, rng = tls_world
    connection = tls_connect(
        client_host, "10.0.0.1", 443, "fuzz.example",
        [pki.trust_anchor], HmacDrbg(seed), now=0,
    )
    # Tamper every outgoing record once via an interceptor.
    def corrupt(src, dst, port, payload):
        mutated = bytearray(payload)
        mutated[flip % len(mutated)] ^= 0x01
        return (src, dst, port, bytes(mutated))

    net.add_interceptor(corrupt)
    try:
        with pytest.raises((TlsError, ValueError, KeyError, TypeError, ConnectionError)):
            connection.request(b"secret-request")
    finally:
        net.remove_interceptor(corrupt)
