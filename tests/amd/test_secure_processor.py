"""AMD-SP behaviour: launch measurement, report issuance, sealing keys."""

import pytest

from repro.amd.policy import REVELIO_POLICY, GuestPolicy
from repro.amd.report import ReportError
from repro.amd.secure_processor import AmdKeyInfrastructure, SevError
from repro.amd.tcb import TcbVersion
from repro.crypto.drbg import HmacDrbg


@pytest.fixture
def amd():
    return AmdKeyInfrastructure(HmacDrbg(b"amd-tests"))


@pytest.fixture
def chip(amd):
    return amd.provision_chip("serial-0001")


class TestProvisioning:
    def test_chip_ids_unique(self, amd):
        first = amd.provision_chip("serial-a")
        second = amd.provision_chip("serial-b")
        assert first.chip_id != second.chip_id
        assert len(first.chip_id) == 64

    def test_amd_knows_its_chips(self, amd, chip):
        assert amd.knows_chip(chip.chip_id)
        assert not amd.knows_chip(b"\x00" * 64)

    def test_vcek_public_matches_chip_private(self, amd, chip):
        derived = amd.vcek_public_key(chip.chip_id, chip.current_tcb)
        assert derived == chip.vcek_private().public_key()

    def test_unknown_chip_rejected(self, amd):
        with pytest.raises(SevError):
            amd.vcek_public_key(b"\x00" * 64, TcbVersion())

    def test_vcek_changes_with_tcb(self, chip):
        old = chip.vcek_private(TcbVersion(1, 0, 0, 0))
        new = chip.vcek_private(TcbVersion(2, 0, 0, 0))
        assert old.d != new.d


class TestLaunchMeasurement:
    def test_same_state_same_measurement(self, chip):
        first = chip.launch_vm(b"firmware-image", REVELIO_POLICY)
        second = chip.launch_vm(b"firmware-image", REVELIO_POLICY)
        assert first.measurement == second.measurement

    def test_state_change_changes_measurement(self, chip):
        first = chip.launch_vm(b"firmware-image", REVELIO_POLICY)
        second = chip.launch_vm(b"firmware-imagf", REVELIO_POLICY)
        assert first.measurement != second.measurement

    def test_policy_change_changes_measurement(self, chip):
        first = chip.launch_vm(b"fw", REVELIO_POLICY)
        second = chip.launch_vm(b"fw", GuestPolicy(debug_allowed=True))
        assert first.measurement != second.measurement

    def test_measurement_is_sha384_sized(self, chip):
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        assert len(guest.measurement) == 48

    def test_cross_chip_measurement_identical(self, amd):
        # The launch digest depends only on guest state, not the chip —
        # that's what makes golden measurements portable across platforms.
        a = amd.provision_chip("chip-a").launch_vm(b"fw", REVELIO_POLICY)
        b = amd.provision_chip("chip-b").launch_vm(b"fw", REVELIO_POLICY)
        assert a.measurement == b.measurement

    def test_report_ids_unique_per_launch(self, chip):
        first = chip.launch_vm(b"fw", REVELIO_POLICY)
        second = chip.launch_vm(b"fw", REVELIO_POLICY)
        assert first.report_id != second.report_id


class TestReports:
    def test_report_reflects_guest(self, chip):
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        report = guest.get_report(b"\xab" * 64)
        assert report.measurement == guest.measurement
        assert report.report_data == b"\xab" * 64
        assert report.chip_id == chip.chip_id
        assert report.verify_signature(chip.vcek_private().public_key())

    def test_report_data_size_enforced(self, chip):
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        with pytest.raises(ReportError):
            guest.get_report(b"short")

    def test_terminated_guest_cannot_report(self, chip):
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        guest.terminate()
        with pytest.raises(SevError):
            guest.get_report(b"\x00" * 64)


class TestSealing:
    def test_same_measurement_same_key(self, chip):
        first = chip.launch_vm(b"fw", REVELIO_POLICY)
        second = chip.launch_vm(b"fw", REVELIO_POLICY)
        assert first.derive_sealing_key() == second.derive_sealing_key()

    def test_different_measurement_different_key(self, chip):
        good = chip.launch_vm(b"fw", REVELIO_POLICY)
        evil = chip.launch_vm(b"tampered-fw", REVELIO_POLICY)
        assert good.derive_sealing_key() != evil.derive_sealing_key()

    def test_different_chip_different_key(self, amd):
        a = amd.provision_chip("chip-a").launch_vm(b"fw", REVELIO_POLICY)
        b = amd.provision_chip("chip-b").launch_vm(b"fw", REVELIO_POLICY)
        assert a.derive_sealing_key() != b.derive_sealing_key()

    def test_context_separates_keys(self, chip):
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        assert guest.derive_sealing_key(b"disk") != guest.derive_sealing_key(b"tls")

    def test_policy_bound(self, chip):
        strict = chip.launch_vm(b"fw", REVELIO_POLICY)
        debug = chip.launch_vm(b"fw", GuestPolicy(debug_allowed=True))
        # Different policy -> different measurement AND different key.
        assert strict.derive_sealing_key() != debug.derive_sealing_key()

    def test_terminated_guest_cannot_derive(self, chip):
        guest = chip.launch_vm(b"fw", REVELIO_POLICY)
        guest.terminate()
        with pytest.raises(SevError):
            guest.derive_sealing_key()


class TestTcbUpdates:
    def test_upgrade_allowed(self, chip):
        chip.update_tcb(TcbVersion(4, 0, 9, 120))
        assert chip.current_tcb == TcbVersion(4, 0, 9, 120)

    def test_downgrade_rejected(self, chip):
        with pytest.raises(SevError):
            chip.update_tcb(TcbVersion(0, 0, 0, 0))
