"""KDS certificate issuance and end-to-end report verification."""

import pytest

from repro.amd.kds import KdsError, KeyDistributionServer
from repro.amd.policy import REVELIO_POLICY, GuestPolicy
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.amd.tcb import TcbVersion
from repro.amd.verify import AttestationError, verify_attestation_report
from repro.crypto.drbg import HmacDrbg
from repro.crypto.x509 import validate_chain

NOW = 1_000_000


@pytest.fixture(scope="module")
def amd():
    return AmdKeyInfrastructure(HmacDrbg(b"kds-tests"))


@pytest.fixture(scope="module")
def kds(amd):
    return KeyDistributionServer(amd)


@pytest.fixture(scope="module")
def chip(amd):
    return amd.provision_chip("kds-chip-1")


@pytest.fixture
def guest(chip):
    return chip.launch_vm(b"revelio-firmware", REVELIO_POLICY)


def _verify(report, kds, chip, **kwargs):
    vcek = kds.get_vcek_certificate(chip.chip_id, report.reported_tcb)
    return verify_attestation_report(
        report,
        vcek,
        kds.cert_chain(),
        [kds.ark_certificate],
        now=NOW,
        **kwargs,
    )


class TestKds:
    def test_vcek_chain_validates(self, kds, chip):
        vcek = kds.get_vcek_certificate(chip.chip_id, chip.current_tcb)
        validate_chain([vcek, *kds.cert_chain()], [kds.ark_certificate], now=NOW)

    def test_unknown_chip_rejected(self, kds):
        with pytest.raises(KdsError):
            kds.get_vcek_certificate(b"\x00" * 64, TcbVersion())

    def test_vcek_cached(self, kds, chip):
        first = kds.get_vcek_certificate(chip.chip_id, chip.current_tcb)
        second = kds.get_vcek_certificate(chip.chip_id, chip.current_tcb)
        assert first is second

    def test_vcek_embeds_platform_identity(self, kds, chip):
        vcek = kds.get_vcek_certificate(chip.chip_id, chip.current_tcb)
        assert vcek.extension("amd.chip_id") == chip.chip_id
        assert TcbVersion.decode(vcek.extension("amd.tcb")) == chip.current_tcb

    def test_different_tcb_different_vcek(self, kds, chip, amd):
        current = kds.get_vcek_certificate(chip.chip_id, chip.current_tcb)
        newer_tcb = TcbVersion(9, 9, 9, 200)
        chip2 = amd.provision_chip("kds-chip-tcb")
        older = kds.get_vcek_certificate(chip2.chip_id, newer_tcb)
        assert current.public_key != older.public_key


class TestVerifyHappyPath:
    def test_full_verification(self, kds, chip, guest):
        report = guest.get_report(b"\x11" * 64)
        verified = _verify(
            report,
            kds,
            chip,
            expected_measurement=guest.measurement,
            expected_report_data=b"\x11" * 64,
            allowed_chip_ids=[chip.chip_id],
            minimum_tcb=TcbVersion(1, 0, 0, 0),
        )
        assert verified.checked_measurement
        assert verified.checked_report_data
        assert verified.checked_chip_id

    def test_minimal_verification(self, kds, chip, guest):
        report = guest.get_report(b"\x00" * 64)
        verified = _verify(report, kds, chip)
        assert not verified.checked_measurement


class TestVerifyFailures:
    def test_wrong_measurement(self, kds, chip, guest):
        report = guest.get_report(b"\x00" * 64)
        with pytest.raises(AttestationError) as excinfo:
            _verify(report, kds, chip, expected_measurement=b"\xff" * 48)
        assert excinfo.value.reason == "measurement_mismatch"

    def test_wrong_report_data(self, kds, chip, guest):
        report = guest.get_report(b"\x00" * 64)
        with pytest.raises(AttestationError) as excinfo:
            _verify(report, kds, chip, expected_report_data=b"\xff" * 64)
        assert excinfo.value.reason == "report_data_mismatch"

    def test_chip_not_on_allowlist(self, kds, chip, guest):
        report = guest.get_report(b"\x00" * 64)
        with pytest.raises(AttestationError) as excinfo:
            _verify(report, kds, chip, allowed_chip_ids=[b"\xaa" * 64])
        assert excinfo.value.reason == "chip_id_not_allowed"

    def test_tcb_too_old(self, kds, chip, guest):
        report = guest.get_report(b"\x00" * 64)
        with pytest.raises(AttestationError) as excinfo:
            _verify(report, kds, chip, minimum_tcb=TcbVersion(255, 255, 255, 255))
        assert excinfo.value.reason == "tcb_too_old"

    def test_debug_guest_rejected(self, kds, chip):
        debug_guest = chip.launch_vm(b"fw", GuestPolicy(debug_allowed=True))
        report = debug_guest.get_report(b"\x00" * 64)
        with pytest.raises(AttestationError) as excinfo:
            _verify(report, kds, chip)
        assert excinfo.value.reason == "debug_policy"
        # ... unless the verifier explicitly allows debug guests.
        _verify(report, kds, chip, allow_debug=True)

    def test_tampered_report_signature(self, kds, chip, guest):
        from dataclasses import replace

        report = guest.get_report(b"\x00" * 64)
        tampered = replace(report, measurement=b"\xee" * 48)
        with pytest.raises(AttestationError) as excinfo:
            _verify(tampered, kds, chip)
        assert excinfo.value.reason == "bad_signature"

    def test_vcek_for_other_chip_rejected(self, kds, amd, guest):
        other_chip = amd.provision_chip("kds-chip-2")
        report = guest.get_report(b"\x00" * 64)
        wrong_vcek = kds.get_vcek_certificate(other_chip.chip_id, report.reported_tcb)
        with pytest.raises(AttestationError) as excinfo:
            verify_attestation_report(
                report,
                wrong_vcek,
                kds.cert_chain(),
                [kds.ark_certificate],
                now=NOW,
            )
        assert excinfo.value.reason == "chip_id_mismatch"

    def test_forged_root_rejected(self, kds, chip, guest):
        # An attacker running their own "AMD" cannot satisfy a verifier
        # that pins the genuine ARK.
        fake_amd = AmdKeyInfrastructure(HmacDrbg(b"fake-amd"))
        fake_kds = KeyDistributionServer(fake_amd)
        fake_chip = fake_amd.provision_chip("fake-chip")
        fake_guest = fake_chip.launch_vm(b"revelio-firmware", REVELIO_POLICY)
        report = fake_guest.get_report(b"\x00" * 64)
        fake_vcek = fake_kds.get_vcek_certificate(
            fake_chip.chip_id, report.reported_tcb
        )
        with pytest.raises(AttestationError) as excinfo:
            verify_attestation_report(
                report,
                fake_vcek,
                fake_kds.cert_chain(),
                [kds.ark_certificate],  # genuine anchor
                now=NOW,
            )
        assert excinfo.value.reason == "bad_cert_chain"

    def test_report_from_expired_chain_perspective(self, kds, chip, guest):
        report = guest.get_report(b"\x00" * 64)
        vcek = kds.get_vcek_certificate(chip.chip_id, report.reported_tcb)
        with pytest.raises(AttestationError):
            verify_attestation_report(
                report,
                vcek,
                kds.cert_chain(),
                [kds.ark_certificate],
                now=2**63,  # beyond certificate validity
            )
