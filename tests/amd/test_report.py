"""Attestation report structure and signature tests."""

import pytest

from repro.amd.policy import GuestPolicy
from repro.amd.report import (
    REPORT_VERSION,
    SIGNATURE_ALGO_ECDSA_P384_SHA384,
    AttestationReport,
    ReportError,
)
from repro.amd.tcb import TcbVersion
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ec import P384
from repro.crypto.ecdsa import EcdsaPrivateKey


@pytest.fixture(scope="module")
def vcek():
    return EcdsaPrivateKey.generate(P384, HmacDrbg(b"vcek"))


@pytest.fixture
def report():
    return AttestationReport(
        version=REPORT_VERSION,
        guest_svn=1,
        policy=GuestPolicy(abi_major=1, abi_minor=51),
        family_id=b"\x01" * 16,
        image_id=b"\x02" * 16,
        vmpl=0,
        signature_algo=SIGNATURE_ALGO_ECDSA_P384_SHA384,
        current_tcb=TcbVersion(3, 0, 8, 115),
        platform_info=0,
        report_data=b"\x03" * 64,
        measurement=b"\x04" * 48,
        host_data=b"\x05" * 32,
        id_key_digest=b"\x00" * 48,
        report_id=b"\x06" * 32,
        reported_tcb=TcbVersion(3, 0, 8, 115),
        chip_id=b"\x07" * 64,
    )


class TestWireFormat:
    def test_round_trip(self, report, vcek):
        signed = report.sign(vcek)
        assert AttestationReport.decode(signed.encode()) == signed

    def test_unsigned_cannot_encode(self, report):
        with pytest.raises(ReportError):
            report.encode()

    def test_wrong_size_rejected(self, report, vcek):
        data = report.sign(vcek).encode()
        with pytest.raises(ReportError):
            AttestationReport.decode(data[:-1])
        with pytest.raises(ReportError):
            AttestationReport.decode(data + b"\x00")

    @pytest.mark.parametrize(
        "field_name,size",
        [
            ("report_data", 64),
            ("measurement", 48),
            ("chip_id", 64),
            ("host_data", 32),
            ("report_id", 32),
            ("family_id", 16),
            ("image_id", 16),
        ],
    )
    def test_field_sizes_enforced(self, report, field_name, size):
        from dataclasses import replace

        with pytest.raises(ReportError):
            replace(report, **{field_name: b"\x00" * (size - 1)})

    def test_policy_survives_round_trip(self, report, vcek):
        from dataclasses import replace

        debug = replace(
            report, policy=GuestPolicy(abi_major=1, abi_minor=51, debug_allowed=True)
        ).sign(vcek)
        decoded = AttestationReport.decode(debug.encode())
        assert decoded.policy.debug_allowed


class TestSignature:
    def test_sign_verify(self, report, vcek):
        signed = report.sign(vcek)
        assert signed.verify_signature(vcek.public_key())

    def test_unsigned_does_not_verify(self, report, vcek):
        assert not report.verify_signature(vcek.public_key())

    def test_wrong_key_rejected(self, report, vcek):
        other = EcdsaPrivateKey.generate(P384, HmacDrbg(b"other"))
        assert not report.sign(vcek).verify_signature(other.public_key())

    @pytest.mark.parametrize(
        "mutation",
        [
            {"measurement": b"\xaa" * 48},
            {"report_data": b"\xbb" * 64},
            {"chip_id": b"\xcc" * 64},
            {"guest_svn": 99},
            {"vmpl": 3},
        ],
    )
    def test_any_field_mutation_breaks_signature(self, report, vcek, mutation):
        from dataclasses import replace

        signed = report.sign(vcek)
        tampered = replace(signed, **mutation)
        assert not tampered.verify_signature(vcek.public_key())

    def test_tcb_mutation_breaks_signature(self, report, vcek):
        from dataclasses import replace

        signed = report.sign(vcek)
        tampered = replace(signed, reported_tcb=TcbVersion(0, 0, 0, 0))
        assert not tampered.verify_signature(vcek.public_key())


class TestTcbVersion:
    def test_codec(self):
        tcb = TcbVersion(1, 2, 3, 4)
        assert TcbVersion.decode(tcb.encode()) == tcb

    def test_at_least(self):
        assert TcbVersion(3, 0, 8, 115).at_least(TcbVersion(3, 0, 8, 100))
        assert not TcbVersion(3, 0, 8, 99).at_least(TcbVersion(3, 0, 8, 100))
        # Mixed: one component newer, one older -> not at_least either way.
        assert not TcbVersion(4, 0, 7, 100).at_least(TcbVersion(3, 0, 8, 100))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            TcbVersion(256, 0, 0, 0)

    def test_bad_decode_size(self):
        with pytest.raises(ValueError):
            TcbVersion.decode(b"\x00" * 7)


class TestGuestPolicy:
    def test_qword_round_trip(self):
        policy = GuestPolicy(
            abi_major=1,
            abi_minor=51,
            smt_allowed=False,
            migrate_ma_allowed=True,
            debug_allowed=True,
            single_socket_required=True,
        )
        assert GuestPolicy.decode_qword(policy.encode_qword()) == policy

    def test_debug_bit_position(self):
        assert GuestPolicy(debug_allowed=True).encode_qword() & (1 << 19)
        assert not GuestPolicy().encode_qword() & (1 << 19)

    def test_abi_out_of_range(self):
        with pytest.raises(ValueError):
            GuestPolicy(abi_major=300)
