"""Smoke-run the example scripts end to end (reduced scale)."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run_example(name: str, **env_overrides):
    return subprocess.run(
        [sys.executable, str(REPO / "examples" / name)],
        capture_output=True,
        text=True,
        timeout=600,
        env={
            **os.environ,
            "PYTHONPATH": str(REPO / "src"),
            **env_overrides,
        },
    )


class TestFleetOperations:
    def test_runs_clean_with_reduced_storm(self):
        result = run_example(
            "fleet_operations.py", REVELIO_FLEET_SESSIONS="30"
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "30-session storm through a rolling rollout" in result.stdout
        assert "0 failed, 0 blocked" in result.stdout
        assert "all 4 nodes replaced" in result.stdout
        assert "Done" in result.stdout
