"""Streaming metrics, with the reservoir quantiles pinned against
``statistics.quantiles`` on the full sample (Hypothesis property)."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import SimClock
from repro.sim import Gauge, LatencyReservoir, MetricsRegistry, SimRng, ThroughputWindow

finite_latencies = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


def exact_quantile(data, q):
    """The inclusive-method batch quantile the streaming estimate must match."""
    if len(data) == 1:
        return data[0]
    if q == 0.0:
        return min(data)
    if q == 1.0:
        return max(data)
    # quantiles(n=k, method="inclusive") cuts at i/k for i in 1..k-1,
    # so q maps to cut index q*k - 1 for a k where q*k is integral.
    n, index = {0.5: (2, 0), 0.95: (20, 18), 0.99: (100, 98)}[q]
    return statistics.quantiles(data, n=n, method="inclusive")[index]


class TestReservoirExact:
    """Below capacity the reservoir holds every sample: quantiles must
    agree with the exact batch computation."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(finite_latencies, min_size=1, max_size=300))
    def test_p50_p95_p99_match_statistics_quantiles(self, data):
        reservoir = LatencyReservoir(capacity=4096)
        for value in data:
            reservoir.observe(value)
        for q in (0.5, 0.95, 0.99):
            assert math.isclose(
                reservoir.quantile(q),
                exact_quantile(data, q),
                rel_tol=1e-9,
                abs_tol=1e-9,
            )
        assert reservoir.max == max(data)
        assert reservoir.min == min(data)
        assert math.isclose(reservoir.mean, statistics.fmean(data), rel_tol=1e-9)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_single_sample_every_quantile_is_the_sample(self, value):
        reservoir = LatencyReservoir()
        reservoir.observe(value)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert reservoir.quantile(q) == value

    @settings(deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=2, max_value=50),
    )
    def test_all_equal_samples_collapse_to_that_value(self, value, count):
        reservoir = LatencyReservoir()
        for _ in range(count):
            reservoir.observe(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert reservoir.quantile(q) == value

    def test_two_samples_interpolate(self):
        reservoir = LatencyReservoir()
        reservoir.observe(0.0)
        reservoir.observe(10.0)
        assert reservoir.quantile(0.5) == 5.0
        assert math.isclose(
            reservoir.quantile(0.99),
            statistics.quantiles([0.0, 10.0], n=100, method="inclusive")[98],
        )

    def test_empty_reservoir_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LatencyReservoir().quantile(0.5)

    def test_out_of_range_q_raises(self):
        reservoir = LatencyReservoir()
        reservoir.observe(1.0)
        with pytest.raises(ValueError):
            reservoir.quantile(1.5)


class TestReservoirSampling:
    def test_overflow_without_rng_refuses(self):
        reservoir = LatencyReservoir(capacity=4)
        for value in range(4):
            reservoir.observe(value)
        with pytest.raises(RuntimeError, match="overflow"):
            reservoir.observe(5.0)

    def test_overflow_with_rng_keeps_exact_extremes_and_count(self):
        reservoir = LatencyReservoir(capacity=64, rng=SimRng(1))
        for value in range(1000):
            reservoir.observe(float(value))
        assert reservoir.count == 1000
        assert reservoir.max == 999.0
        assert reservoir.min == 0.0
        # The sampled median of 0..999 must land near the true median.
        assert 300.0 < reservoir.quantile(0.5) < 700.0

    def test_sampling_is_deterministic_per_seed(self):
        def run(seed):
            reservoir = LatencyReservoir(capacity=32, rng=SimRng(seed))
            for value in range(500):
                reservoir.observe(float(value))
            return reservoir.quantile(0.5)

        assert run(7) == run(7)


class TestThroughputAndGauge:
    def test_throughput_window_counts_and_peak(self):
        clock = SimClock()
        window = ThroughputWindow(clock, window_seconds=1.0)
        for _ in range(3):
            window.record()
        clock.advance(1.0)
        window.record()
        snapshot = window.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["peak_window_per_sec"] == 3.0

    def test_gauge_tracks_max_and_time_weighted_mean(self):
        clock = SimClock()
        gauge = Gauge(clock)
        gauge.set(10.0)
        clock.advance(2.0)
        gauge.set(0.0)
        clock.advance(2.0)
        snapshot = gauge.snapshot()
        assert snapshot["max"] == 10.0
        assert snapshot["time_weighted_mean"] == 5.0
        assert snapshot["current"] == 0.0


class TestRegistry:
    def test_snapshot_is_flat_sorted_and_json_safe(self):
        import json

        clock = SimClock()
        registry = MetricsRegistry(clock, rng=SimRng(0))
        registry.increment("requests_total", 3)
        registry.reservoir("latency").observe(0.25)
        registry.window("throughput").record()
        registry.gauge("queue_depth").set(2)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["requests_total"] == 3
        assert snapshot["latency.p50"] == 250.0  # scaled to ms
        json.dumps(snapshot)  # all values serialisable

    def test_named_metrics_are_memoized(self):
        registry = MetricsRegistry(SimClock())
        assert registry.reservoir("a") is registry.reservoir("a")
        assert registry.gauge("g") is registry.gauge("g")
