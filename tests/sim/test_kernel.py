"""The discrete-event kernel: ordering, processes, events, clock scopes."""

import pytest

from repro.net.latency import SimClock
from repro.sim import (
    EventKernel,
    Interrupt,
    SimRng,
    sleep,
    spawn,
    wait,
)
from repro.sim.kernel import run_until_complete


@pytest.fixture
def kernel():
    return EventKernel(SimClock(), SimRng(0))


class TestScheduling:
    def test_sleep_advances_virtual_time(self, kernel):
        timestamps = []

        def proc():
            yield sleep(1.5)
            timestamps.append(kernel.clock.now)
            yield sleep(0.5)
            timestamps.append(kernel.clock.now)

        kernel.spawn(proc())
        kernel.run()
        assert timestamps == [1.5, 2.0]

    def test_events_fire_in_time_order_with_fifo_ties(self, kernel):
        order = []

        def proc(name, delay):
            yield sleep(delay)
            order.append(name)

        kernel.spawn(proc("late", 2.0))
        kernel.spawn(proc("tie-a", 1.0))
        kernel.spawn(proc("tie-b", 1.0))
        kernel.spawn(proc("early", 0.5))
        kernel.run()
        assert order == ["early", "tie-a", "tie-b", "late"]

    def test_run_until_stops_at_horizon(self, kernel):
        hits = []

        def proc():
            for _ in range(10):
                yield sleep(1.0)
                hits.append(kernel.clock.now)

        kernel.spawn(proc())
        kernel.run(until=3.5)
        assert hits == [1.0, 2.0, 3.0]
        assert kernel.clock.now == 3.5
        kernel.run()
        assert len(hits) == 10

    def test_zero_sleep_keeps_relative_order(self, kernel):
        order = []

        def proc(name):
            yield sleep(0.0)
            order.append(name)

        kernel.spawn(proc("a"))
        kernel.spawn(proc("b"))
        kernel.run()
        assert order == ["a", "b"]

    def test_yielding_garbage_raises(self, kernel):
        def proc():
            yield "not a command"

        kernel.spawn(proc())
        with pytest.raises(TypeError, match="expected"):
            kernel.run()


class TestProcesses:
    def test_spawn_returns_handle_and_wait_gets_value(self, kernel):
        def child():
            yield sleep(1.0)
            return 42

        def parent():
            handle = yield spawn(child())
            value = yield wait(handle)
            return value

        assert run_until_complete(kernel, parent()) == 42

    def test_wait_on_finished_process_resumes_immediately(self, kernel):
        def child():
            yield sleep(0.1)
            return "done"

        def parent():
            handle = yield spawn(child())
            yield sleep(5.0)  # child long finished
            value = yield wait(handle)
            return (value, kernel.clock.now)

        assert run_until_complete(kernel, parent()) == ("done", 5.0)

    def test_unhandled_exception_propagates_out_of_run(self, kernel):
        def proc():
            yield sleep(1.0)
            raise ValueError("boom")

        kernel.spawn(proc())
        with pytest.raises(ValueError, match="boom"):
            kernel.run()

    def test_exception_reraises_in_waiter_not_run(self, kernel):
        def child():
            yield sleep(1.0)
            raise ValueError("boom")

        def parent():
            handle = yield spawn(child())
            try:
                yield wait(handle)
            except ValueError:
                return "caught"

        assert run_until_complete(kernel, parent()) == "caught"

    def test_interrupt_cancels_pending_sleep(self, kernel):
        def sleeper():
            try:
                yield sleep(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, kernel.clock.now)

        handle = kernel.spawn(sleeper())

        def killer():
            yield sleep(2.0)
            handle.interrupt("shutdown")

        kernel.spawn(killer())
        kernel.run()
        assert handle.value == ("interrupted", "shutdown", 2.0)
        assert kernel.clock.now == 2.0  # the 100 s sleep never fired

    def test_event_wakes_all_waiters_with_value(self, kernel):
        results = []
        gate = kernel.event("gate")

        def waiter(name):
            value = yield wait(gate)
            results.append((name, value, kernel.clock.now))

        def firer():
            yield sleep(3.0)
            gate.succeed("go")

        kernel.spawn(waiter("a"))
        kernel.spawn(waiter("b"))
        kernel.spawn(firer())
        kernel.run()
        assert results == [("a", "go", 3.0), ("b", "go", 3.0)]


class TestClockScopes:
    def test_isolated_scope_does_not_advance_shared_time(self):
        clock = SimClock()
        with clock.isolated() as scope:
            clock.advance(5.0)
            assert clock.now == 5.0  # scope-local view
        assert scope.elapsed == 5.0
        assert clock.now == 0.0

    def test_nested_scope_rolls_up_into_parent(self):
        clock = SimClock()
        with clock.isolated() as outer:
            clock.advance(1.0)
            with clock.isolated() as inner:
                clock.advance(2.0)
            assert inner.elapsed == 2.0
            assert clock.now == 3.0
        assert outer.elapsed == 3.0
        assert clock.now == 0.0

    def test_advance_to_refused_inside_scope(self):
        clock = SimClock()
        with clock.isolated():
            with pytest.raises(RuntimeError):
                clock.advance_to(10.0)

    def test_advance_to_is_monotonic(self):
        clock = SimClock()
        clock.advance_to(4.0)
        assert clock.now == 4.0
        with pytest.raises(ValueError):
            clock.advance_to(3.0)


class TestSleepValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            sleep(-0.001)

    @pytest.mark.parametrize(
        "duration", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_duration_rejected(self, duration):
        # A NaN sleep used to silently corrupt the event heap (NaN
        # compares false against everything, breaking heap order for
        # every later entry); inf just wedged the run. Both are bugs at
        # the call site and must fail loudly.
        with pytest.raises(ValueError, match="finite|negative"):
            sleep(duration)

    def test_zero_and_positive_accepted(self):
        assert sleep(0).seconds == 0.0
        assert sleep(2.5).seconds == 2.5


class TestWaiterUnlink:
    def test_interrupting_10k_waiters(self, kernel):
        """Reverse-order interrupt storm over one event: quadratic with
        the old list-scan unlink, linear with the ordered-dict pop."""
        gate = kernel.event("gate")
        interrupted = []

        def waiter(index):
            try:
                yield wait(gate)
            except Interrupt:
                interrupted.append(index)

        parked = [kernel.spawn(waiter(index)) for index in range(10_000)]

        def storm():
            yield sleep(1.0)
            for process in reversed(parked):
                process.interrupt("storm")

        kernel.spawn(storm())
        kernel.run()
        assert len(interrupted) == 10_000
        assert not gate._waiters  # every waiter unlinked

    def test_interrupted_waiters_do_not_hear_the_event(self, kernel):
        gate = kernel.event("gate")
        woken, interrupted = [], []

        def waiter(index):
            try:
                woken.append((index, (yield wait(gate))))
            except Interrupt:
                interrupted.append(index)

        parked = [kernel.spawn(waiter(index)) for index in range(6)]

        def driver():
            yield sleep(1.0)
            for process in parked[::2]:  # interrupt 0, 2, 4
                process.interrupt("cancelled")
            yield sleep(1.0)
            gate.succeed("go")

        kernel.spawn(driver())
        kernel.run()
        assert interrupted == [0, 2, 4]
        assert woken == [(1, "go"), (3, "go"), (5, "go")]  # FIFO order


class TestKernelStats:
    def test_counters_track_commands(self, kernel):
        gate = kernel.event("gate")

        def child():
            yield sleep(1.0)
            gate.succeed("go")

        def parent():
            yield spawn(child())
            value = yield wait(gate)
            yield sleep(0.5)
            return value

        kernel.spawn(parent())
        kernel.run()
        stats = kernel.stats
        assert stats.steps == kernel.steps > 0
        assert stats.sleeps == 2
        assert stats.waits == 1
        assert stats.spawns == 1  # yielded spawn commands only
        assert stats.peak_heap >= 2
        assert stats.scheduled >= stats.steps

    def test_stale_entries_counted_for_cancelled_sleeps(self, kernel):
        def sleeper():
            try:
                yield sleep(100.0)
            except Interrupt:
                return

        handle = kernel.spawn(sleeper())

        def killer():
            yield sleep(1.0)
            handle.interrupt("now")

        kernel.spawn(killer())
        kernel.run()
        # The cancelled 100 s sleep stays in the heap as a stale entry
        # and is skipped, not dispatched.
        assert kernel.stats.stale_entries >= 1
        assert 0 < kernel.stats.stale_ratio < 1

    def test_snapshot_is_json_safe_and_sorted(self, kernel):
        def proc():
            yield sleep(1.0)

        kernel.spawn(proc())
        kernel.run()
        snapshot = kernel.stats.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["steps"] == kernel.steps
        assert all(isinstance(v, (int, float)) for v in snapshot.values())

    def test_steps_is_read_only(self, kernel):
        with pytest.raises(AttributeError):
            kernel.steps = 7


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def one_run(seed):
            clock = SimClock()
            kernel = EventKernel(clock, SimRng(seed))
            rng = kernel.rng.fork("jitter")
            trace = []

            def proc(name):
                for _ in range(20):
                    yield sleep(rng.expovariate(2.0))
                    trace.append((name, clock.now))

            for name in ("a", "b", "c"):
                kernel.spawn(proc(name))
            kernel.run()
            return trace

        assert one_run(42) == one_run(42)
        assert one_run(42) != one_run(43)
