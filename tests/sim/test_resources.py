"""Contention primitives: semaphores, queues, token buckets, servers."""

import pytest

from repro.net.latency import SimClock
from repro.sim import (
    EventKernel,
    FifoQueue,
    PriorityResource,
    Resource,
    Server,
    SimRng,
    TokenBucket,
    sleep,
)


@pytest.fixture
def kernel():
    return EventKernel(SimClock(), SimRng(0))


class TestResource:
    def test_uncontended_acquire_is_immediate(self, kernel):
        resource = Resource(kernel, capacity=2)
        log = []

        def proc():
            yield from resource.acquire()
            log.append(kernel.clock.now)
            resource.release()

        kernel.spawn(proc())
        kernel.run()
        assert log == [0.0]

    def test_fifo_wakeup_under_contention(self, kernel):
        resource = Resource(kernel, capacity=1)
        order = []

        def proc(name, hold):
            yield from resource.acquire()
            order.append((name, kernel.clock.now))
            yield sleep(hold)
            resource.release()

        for name in ("a", "b", "c"):
            kernel.spawn(proc(name, 1.0))
        kernel.run()
        assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]

    def test_release_without_acquire_raises(self, kernel):
        resource = Resource(kernel, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_counters(self, kernel):
        resource = Resource(kernel, capacity=1)
        depths = []

        def holder():
            yield from resource.acquire()
            yield sleep(1.0)
            depths.append((resource.in_use, resource.queue_depth))
            resource.release()

        def waiter():
            yield from resource.acquire()
            resource.release()

        kernel.spawn(holder())
        kernel.spawn(waiter())
        kernel.run()
        assert depths == [(1, 1)]


class TestPriorityResource:
    def test_lowest_priority_value_wakes_first(self, kernel):
        resource = PriorityResource(kernel, capacity=1)
        order = []

        def holder():
            yield from resource.acquire(priority=0)
            yield sleep(1.0)
            resource.release()

        def proc(name, priority):
            yield sleep(0.1)  # queue behind the holder
            yield from resource.acquire(priority)
            order.append(name)
            resource.release()

        kernel.spawn(holder())
        kernel.spawn(proc("low", 5))
        kernel.spawn(proc("high", 1))
        kernel.run()
        assert order == ["high", "low"]


class TestFifoQueue:
    def test_get_waits_for_put(self, kernel):
        queue = FifoQueue(kernel)
        got = []

        def getter():
            item = yield from queue.get()
            got.append((item, kernel.clock.now))

        def putter():
            yield sleep(2.0)
            queue.put("x")

        kernel.spawn(getter())
        kernel.spawn(putter())
        kernel.run()
        assert got == [("x", 2.0)]

    def test_items_and_getters_pair_in_fifo_order(self, kernel):
        queue = FifoQueue(kernel)
        queue.put(1)
        queue.put(2)
        got = []

        def getter():
            item = yield from queue.get()
            got.append(item)

        kernel.spawn(getter())
        kernel.spawn(getter())
        kernel.run()
        assert got == [1, 2]
        assert len(queue) == 0


class TestTokenBucket:
    def test_burst_then_rate_limited(self, kernel):
        bucket = TokenBucket(kernel, rate=2.0, capacity=2.0)
        times = []

        def taker():
            for _ in range(5):
                yield from bucket.take()
                times.append(round(kernel.clock.now, 6))

        kernel.spawn(taker())
        kernel.run()
        # burst of 2 at t=0, then one every 1/rate = 0.5 s
        assert times == [0.0, 0.0, 0.5, 1.0, 1.5]
        assert bucket.throttled == 3

    def test_tokens_refill_up_to_capacity(self, kernel):
        bucket = TokenBucket(kernel, rate=1.0, capacity=3.0)

        def proc():
            yield from bucket.take(3.0)
            yield sleep(100.0)

        kernel.spawn(proc())
        kernel.run()
        assert bucket.tokens == 3.0


class TestServer:
    def test_concurrency_limit_queues_work(self, kernel):
        server = Server(kernel, concurrency=2, name="web")
        finished = []

        def job(name):
            yield from server.process(1.0)
            finished.append((name, kernel.clock.now))

        for name in ("a", "b", "c", "d", "e"):
            kernel.spawn(job(name))
        kernel.run()
        assert finished == [
            ("a", 1.0), ("b", 1.0), ("c", 2.0), ("d", 2.0), ("e", 3.0),
        ]
        assert server.served == 5
        assert server.busy_seconds == 5.0
        assert server.wait_seconds == 4.0  # c,d wait 1s; e waits 2s
        assert server.peak_queue_depth == 3
        assert server.outstanding == 0

    def test_service_time_distribution(self, kernel):
        draws = iter([0.5, 1.5])
        server = Server(kernel, concurrency=1, service_time=lambda: next(draws))
        done = []

        def job():
            yield from server.process()
            done.append(kernel.clock.now)

        kernel.spawn(job())
        kernel.spawn(job())
        kernel.run()
        assert done == [0.5, 2.0]

    def test_no_distribution_and_no_argument_raises(self, kernel):
        server = Server(kernel, concurrency=1)

        def job():
            yield from server.process()

        kernel.spawn(job())
        with pytest.raises(ValueError, match="no service-time distribution"):
            kernel.run()
