"""Measured-direct-boot firmware tests."""

import pytest

from repro.virt.firmware import (
    BootVerificationError,
    FirmwareError,
    HashTable,
    build_firmware,
    firmware_boot_check,
    firmware_hash_table,
    firmware_version,
    inject_hash_table,
)

KERNEL = b"kernel-blob"
INITRD = b"initrd-blob"
CMDLINE = "root=/dev/vda verity_root_hash=abc"


def _honest_firmware():
    table = HashTable.for_blobs(KERNEL, INITRD, CMDLINE)
    return inject_hash_table(build_firmware(), table)


class TestTemplate:
    def test_template_has_empty_table(self):
        assert firmware_hash_table(build_firmware()) is None

    def test_version_readable(self):
        assert firmware_version(build_firmware("v2")) == "v2"

    def test_injection_fills_table(self):
        firmware = _honest_firmware()
        assert firmware_hash_table(firmware) == HashTable.for_blobs(
            KERNEL, INITRD, CMDLINE
        )

    def test_injection_changes_bytes(self):
        # The table is part of the measured volume: injecting different
        # hashes yields different firmware bytes (hence measurements).
        template = build_firmware()
        first = inject_hash_table(template, HashTable.for_blobs(b"a", b"b", "c"))
        second = inject_hash_table(template, HashTable.for_blobs(b"x", b"b", "c"))
        assert first != second

    def test_garbage_rejected(self):
        with pytest.raises(FirmwareError):
            firmware_version(b"not a firmware image")


class TestBootCheck:
    def test_honest_boot_passes(self):
        firmware_boot_check(_honest_firmware(), KERNEL, INITRD, CMDLINE)

    @pytest.mark.parametrize(
        "kernel,initrd,cmdline",
        [
            (b"malicious-kernel", INITRD, CMDLINE),
            (KERNEL, b"malicious-initrd", CMDLINE),
            (KERNEL, INITRD, CMDLINE + " init=/bin/backdoor"),
            (KERNEL, INITRD, "root=/dev/vda verity_root_hash=eee"),
        ],
    )
    def test_substituted_blob_halts_boot(self, kernel, initrd, cmdline):
        with pytest.raises(BootVerificationError):
            firmware_boot_check(_honest_firmware(), kernel, initrd, cmdline)

    def test_missing_table_halts_boot(self):
        with pytest.raises(BootVerificationError):
            firmware_boot_check(build_firmware(), KERNEL, INITRD, CMDLINE)

    def test_malicious_firmware_boots_anything(self):
        # The attack of 6.1.1 variant two: non-verifying OVMF accepts any
        # blobs — but it is a different binary, so its measurement differs
        # (asserted in the hypervisor/VM integration tests).
        evil = inject_hash_table(
            build_firmware(verify_hashes=False),
            HashTable.for_blobs(KERNEL, INITRD, CMDLINE),
        )
        firmware_boot_check(evil, b"anything", b"goes", "here")

    def test_malicious_firmware_differs_bytewise(self):
        honest = build_firmware()
        evil = build_firmware(verify_hashes=False)
        assert honest != evil
