"""Hypervisor launch + VM boot tests, including the section 6.1 attacks
at the measured-boot layer (rootfs attacks live in the integration
tests once the core guest services are wired in)."""

import pytest

from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.build import ImageSpec, build_revelio_image
from repro.build.measurement import expected_measurement_for_image
from repro.crypto.drbg import HmacDrbg
from repro.virt.firmware import build_firmware
from repro.virt.hypervisor import Hypervisor, LaunchAttack
from repro.virt.image import InitrdDescriptor, register_init_step
from repro.virt.vm import (
    STATE_FAILED,
    STATE_RUNNING,
    STATE_STOPPED,
    BootFailure,
    VmError,
)

# A trivial init step so minimal images can boot without repro.core.
register_init_step("test-noop")(lambda vm: None)
register_init_step("test-marker")(
    lambda vm: vm.services.__setitem__("marker", True)
)


@pytest.fixture(scope="module")
def minimal_image(registry_and_pins):
    from tests.conftest import make_spec

    registry, pins = registry_and_pins
    spec = make_spec(
        registry, pins, init_steps=("test-noop", "test-marker")
    )
    return build_revelio_image(spec).image


@pytest.fixture
def hypervisor():
    amd = AmdKeyInfrastructure(HmacDrbg(b"virt-tests"))
    return Hypervisor(amd.provision_chip("virt-chip"), HmacDrbg(b"hv"))


class TestHonestLaunch:
    def test_boot_reaches_running(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image)
        vm.boot()
        assert vm.state == STATE_RUNNING
        assert vm.services.get("marker") is True

    def test_measurement_matches_golden(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image)
        assert vm.measurement == expected_measurement_for_image(minimal_image)

    def test_boot_timings_recorded(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image)
        vm.boot()
        assert [t.step for t in vm.boot_timings] == ["test-noop", "test-marker"]
        assert vm.boot_timing("test-noop") >= 0

    def test_double_boot_rejected(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image)
        vm.boot()
        with pytest.raises(VmError):
            vm.boot()

    def test_shutdown(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image)
        vm.boot()
        vm.shutdown()
        assert vm.state == STATE_STOPPED
        with pytest.raises(Exception):
            vm.guest.get_report(b"\x00" * 64)

    def test_disk_persists_across_launches(self, hypervisor, minimal_image):
        first = hypervisor.launch(minimal_image, name="stateful")
        first.boot()
        first.disk.write_block(first.disk.num_blocks - 1, b"\x99" * 4096)
        first.shutdown()
        second = hypervisor.launch(minimal_image, name="stateful", reuse_disk=True)
        assert second.disk.read_block(second.disk.num_blocks - 1) == b"\x99" * 4096
        assert not second.first_boot

    def test_fresh_disk_without_reuse(self, hypervisor, minimal_image):
        first = hypervisor.launch(minimal_image, name="fresh")
        first.disk.write_block(first.disk.num_blocks - 1, b"\x99" * 4096)
        second = hypervisor.launch(minimal_image, name="fresh", reuse_disk=False)
        assert second.disk.read_block(second.disk.num_blocks - 1) == b"\x00" * 4096


class TestMeasuredBootAttacks:
    """Section 6.1.1: loading a modified kernel or initrd."""

    def test_replaced_kernel_fails_boot(self, hypervisor, minimal_image):
        from repro.virt.image import KernelBlob

        evil_kernel = KernelBlob("evil-linux", "6.6.6").encode()
        vm = hypervisor.launch(
            minimal_image,
            attack=LaunchAttack(
                replace_kernel=evil_kernel, inject_expected_hashes=True
            ),
        )
        with pytest.raises(BootFailure, match="kernel"):
            vm.boot()
        assert vm.state == STATE_FAILED

    def test_replaced_initrd_fails_boot(self, hypervisor, minimal_image):
        evil_initrd = InitrdDescriptor(init_steps=()).encode()
        vm = hypervisor.launch(
            minimal_image,
            attack=LaunchAttack(
                replace_initrd=evil_initrd, inject_expected_hashes=True
            ),
        )
        with pytest.raises(BootFailure, match="initrd"):
            vm.boot()

    def test_replaced_cmdline_fails_boot(self, hypervisor, minimal_image):
        vm = hypervisor.launch(
            minimal_image,
            attack=LaunchAttack(
                replace_cmdline="verity_root_hash=" + "00" * 32,
                inject_expected_hashes=True,
            ),
        )
        with pytest.raises(BootFailure, match="cmdline"):
            vm.boot()

    def test_honest_hashes_of_evil_blobs_change_measurement(
        self, hypervisor, minimal_image
    ):
        # If the host injects hashes matching the evil blobs, the boot
        # succeeds — but the firmware (hash table included) is measured,
        # so the measurement deviates from the golden value.
        from repro.virt.image import KernelBlob

        evil_kernel = KernelBlob("evil-linux", "6.6.6").encode()
        vm = hypervisor.launch(
            minimal_image, attack=LaunchAttack(replace_kernel=evil_kernel)
        )
        vm.boot()  # boots fine...
        assert vm.measurement != expected_measurement_for_image(minimal_image)

    def test_malicious_firmware_changes_measurement(self, hypervisor, minimal_image):
        evil_template = build_firmware(verify_hashes=False)
        vm = hypervisor.launch(
            minimal_image,
            attack=LaunchAttack(
                replace_firmware_template=evil_template,
                replace_kernel=b"garbage",  # would normally halt boot
                inject_expected_hashes=True,
            ),
        )
        # Non-verifying firmware lets the kernel through to init, where
        # decode fails; even if it booted, the measurement is wrong:
        assert vm.measurement != expected_measurement_for_image(minimal_image)

    def test_attack_objects_do_not_leak_between_launches(
        self, hypervisor, minimal_image
    ):
        hypervisor.launch(
            minimal_image, attack=LaunchAttack(replace_kernel=b"evil")
        )
        clean = hypervisor.launch(minimal_image)
        clean.boot()
        assert clean.state == STATE_RUNNING


class TestDiskAttacks:
    def test_tampered_disk_at_launch(self, hypervisor, minimal_image):
        seen = {}

        def tamper(disk):
            disk.corrupt(4096 * 2 + 17)
            seen["done"] = True

        vm = hypervisor.launch(minimal_image, attack=LaunchAttack(tamper_disk=tamper))
        assert seen["done"]
        # With no verity init step in this image the boot still succeeds;
        # detection is exercised in the integration suite.
        vm.boot()

    def test_runtime_disk_tamper_is_host_capability(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image)
        vm.boot()
        before = vm.disk.read_block(2)
        hypervisor.tamper_disk_at_runtime(vm, 2 * 4096)
        assert vm.disk.read_block(2) != before

    def test_rollback_roundtrip(self, hypervisor, minimal_image):
        vm = hypervisor.launch(minimal_image, name="rb")
        snapshot = hypervisor.snapshot_disk("rb")
        original = vm.disk.read_block(3)
        vm.disk.write_block(3, b"\x11" * 4096)
        hypervisor.rollback_disk("rb", snapshot)
        assert vm.disk.read_block(3) == original
