"""dm-crypt / LUKS tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import RamBlockDevice
from repro.storage.dm_crypt import (
    DmCryptError,
    is_luks,
    luks_add_key,
    luks_format,
    luks_open,
    read_header,
)


@pytest.fixture
def rng():
    return HmacDrbg(b"dm-crypt-tests")


@pytest.fixture
def device():
    return RamBlockDevice(18, block_size=4096)


class TestPassphraseFlow:
    def test_format_open_round_trip(self, device, rng):
        volume = luks_format(device, rng, passphrase=b"hunter2")
        volume.write_block(0, b"\x42" * 4096)
        reopened = luks_open(device, passphrase=b"hunter2")
        assert reopened.read_block(0) == b"\x42" * 4096

    def test_wrong_passphrase_rejected(self, device, rng):
        luks_format(device, rng, passphrase=b"correct")
        with pytest.raises(DmCryptError):
            luks_open(device, passphrase=b"wrong")

    def test_ciphertext_differs_from_plaintext(self, device, rng):
        volume = luks_format(device, rng, passphrase=b"p")
        plaintext = b"\x42" * 4096
        volume.write_block(0, plaintext)
        # Logical block 0 lives at physical block 2 (after the header).
        assert device.read_block(2) != plaintext

    def test_add_second_passphrase(self, device, rng):
        volume = luks_format(device, rng, passphrase=b"first")
        volume.write_block(1, b"\x11" * 4096)
        luks_add_key(device, rng, existing_passphrase=b"first", new_passphrase=b"second")
        assert luks_open(device, passphrase=b"second").read_block(1) == b"\x11" * 4096
        assert luks_open(device, passphrase=b"first").read_block(1) == b"\x11" * 4096

    def test_add_key_requires_valid_credential(self, device, rng):
        luks_format(device, rng, passphrase=b"first")
        with pytest.raises(DmCryptError):
            luks_add_key(device, rng, existing_passphrase=b"bad", new_passphrase=b"x")


class TestDirectKeyFlow:
    """The Revelio path: the master key is the AMD-SP sealing key."""

    def test_format_open_with_key(self, device, rng):
        sealing_key = rng.generate(64)
        volume = luks_format(device, rng, master_key=sealing_key)
        volume.write_block(0, b"\x55" * 4096)
        reopened = luks_open(device, master_key=sealing_key)
        assert reopened.read_block(0) == b"\x55" * 4096

    def test_wrong_key_rejected(self, device, rng):
        luks_format(device, rng, master_key=rng.generate(64))
        with pytest.raises(DmCryptError):
            luks_open(device, master_key=b"\x00" * 64)

    def test_no_slot_stored_for_direct_key(self, device, rng):
        luks_format(device, rng, master_key=rng.generate(64))
        assert read_header(device).slots == []

    def test_key_size_enforced(self, device, rng):
        with pytest.raises(DmCryptError):
            luks_format(device, rng, master_key=b"short")

    def test_exactly_one_credential(self, device, rng):
        with pytest.raises(DmCryptError):
            luks_format(device, rng)
        with pytest.raises(DmCryptError):
            luks_format(device, rng, passphrase=b"p", master_key=b"\x00" * 64)
        luks_format(device, rng, passphrase=b"p")
        with pytest.raises(DmCryptError):
            luks_open(device)


class TestDeviceSemantics:
    def test_sector_tweaks_differ(self, device, rng):
        volume = luks_format(device, rng, passphrase=b"p")
        block = b"\x77" * 4096
        volume.write_block(0, block)
        volume.write_block(1, block)
        assert device.read_block(2) != device.read_block(3)

    def test_batched_io_matches_blockwise(self, device, rng):
        volume = luks_format(device, rng, passphrase=b"p")
        data = HmacDrbg(b"payload").generate(4096 * 4)
        volume.write_blocks(2, data)
        assert volume.read_blocks(2, 4) == data
        blockwise = b"".join(volume.read_block(2 + i) for i in range(4))
        assert blockwise == data

    def test_logical_size_excludes_header(self, device, rng):
        volume = luks_format(device, rng, passphrase=b"p")
        assert volume.num_blocks == device.num_blocks - 2

    def test_offline_tamper_garbles_plaintext(self, device, rng):
        # dm-crypt alone provides confidentiality, not integrity: a flipped
        # ciphertext bit decrypts to garbage (that's why Revelio pairs it
        # with dm-verity for the rootfs).
        volume = luks_format(device, rng, passphrase=b"p")
        volume.write_block(0, b"\x00" * 4096)
        device.corrupt(2 * 4096 + 10)
        plaintext = luks_open(device, passphrase=b"p").read_block(0)
        assert plaintext != b"\x00" * 4096

    def test_too_small_device(self, rng):
        with pytest.raises(DmCryptError):
            luks_format(RamBlockDevice(2, 4096), rng, passphrase=b"p")


class TestHeader:
    def test_is_luks_probe(self, device, rng):
        assert not is_luks(device)
        luks_format(device, rng, passphrase=b"p")
        assert is_luks(device)

    def test_header_round_trip(self, device, rng):
        luks_format(device, rng, passphrase=b"p", uuid="fixed-uuid-0001")
        header = read_header(device)
        assert header.cipher == "aes-xts-plain64"
        assert header.uuid == "fixed-uuid-0001"
        assert header.sector_size == 4096
        assert len(header.slots) == 1
        assert header.slots[0].iterations == 1000

    def test_garbage_header_rejected(self, device):
        device.write_block(0, b"\xde\xad\xbe\xef" * 1024)
        with pytest.raises(DmCryptError):
            read_header(device)
