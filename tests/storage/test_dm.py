"""Device-mapper stack tests: tables, targets, caches, and the registry."""

import pytest

from repro.attest import get_tracer, reset_tracer
from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import BlockDeviceError, RamBlockDevice
from repro.storage.dm import (
    ZERO_STORAGE_LATENCY,
    BlockCache,
    DelayTarget,
    DmContext,
    DmError,
    DmTable,
    FaultTarget,
    StorageMeter,
    TargetSpec,
    VolumeError,
    VolumeRegistry,
)
from repro.storage.dm_crypt import DmCryptError, luks_format
from repro.storage.dm_verity import VerityError, verity_format
from repro.storage.partition import PartitionEntry, PartitionTable

BLOCK = 4096


def _filled_device(num_blocks=16, seed=b"dm-data"):
    rng = HmacDrbg(seed)
    return RamBlockDevice(num_blocks, BLOCK, initial=rng.generate(num_blocks * BLOCK))


def _verity_context(num_blocks=16):
    data = _filled_device(num_blocks)
    fmt = verity_format(data, salt=b"dm-salt")
    context = DmContext(
        devices={"data": data, "hash": fmt.hash_device},
        cmdline_args={"root_hash": fmt.root_hash.hex()},
    )
    return data, fmt, context


VERITY_TABLE = "linear device=data ; verity hash=device:hash root=cmdline:root_hash"
CACHED_VERITY_TABLE = (
    "linear device=data ; cache blocks=8 ; "
    "verity hash=device:hash root=cmdline:root_hash"
)


class TestTableParsing:
    def test_roundtrip(self):
        text = CACHED_VERITY_TABLE
        table = DmTable.parse("root", text)
        assert table.to_text() == text
        assert DmTable.parse("root", table.to_text()) == table

    def test_target_kinds_and_params(self):
        table = DmTable.parse("v", VERITY_TABLE)
        assert [t.kind for t in table.targets] == ["linear", "verity"]
        assert table.targets[1].get("hash") == "device:hash"
        assert table.targets[1].require("root") == "cmdline:root_hash"

    def test_missing_param_reason(self):
        spec = TargetSpec.parse("verity hash=device:hash")
        with pytest.raises(DmError) as excinfo:
            spec.require("root")
        assert excinfo.value.reason == "missing_param"

    def test_malformed_param_rejected(self):
        with pytest.raises(DmError) as excinfo:
            TargetSpec.parse("linear partition")
        assert excinfo.value.reason == "bad_table"

    def test_empty_table_rejected(self):
        with pytest.raises(DmError):
            DmTable(name="x", targets=())

    def test_unknown_target_kind(self):
        _, _, context = _verity_context()
        with pytest.raises(DmError) as excinfo:
            DmTable.parse("x", "linear device=data ; mirror").open(context)
        assert excinfo.value.reason == "unknown_target"


class TestComposition:
    def test_verity_stack_reads_verified_data(self):
        data, _, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        assert volume.read_block(5) == data.read_block(5)
        volume.verify_all()

    def test_partition_references(self):
        rootfs = _filled_device(8, seed=b"part-rootfs")
        fmt = verity_format(rootfs, salt=b"s")
        hash_blocks = fmt.hash_device.num_blocks
        disk = RamBlockDevice(1 + 8 + hash_blocks, BLOCK)
        PartitionTable(
            [
                PartitionEntry("rootfs", 1, 8, "11111111-1-1-1-111111111111"),
                PartitionEntry("verity", 9, hash_blocks, "22222222-2-2-2-222222222222"),
            ]
        ).write_to(disk)
        disk.write_blocks(1, rootfs.read_all())
        disk.write_blocks(9, fmt.hash_device.read_all())
        context = DmContext(
            disk=disk, cmdline_args={"verity_root_hash": fmt.root_hash.hex()}
        )
        volume = DmTable.parse(
            "rootfs",
            "linear partition=rootfs ; "
            "verity hash=partition:verity root=cmdline:verity_root_hash",
        ).open(context)
        volume.verify_all()
        assert volume.read_block(0) == rootfs.read_block(0)

    def test_crypt_auto_format_then_reopen(self):
        disk = RamBlockDevice(16, BLOCK)
        key = HmacDrbg(b"seal").generate(64)
        context = DmContext(
            devices={"d": disk}, keys={"sealing": key}, rng=HmacDrbg(b"rng")
        )
        table = DmTable.parse(
            "data", "linear device=d ; crypt key=sealing format=auto fill=zero"
        )
        first = table.open(context)
        first.write_bytes(100, b"sealed state")
        # Ciphertext on the backing device, plaintext through the stack.
        assert b"sealed state" not in disk.read_all()
        reopened = table.open(context)
        assert reopened.read_bytes(100, 12) == b"sealed state"

    def test_crypt_wrong_key_rejected(self):
        disk = RamBlockDevice(16, BLOCK)
        luks_format(disk, HmacDrbg(b"r"), master_key=HmacDrbg(b"k1").generate(64))
        context = DmContext(
            devices={"d": disk}, keys={"sealing": HmacDrbg(b"k2").generate(64)}
        )
        with pytest.raises(DmCryptError):
            DmTable.parse("data", "linear device=d ; crypt key=sealing").open(context)

    def test_missing_key_reason(self):
        disk = RamBlockDevice(16, BLOCK)
        context = DmContext(devices={"d": disk})
        with pytest.raises(DmError) as excinfo:
            DmTable.parse("data", "linear device=d ; crypt key=absent").open(context)
        assert excinfo.value.reason == "missing_key"

    def test_missing_root_hash_reason(self):
        _, _, context = _verity_context()
        with pytest.raises(DmError) as excinfo:
            DmTable.parse(
                "v", "linear device=data ; verity hash=device:hash root=cmdline:nope"
            ).open(context)
        assert excinfo.value.reason == "missing_root_hash"

    def test_layer_lookup(self):
        _, _, context = _verity_context()
        volume = DmTable.parse("root", CACHED_VERITY_TABLE).open(context)
        assert volume.layer("cache").kind == "cache"
        assert volume.has_layer("verity")
        assert not volume.has_layer("crypt")
        with pytest.raises(DmError):
            volume.layer("crypt")


class TestBlockCache:
    def _cached(self, capacity=4):
        backing = _filled_device(16, seed=b"cache")
        meter = StorageMeter(ZERO_STORAGE_LATENCY)
        return backing, BlockCache(backing, meter, capacity_blocks=capacity)

    def test_hit_after_miss(self):
        backing, cache = self._cached()
        block = cache.read_block(3)
        backing.reads = 0
        assert cache.read_block(3) == block
        assert backing.reads == 0  # served from memory
        assert cache.stats.get("cache_hits") == 1
        assert cache.stats.get("cache_misses") == 1

    def test_lru_eviction(self):
        _, cache = self._cached(capacity=2)
        cache.read_block(0)
        cache.read_block(1)
        cache.read_block(2)  # evicts 0
        assert cache.cached_indices == [1, 2]
        assert cache.stats.get("evictions") == 1

    def test_write_through_updates_cache(self):
        backing, cache = self._cached()
        cache.write_block(4, b"\xaa" * BLOCK)
        assert backing.read_block(4) == b"\xaa" * BLOCK
        backing.reads = 0
        assert cache.read_block(4) == b"\xaa" * BLOCK
        assert backing.reads == 0  # own write did not invalidate

    def test_out_of_band_write_invalidates(self):
        backing, cache = self._cached()
        cache.read_block(5)
        backing.write_block(5, b"\xbb" * BLOCK)  # behind the cache's back
        assert cache.read_block(5) == b"\xbb" * BLOCK  # not the stale copy
        assert cache.stats.get("invalidations") == 1

    def test_corrupt_entry_bumps_mutation_count(self):
        _, cache = self._cached()
        cache.read_block(1)
        before = cache.mutation_count
        cache.corrupt_entry(1, xor_mask=0x80)
        assert cache.mutation_count == before + 1


class TestCachedVerity:
    def test_warm_reads_skip_the_walk(self):
        _, fmt, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        volume.read_block(2)
        verity = volume.layer("verity")
        assert verity.stats.get("verify_misses") == 1
        fmt.hash_device.reads = 0
        volume.read_block(2)
        assert verity.stats.get("verify_hits") == 1
        assert fmt.hash_device.reads == 0  # no Merkle walk on the hot path

    def test_sibling_reads_share_authenticated_nodes(self):
        _, fmt, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        volume.read_block(0)
        walk_reads = fmt.hash_device.reads
        fmt.hash_device.reads = 0
        volume.read_block(1)  # sibling leaf: path nodes already authenticated
        assert fmt.hash_device.reads < walk_reads

    def test_data_corruption_detected_cold(self):
        data, _, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        data.corrupt(6 * BLOCK + 17)
        with pytest.raises(VerityError):
            volume.read_block(6)
        assert volume.layer("verity").stats.get("corruption_rejections") == 1

    def test_data_corruption_detected_warm(self):
        data, _, context = _verity_context()
        volume = DmTable.parse("root", CACHED_VERITY_TABLE).open(context)
        volume.read_block(6)
        volume.read_block(6)  # warm
        data.corrupt(6 * BLOCK)
        with pytest.raises(VerityError):
            volume.read_block(6)

    def test_hash_corruption_detected_warm(self):
        _, fmt, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        volume.read_block(3)
        fmt.hash_device.corrupt(1 * BLOCK + 3 * 32)  # leaf digest of block 3
        with pytest.raises(VerityError):
            volume.read_block(3)

    def test_failure_drops_caches(self):
        data, _, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        volume.read_block(7)
        verity = volume.layer("verity")
        generation = verity.generation
        data.corrupt(7 * BLOCK)
        with pytest.raises(VerityError):
            volume.read_block(7)
        assert verity.generation > generation
        data.corrupt(7 * BLOCK)  # heal (xor is an involution)
        assert volume.read_block(7)  # fresh verified walk succeeds


class TestFaultTargets:
    def test_delay_charges_sim_clock(self):
        from repro.net.latency import SimClock

        clock = SimClock()
        backing = _filled_device(8, seed=b"delay")
        meter = StorageMeter(ZERO_STORAGE_LATENCY, clock=clock)
        delayed = DelayTarget(backing, meter, read_delay=0.010)
        delayed.read_block(0)
        delayed.read_blocks(1, 3)
        assert clock.now == pytest.approx(0.040)
        assert delayed.stats.get("delayed_reads") == 4

    def test_fault_fail_block(self):
        backing = _filled_device(8, seed=b"fault")
        target = FaultTarget(backing, StorageMeter(ZERO_STORAGE_LATENCY))
        target.fail_block(2)
        with pytest.raises(BlockDeviceError):
            target.read_block(2)
        assert target.read_block(3)  # other blocks unaffected
        target.heal()
        assert target.read_block(2) == backing.read_block(2)

    def test_fault_corrupt_on_read_is_a_mutation(self):
        backing = _filled_device(8, seed=b"flip")
        target = FaultTarget(backing, StorageMeter(ZERO_STORAGE_LATENCY))
        before = target.mutation_count
        target.corrupt_block(1)
        assert target.mutation_count > before
        assert target.read_block(1) != backing.read_block(1)

    def test_delay_table_target(self):
        _, _, context = _verity_context()
        volume = DmTable.parse(
            "slow", "linear device=data ; delay read_ms=5"
        ).open(context)
        assert volume.layer("delay").read_delay == pytest.approx(0.005)


class TestCryptByteFastPath:
    def test_byte_io_uses_batched_blocks(self):
        disk = RamBlockDevice(32, BLOCK)
        volume = luks_format(disk, HmacDrbg(b"r"),
                             master_key=HmacDrbg(b"mk").generate(64))
        span = b"x" * (3 * BLOCK)
        volume.write_bytes(BLOCK // 2, span)
        disk.reads = 0
        assert volume.read_bytes(BLOCK // 2, len(span)) == span
        # 4 touched blocks, one vectorised backing read — not one per block.
        assert disk.reads == 4


class TestCounters:
    def test_meter_mirrors_into_tracer(self):
        reset_tracer()
        _, _, context = _verity_context()
        volume = DmTable.parse("root", VERITY_TABLE).open(context)
        volume.read_block(0)
        volume.read_block(0)
        storage = get_tracer().storage
        assert storage.counts["verify_misses"] == 1
        assert storage.counts["verify_hits"] == 1
        assert storage.counts["reads"] >= 1
        assert storage.verify_hit_rate() == pytest.approx(0.5)
        assert storage.sim_seconds > 0.0
        snapshot = storage.snapshot()
        assert snapshot["io"]["verify_hits"] == 1
        reset_tracer()
        assert get_tracer().storage.counts["verify_hits"] == 0

    def test_volume_stats_are_per_target(self):
        _, _, context = _verity_context()
        volume = DmTable.parse("root", CACHED_VERITY_TABLE).open(context)
        volume.read_block(0)
        kinds = [stats["kind"] for stats in volume.stats()]
        assert kinds == ["linear", "cache", "verity"]


class TestVolumeRegistry:
    def test_register_and_lookup(self):
        registry = VolumeRegistry()
        device = _filled_device(4)
        registry.register("data", device)
        assert registry["data"] is device
        assert registry.open("data") is device
        assert "data" in registry
        assert registry.roles() == ["data"]
        assert registry.get("absent") is None

    def test_duplicate_role_reason(self):
        registry = VolumeRegistry()
        registry.register("data", _filled_device(4))
        with pytest.raises(VolumeError) as excinfo:
            registry.register("data", _filled_device(4))
        assert excinfo.value.reason == "duplicate_role"

    def test_missing_role_reason(self):
        registry = VolumeRegistry()
        with pytest.raises(VolumeError) as excinfo:
            registry.open("data")
        assert excinfo.value.reason == "missing_role"
        with pytest.raises(VolumeError) as excinfo:
            registry.replace("data", _filled_device(4))
        assert excinfo.value.reason == "missing_role"

    def test_replace_swaps_existing_role(self):
        registry = VolumeRegistry()
        first = _filled_device(4, seed=b"a")
        second = _filled_device(4, seed=b"b")
        registry.register("data", first)
        registry.replace("data", second)
        assert registry["data"] is second

    def test_setitem_is_register(self):
        registry = VolumeRegistry()
        registry["data"] = _filled_device(4)
        with pytest.raises(VolumeError):
            registry["data"] = _filled_device(4)
