"""Deterministic filesystem image tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.storage.dm_verity import VerityError, verity_format, verity_open
from repro.storage.filesystem import (
    FileSystem,
    FileSystemError,
    build_image,
    image_to_device,
)

_FILES = {
    "/etc/nginx/nginx.conf": b"server { listen 443 ssl; }",
    "/usr/bin/service": b"\x7fELF" + b"\x00" * 500,
    "/var/www/index.html": b"<html>hello</html>",
    "/empty": b"",
}


class TestBuildDeterminism:
    def test_identical_inputs_identical_images(self):
        assert build_image(_FILES) == build_image(_FILES)

    def test_insertion_order_irrelevant(self):
        reordered = dict(reversed(list(_FILES.items())))
        assert build_image(_FILES) == build_image(reordered)

    def test_content_change_changes_image(self):
        changed = dict(_FILES)
        changed["/etc/nginx/nginx.conf"] = b"server { listen 80; }"
        assert build_image(_FILES) != build_image(changed)

    def test_added_file_changes_image(self):
        extended = dict(_FILES)
        extended["/backdoor"] = b"evil"
        assert build_image(_FILES) != build_image(extended)

    def test_label_changes_image(self):
        assert build_image(_FILES, label="a") != build_image(_FILES, label="b")

    def test_mtime_is_squashed(self):
        fs = FileSystem(image_to_device(build_image(_FILES)))
        assert all(fs.stat(path).mtime == 0 for path in fs.list_files())


class TestMountAndRead:
    @pytest.fixture
    def fs(self):
        return FileSystem(image_to_device(build_image(_FILES, label="test-rootfs")))

    def test_label(self, fs):
        assert fs.label == "test-rootfs"

    def test_list_files(self, fs):
        assert fs.list_files() == sorted(_FILES)

    def test_read_files(self, fs):
        for path, content in _FILES.items():
            assert fs.read_file(path) == content

    def test_file_size(self, fs):
        assert fs.file_size("/var/www/index.html") == len(_FILES["/var/www/index.html"])

    def test_empty_file(self, fs):
        assert fs.read_file("/empty") == b""

    def test_exists(self, fs):
        assert fs.exists("/empty")
        assert not fs.exists("/missing")

    def test_missing_file_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("/missing")

    def test_multi_block_file(self):
        big = {"/big": HmacDrbg(b"big").generate(4096 * 3 + 17)}
        fs = FileSystem(image_to_device(build_image(big)))
        assert fs.read_file("/big") == big["/big"]

    def test_relative_path_rejected(self):
        with pytest.raises(FileSystemError):
            build_image({"relative/path": b"x"})

    def test_garbage_device_rejected(self):
        device = image_to_device(b"\xff" * 4096)
        with pytest.raises(FileSystemError):
            FileSystem(device)

    def test_misaligned_image_rejected(self):
        with pytest.raises(FileSystemError):
            image_to_device(b"\x00" * 100)


class TestOnVerity:
    """The composition Revelio actually deploys: fs on dm-verity."""

    def test_reads_verified(self):
        data_device = image_to_device(build_image(_FILES))
        result = verity_format(data_device, salt=b"rootfs")
        verity = verity_open(data_device, result.hash_device, result.root_hash)
        fs = FileSystem(verity)
        assert fs.read_file("/var/www/index.html") == _FILES["/var/www/index.html"]

    def test_tampered_file_fails_on_read(self):
        data_device = image_to_device(build_image(_FILES))
        result = verity_format(data_device, salt=b"rootfs")
        verity = verity_open(data_device, result.hash_device, result.root_hash)
        fs = FileSystem(verity)
        entry = fs.stat("/usr/bin/service")
        data_device.corrupt(entry.first_block * 4096 + 3)
        with pytest.raises(VerityError):
            fs.read_file("/usr/bin/service")

    def test_lots_of_files(self):
        files = {f"/data/file-{i:04d}": bytes([i % 256]) * (i * 13 % 9000)
                 for i in range(120)}
        data_device = image_to_device(build_image(files))
        result = verity_format(data_device)
        fs = FileSystem(verity_open(data_device, result.hash_device, result.root_hash))
        for path, content in files.items():
            assert fs.read_file(path) == content


class TestPartitions:
    def test_partitioned_disk(self):
        from repro.storage.blockdev import RamBlockDevice
        from repro.storage.partition import PartitionEntry, PartitionTable

        disk = RamBlockDevice(30, 4096)
        table = PartitionTable(
            [
                PartitionEntry("rootfs", 1, 10, "uuid-root"),
                PartitionEntry("verity", 11, 5, "uuid-verity"),
                PartitionEntry("data", 16, 14, "uuid-data"),
            ]
        )
        table.write_to(disk)
        loaded = PartitionTable.read_from(disk)
        assert loaded.names() == ["rootfs", "verity", "data"]
        part = loaded.open(disk, "data")
        part.write_block(0, b"\xaa" * 4096)
        assert disk.read_block(16) == b"\xaa" * 4096

    def test_overlap_rejected(self):
        from repro.storage.partition import PartitionEntry, PartitionError, PartitionTable

        with pytest.raises(PartitionError):
            PartitionTable(
                [
                    PartitionEntry("a", 1, 10, "u1"),
                    PartitionEntry("b", 5, 10, "u2"),
                ]
            )

    def test_duplicate_names_rejected(self):
        from repro.storage.partition import PartitionEntry, PartitionError, PartitionTable

        with pytest.raises(PartitionError):
            PartitionTable(
                [
                    PartitionEntry("a", 1, 2, "u1"),
                    PartitionEntry("a", 3, 2, "u2"),
                ]
            )

    def test_block_zero_reserved(self):
        from repro.storage.partition import PartitionEntry, PartitionError, PartitionTable

        with pytest.raises(PartitionError):
            PartitionTable([PartitionEntry("a", 0, 2, "u1")])

    def test_unknown_partition(self):
        from repro.storage.blockdev import RamBlockDevice
        from repro.storage.partition import PartitionEntry, PartitionError, PartitionTable

        disk = RamBlockDevice(10, 4096)
        table = PartitionTable([PartitionEntry("a", 1, 2, "u1")])
        with pytest.raises(PartitionError):
            table.open(disk, "missing")
