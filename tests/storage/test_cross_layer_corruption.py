"""Cross-layer corruption property: a bit flip at ANY depth of the
device-mapper stack makes reads fail loudly — never silently wrong.

Hypothesis drives a random single-bit flip at a random depth of a full
``linear -> cache -> crypt -> verity`` stack (the backing device, the
hash device, the LUKS header, or a poisoned cache entry) and asserts
the one property the sealed-storage design rests on: a read after
tampering either raises :class:`VerityError` / :class:`DmCryptError`
(or a block-layer error) or — when the flip landed outside the read's
footprint and integrity path — returns exactly the original bytes.
Warm caches are included: the mutation-count protocol must invalidate
or bypass them, so a cache never launders corruption into a success.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import BlockDeviceError, RamBlockDevice
from repro.storage.dm import DmContext, DmTable
from repro.storage.dm_crypt import DmCryptError, luks_format
from repro.storage.dm_verity import VerityError, verity_format

BLOCK = 4096
DATA_BLOCKS = 8

#: Everything a tampered read is allowed to do — fail with a typed
#: integrity/crypt/block error.  Anything else (wrong bytes, silent
#: success after an in-footprint flip) falsifies the property.
REJECTIONS = (VerityError, DmCryptError, BlockDeviceError)


def _build_stack():
    """verity(cache(crypt(linear(ram)))): plaintext goes in through the
    crypt layer, then a hash tree is built over the *ciphertext* and
    stacked with a cache below verity — every layer of the paper's
    storage path in one volume."""
    backing = RamBlockDevice(2 + DATA_BLOCKS, BLOCK)
    master_key = HmacDrbg(b"xlc-key").generate(64)
    plain = luks_format(backing, HmacDrbg(b"xlc-rng"), master_key=master_key)
    payload = HmacDrbg(b"xlc-payload").generate(DATA_BLOCKS * BLOCK)
    plain.write_blocks(0, payload)

    fmt = verity_format(plain, salt=b"xlc-salt")
    context = DmContext(
        devices={"disk": backing, "hash": fmt.hash_device},
        keys={"master": master_key},
        cmdline_args={"rh": fmt.root_hash.hex()},
    )
    table = DmTable.parse(
        "stack",
        "linear device=disk ; cache blocks=16 ; crypt key=master ; "
        "verity hash=device:hash root=cmdline:rh",
    )
    return backing, fmt.hash_device, context, table, payload


def _read_all_blocks(volume):
    return [volume.read_block(index) for index in range(volume.num_blocks)]


@settings(max_examples=60, deadline=None)
@given(
    depth=st.sampled_from(["backing", "hash", "luks_header", "cache_entry"]),
    block=st.integers(min_value=0, max_value=DATA_BLOCKS - 1),
    offset=st.integers(min_value=0, max_value=BLOCK - 1),
    bit=st.integers(min_value=0, max_value=7),
    warm=st.booleans(),
)
def test_bit_flip_never_yields_wrong_bytes(depth, block, offset, bit, warm):
    backing, hash_device, context, table, payload = _build_stack()
    volume = table.open(context)
    expected = [payload[i * BLOCK : (i + 1) * BLOCK] for i in range(DATA_BLOCKS)]
    if warm:
        # Fill every cache first: verity page cache, node memo, block cache.
        assert _read_all_blocks(volume) == expected
    mask = 1 << bit

    if depth == "backing":
        # Ciphertext (or LUKS-header-adjacent) region of the raw disk.
        backing.corrupt((2 + block) * BLOCK + offset, mask)
    elif depth == "hash":
        # Anywhere in the Merkle tree, superblock included.
        target = (offset + block * BLOCK) % (hash_device.num_blocks * BLOCK)
        hash_device.corrupt(target, mask)
    elif depth == "luks_header":
        backing.corrupt(offset % (2 * BLOCK), mask)
    else:  # cache_entry: poison a warm cache line directly
        cache = volume.layer("cache")
        index = 2 + block  # the cached raw-disk block holding our data
        if index not in cache.cached_indices:
            cache.read_block(index)
        cache.corrupt_entry(index, xor_mask=mask, byte_offset=offset)

    for index in range(DATA_BLOCKS):
        try:
            observed = volume.read_block(index)
        except REJECTIONS:
            continue  # loud failure: exactly what tampering must produce
        assert observed == expected[index], (
            f"silent corruption: depth={depth} flipped bit {bit} at "
            f"offset {offset}, read of block {index} returned wrong bytes"
        )


@settings(max_examples=25, deadline=None)
@given(
    block=st.integers(min_value=0, max_value=DATA_BLOCKS - 1),
    offset=st.integers(min_value=0, max_value=BLOCK - 1),
)
def test_in_footprint_flip_is_always_rejected(block, offset):
    """Sharper claim for the data path: a flip inside the ciphertext
    block a read covers is always *detected* (not just never wrong),
    cold and warm alike."""
    backing, _, context, table, _ = _build_stack()
    volume = table.open(context)
    _read_all_blocks(volume)  # warm every layer
    backing.corrupt((2 + block) * BLOCK + offset)
    with pytest.raises(REJECTIONS):
        volume.read_block(block)
    # And it stays rejected on retry (no cache resurrects the old bytes).
    with pytest.raises(REJECTIONS):
        volume.read_block(block)


def test_verity_over_crypt_detects_header_tampering_cold():
    """Deterministic spot check: LUKS header corruption surfaces as a
    crypt error at open, or a verity error on read — never a clean
    boot over a tampered header."""
    backing, _, context, table, _ = _build_stack()
    backing.corrupt(7)  # inside the LUKS header
    try:
        volume = table.open(context)
    except REJECTIONS:
        return
    with pytest.raises(REJECTIONS):
        _read_all_blocks(volume)
