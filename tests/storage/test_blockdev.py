"""Block device layer tests."""

import pytest

from repro.storage.blockdev import (
    BlockDeviceError,
    RamBlockDevice,
    ReadOnlyDeviceError,
    ReadOnlyView,
    SliceView,
)


class TestRamBlockDevice:
    def test_starts_zeroed(self):
        device = RamBlockDevice(4, block_size=16)
        assert device.read_block(0) == b"\x00" * 16

    def test_write_read(self):
        device = RamBlockDevice(4, block_size=16)
        device.write_block(2, b"x" * 16)
        assert device.read_block(2) == b"x" * 16
        assert device.read_block(1) == b"\x00" * 16

    def test_initial_contents(self):
        device = RamBlockDevice(2, block_size=4, initial=b"abcdefgh")
        assert device.read_block(0) == b"abcd"
        assert device.read_block(1) == b"efgh"

    def test_initial_too_large(self):
        with pytest.raises(BlockDeviceError):
            RamBlockDevice(1, block_size=4, initial=b"toolong")

    def test_out_of_range(self):
        device = RamBlockDevice(2, block_size=16)
        with pytest.raises(BlockDeviceError):
            device.read_block(2)
        with pytest.raises(BlockDeviceError):
            device.read_block(-1)
        with pytest.raises(BlockDeviceError):
            device.write_block(5, b"\x00" * 16)

    def test_partial_block_write_rejected(self):
        device = RamBlockDevice(2, block_size=16)
        with pytest.raises(BlockDeviceError):
            device.write_block(0, b"short")

    def test_io_counters(self):
        device = RamBlockDevice(4, block_size=16)
        device.write_block(0, b"a" * 16)
        device.read_block(0)
        device.read_block(0)
        assert device.writes == 1
        assert device.reads == 2

    def test_corrupt(self):
        device = RamBlockDevice(1, block_size=16)
        device.write_block(0, b"\x00" * 16)
        device.corrupt(5, xor_mask=0xFF)
        assert device.read_block(0)[5] == 0xFF

    def test_snapshot_restore(self):
        device = RamBlockDevice(1, block_size=16)
        device.write_block(0, b"v1-state-v1-stat")
        old = device.snapshot()
        device.write_block(0, b"v2-state-v2-stat")
        device.restore(old)
        assert device.read_block(0) == b"v1-state-v1-stat"

    def test_restore_size_mismatch(self):
        device = RamBlockDevice(1, block_size=16)
        with pytest.raises(BlockDeviceError):
            device.restore(b"wrong-size")


class TestByteGranularIo:
    def test_read_write_spanning_blocks(self):
        device = RamBlockDevice(4, block_size=8)
        device.write_bytes(5, b"hello world")
        assert device.read_bytes(5, 11) == b"hello world"
        # Neighbouring bytes untouched.
        assert device.read_bytes(0, 5) == b"\x00" * 5

    def test_zero_length(self):
        device = RamBlockDevice(1, block_size=8)
        assert device.read_bytes(3, 0) == b""
        device.write_bytes(3, b"")  # no-op

    def test_out_of_bounds(self):
        device = RamBlockDevice(2, block_size=8)
        with pytest.raises(BlockDeviceError):
            device.read_bytes(10, 10)
        with pytest.raises(BlockDeviceError):
            device.write_bytes(15, b"ab")

    def test_read_all(self):
        device = RamBlockDevice(2, block_size=4, initial=b"abcdefgh")
        assert device.read_all() == b"abcdefgh"


class TestViews:
    def test_read_only_view(self):
        backing = RamBlockDevice(2, block_size=8)
        backing.write_block(0, b"writable" )
        view = ReadOnlyView(backing)
        assert view.read_block(0) == b"writable"
        with pytest.raises(ReadOnlyDeviceError):
            view.write_block(0, b"nope-no!" )

    def test_slice_view_isolation(self):
        backing = RamBlockDevice(10, block_size=8)
        part = SliceView(backing, first_block=3, num_blocks=4)
        part.write_block(0, b"pp-data!")
        assert backing.read_block(3) == b"pp-data!"
        assert part.num_blocks == 4
        with pytest.raises(BlockDeviceError):
            part.read_block(4)

    def test_slice_out_of_bounds(self):
        backing = RamBlockDevice(4, block_size=8)
        with pytest.raises(BlockDeviceError):
            SliceView(backing, first_block=2, num_blocks=3)

    def test_nested_slices(self):
        backing = RamBlockDevice(10, block_size=8)
        outer = SliceView(backing, 2, 6)
        inner = SliceView(outer, 1, 2)
        inner.write_block(0, b"nested!!")
        assert backing.read_block(3) == b"nested!!"
