"""dm-verity tests: the invariant is that ANY corruption is caught."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import RamBlockDevice, ReadOnlyDeviceError
from repro.storage.dm_verity import (
    VerityError,
    VeritySuperblock,
    verity_format,
    verity_open,
)


def _make_data_device(num_blocks=10, block_size=4096, seed=b"verity-data"):
    rng = HmacDrbg(seed)
    return RamBlockDevice(
        num_blocks, block_size, initial=rng.generate(num_blocks * block_size)
    )


@pytest.fixture
def formatted():
    data = _make_data_device()
    result = verity_format(data, salt=b"salty")
    return data, result


class TestFormat:
    def test_deterministic_root_hash(self):
        first = verity_format(_make_data_device(), salt=b"s").root_hash
        second = verity_format(_make_data_device(), salt=b"s").root_hash
        assert first == second

    def test_salt_changes_root(self):
        assert (
            verity_format(_make_data_device(), salt=b"a").root_hash
            != verity_format(_make_data_device(), salt=b"b").root_hash
        )

    def test_data_changes_root(self):
        other = _make_data_device(seed=b"other-data")
        assert (
            verity_format(_make_data_device(), salt=b"s").root_hash
            != verity_format(other, salt=b"s").root_hash
        )

    def test_empty_device_rejected(self):
        with pytest.raises(VerityError):
            verity_format(RamBlockDevice(0))

    def test_single_block_device(self):
        data = _make_data_device(num_blocks=1)
        result = verity_format(data)
        device = verity_open(data, result.hash_device, result.root_hash)
        assert device.read_block(0) == data.read_block(0)

    @pytest.mark.parametrize("num_blocks", [1, 2, 127, 128, 129, 300])
    def test_various_sizes(self, num_blocks):
        data = _make_data_device(num_blocks=num_blocks, block_size=512)
        result = verity_format(data)
        device = verity_open(data, result.hash_device, result.root_hash)
        device.verify_all()


class TestReadVerification:
    def test_clean_reads_succeed(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, result.root_hash)
        for index in range(data.num_blocks):
            assert device.read_block(index) == data.read_block(index)

    def test_single_bit_flip_in_data_detected(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, result.root_hash)
        data.corrupt(3 * 4096 + 100)  # one bit in block 3
        with pytest.raises(VerityError):
            device.read_block(3)
        # Other blocks remain readable.
        device.read_block(2)

    def test_flip_in_every_block_detected(self):
        data = _make_data_device(num_blocks=6)
        result = verity_format(data, salt=b"x")
        device = verity_open(data, result.hash_device, result.root_hash)
        for index in range(6):
            snapshot = data.snapshot()
            data.corrupt(index * 4096 + (index * 37) % 4096)
            with pytest.raises(VerityError):
                device.read_block(index)
            data.restore(snapshot)

    def test_hash_device_tamper_detected(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, result.root_hash)
        # Corrupt a leaf digest on the hash device (block 1 = first level).
        result.hash_device.corrupt(1 * 4096 + 5)
        with pytest.raises(VerityError):
            device.read_block(0)

    def test_wrong_root_hash_rejected(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, b"\x00" * 32)
        with pytest.raises(VerityError):
            device.read_block(0)

    def test_swapped_blocks_detected(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, result.root_hash)
        block0 = data.read_block(0)
        block1 = data.read_block(1)
        data.write_block(0, block1)
        data.write_block(1, block0)
        # Even though both blocks carry valid *content*, position matters.
        with pytest.raises(VerityError):
            device.read_block(0)

    def test_writes_rejected(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, result.root_hash)
        with pytest.raises(ReadOnlyDeviceError):
            device.write_block(0, b"\x00" * 4096)

    def test_verify_all_clean_and_tampered(self, formatted):
        data, result = formatted
        device = verity_open(data, result.hash_device, result.root_hash)
        device.verify_all()
        data.corrupt(7 * 4096)
        with pytest.raises(VerityError):
            device.verify_all()


class TestOpenValidation:
    def test_size_mismatch_rejected(self, formatted):
        _, result = formatted
        wrong_size = _make_data_device(num_blocks=11)
        with pytest.raises(VerityError):
            verity_open(wrong_size, result.hash_device, result.root_hash)

    def test_garbage_superblock_rejected(self, formatted):
        data, _ = formatted
        garbage = RamBlockDevice(5, 4096, initial=b"\xde\xad" * 100)
        with pytest.raises(VerityError):
            verity_open(data, garbage, b"\x00" * 32)

    def test_block_size_mismatch_rejected(self, formatted):
        _, result = formatted
        small_blocks = _make_data_device(num_blocks=10, block_size=512)
        with pytest.raises(VerityError):
            verity_open(small_blocks, result.hash_device, result.root_hash)


class TestSuperblock:
    def test_level_geometry(self):
        superblock = VeritySuperblock(
            hash_name="sha256", data_blocks=129, block_size=4096, salt=b""
        )
        # 129 leaves / 128 per block -> 2 blocks -> 1 block.
        assert superblock.level_block_counts() == [2, 1]
        assert superblock.level_offsets() == [1, 3]
        assert superblock.hash_device_blocks() == 4

    def test_round_trip(self):
        superblock = VeritySuperblock("sha256", 10, 4096, b"salt")
        encoded = superblock.encode().ljust(4096, b"\x00")
        assert VeritySuperblock.decode(encoded) == superblock
