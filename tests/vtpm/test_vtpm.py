"""vTPM core tests: PCRs, quotes, event-log replay."""

import hashlib

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.vtpm import (
    NUM_PCRS,
    PCR_SERVICES,
    EventLogEntry,
    Quote,
    Vtpm,
    VtpmError,
    decode_event_log,
    replay_event_log,
    verify_quote_against_log,
)


@pytest.fixture
def vtpm():
    return Vtpm(HmacDrbg(b"vtpm-tests"))


class TestPcrs:
    def test_pcrs_start_zeroed(self, vtpm):
        for index in range(NUM_PCRS):
            assert vtpm.read_pcr(index) == b"\x00" * 32

    def test_extend_changes_pcr(self, vtpm):
        digest = hashlib.sha256(b"event").digest()
        vtpm.extend(8, digest)
        assert vtpm.read_pcr(8) == hashlib.sha256(b"\x00" * 32 + digest).digest()

    def test_extend_is_order_sensitive(self):
        a, b = Vtpm(HmacDrbg(b"a")), Vtpm(HmacDrbg(b"b"))
        d1, d2 = hashlib.sha256(b"1").digest(), hashlib.sha256(b"2").digest()
        a.extend(0, d1)
        a.extend(0, d2)
        b.extend(0, d2)
        b.extend(0, d1)
        assert a.read_pcr(0) != b.read_pcr(0)

    def test_other_pcrs_unaffected(self, vtpm):
        vtpm.extend(8, hashlib.sha256(b"x").digest())
        assert vtpm.read_pcr(9) == b"\x00" * 32

    def test_bad_index(self, vtpm):
        with pytest.raises(VtpmError):
            vtpm.extend(NUM_PCRS, b"\x00" * 32)
        with pytest.raises(VtpmError):
            vtpm.read_pcr(-1)

    def test_bad_digest_size(self, vtpm):
        with pytest.raises(VtpmError):
            vtpm.extend(0, b"short")

    def test_event_log_records(self, vtpm):
        vtpm.measure_event(PCR_SERVICES, b"nginx binary", "service-start:nginx")
        assert len(vtpm.event_log) == 1
        assert vtpm.event_log[0].description == "service-start:nginx"


class TestQuotes:
    def test_quote_verifies(self, vtpm):
        vtpm.measure_event(8, b"svc", "start")
        quote = vtpm.quote(b"nonce-123", [8])
        assert quote.verify(vtpm.ak_public)

    def test_quote_codec(self, vtpm):
        quote = vtpm.quote(b"n", [0, 8])
        assert Quote.decode(quote.encode()) == quote

    def test_tampered_quote_rejected(self, vtpm):
        from dataclasses import replace

        quote = vtpm.quote(b"n", [8])
        forged = replace(quote, pcr_values=((8, b"\x01" * 32),))
        assert not forged.verify(vtpm.ak_public)

    def test_wrong_ak_rejected(self, vtpm):
        other = Vtpm(HmacDrbg(b"other"))
        quote = vtpm.quote(b"n", [8])
        assert not quote.verify(other.ak_public)

    def test_quote_pcr_selection_sorted_unique(self, vtpm):
        quote = vtpm.quote(b"n", [9, 8, 8])
        assert [index for index, _ in quote.pcr_values] == [8, 9]


class TestReplay:
    def test_replay_matches_live_pcrs(self, vtpm):
        for index in range(5):
            vtpm.measure_event(8, b"event-%d" % index, f"e{index}")
        replayed = replay_event_log(vtpm.event_log)
        assert replayed[8] == vtpm.read_pcr(8)

    def test_log_codec(self, vtpm):
        vtpm.measure_event(8, b"x", "e")
        decoded = decode_event_log(vtpm.encoded_event_log())
        assert decoded == vtpm.event_log

    def test_verify_quote_against_log(self, vtpm):
        vtpm.measure_event(8, b"svc", "start")
        quote = vtpm.quote(b"nonce", [8])
        verify_quote_against_log(quote, vtpm.event_log, vtpm.ak_public, b"nonce")

    def test_nonce_mismatch_rejected(self, vtpm):
        quote = vtpm.quote(b"nonce", [8])
        with pytest.raises(VtpmError, match="nonce"):
            verify_quote_against_log(quote, vtpm.event_log, vtpm.ak_public, b"other")

    def test_truncated_log_detected(self, vtpm):
        vtpm.measure_event(8, b"first", "e1")
        vtpm.measure_event(8, b"second", "e2")
        quote = vtpm.quote(b"n", [8])
        with pytest.raises(VtpmError, match="unlogged|does not match"):
            verify_quote_against_log(
                quote, vtpm.event_log[:1], vtpm.ak_public, b"n"
            )

    def test_forged_log_entry_detected(self, vtpm):
        vtpm.measure_event(8, b"real", "e1")
        quote = vtpm.quote(b"n", [8])
        forged_log = [
            EventLogEntry(8, hashlib.sha256(b"fake").digest(), "looks-legit")
        ]
        with pytest.raises(VtpmError):
            verify_quote_against_log(quote, forged_log, vtpm.ak_public, b"n")

    def test_invalid_pcr_in_log(self):
        with pytest.raises(VtpmError):
            replay_event_log([EventLogEntry(99, b"\x00" * 32, "bad")])
