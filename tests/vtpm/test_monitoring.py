"""Runtime monitoring integration: vTPM in a Revelio VM."""

import hashlib

import pytest

from repro.amd.verify import AttestationError
from repro.build import DEFAULT_INIT_STEPS, build_revelio_image
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from repro.vtpm import (
    MonitoringEvidence,
    RuntimeMonitor,
    VtpmError,
    measure_service_start,
    produce_evidence,
    vm_vtpm,
)
from tests.conftest import make_spec

NGINX_BINARY = b"\x7fELF-nginx-binary"
BACKDOOR_BINARY = b"\x7fELF-backdoor"


@pytest.fixture(scope="module")
def deployment(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(
        make_spec(
            registry, pins,
            init_steps=DEFAULT_INIT_STEPS + ("vtpm-init",),
        )
    )
    deployment = RevelioDeployment(
        build, num_nodes=1, latency=ZERO_LATENCY, seed=b"vtpm-mon"
    )
    deployment.launch_fleet()
    return deployment


@pytest.fixture
def monitor(deployment):
    return RuntimeMonitor(
        deployment._new_kds_client(),
        deployment.build.expected_measurement,
        allowed_service_digests=[hashlib.sha256(NGINX_BINARY).digest()],
    )


class TestHappyPath:
    def test_vtpm_attached_by_init_step(self, deployment):
        vm = deployment.nodes[0].vm
        assert vm_vtpm(vm) is not None
        assert "vtpm_ak_endorsement" in vm.services

    def test_clean_vm_passes_monitoring(self, deployment, monitor):
        vm = deployment.nodes[0].vm
        measure_service_start(vm, "nginx", NGINX_BINARY)
        nonce = b"challenge-0001"
        evidence = produce_evidence(vm, nonce)
        monitor.verify(evidence, nonce, now=0)

    def test_evidence_codec(self, deployment):
        vm = deployment.nodes[0].vm
        evidence = produce_evidence(vm, b"codec-nonce")
        assert MonitoringEvidence.decode(evidence.encode()) == evidence

    def test_vtpm_init_changes_measurement(self, registry_and_pins):
        registry, pins = registry_and_pins
        with_vtpm = build_revelio_image(
            make_spec(registry, pins,
                      init_steps=DEFAULT_INIT_STEPS + ("vtpm-init",))
        )
        without = build_revelio_image(make_spec(registry, pins))
        # Enabling monitoring is itself attested configuration.
        assert with_vtpm.expected_measurement != without.expected_measurement


class TestDetections:
    def test_unapproved_service_detected(self, deployment, monitor):
        vm = deployment.nodes[0].vm
        measure_service_start(vm, "backdoor", BACKDOOR_BINARY)
        nonce = b"challenge-0002"
        evidence = produce_evidence(vm, nonce)
        with pytest.raises(VtpmError, match="unapproved"):
            monitor.verify(evidence, nonce, now=0)

    def test_hidden_event_detected(self, deployment, monitor):
        # The VM tries to hide the backdoor start by omitting it from
        # the served log — but the quoted PCR no longer replays.
        vm = deployment.nodes[0].vm
        nonce = b"challenge-0003"
        evidence = produce_evidence(vm, nonce)
        sanitised = MonitoringEvidence(
            quote=evidence.quote,
            event_log=[
                entry for entry in evidence.event_log
                if "backdoor" not in entry.description
            ],
            ak_public=evidence.ak_public,
            ak_endorsement=evidence.ak_endorsement,
        )
        with pytest.raises(VtpmError):
            monitor.verify(sanitised, nonce, now=0)

    def test_replayed_quote_detected(self, deployment, monitor):
        vm = deployment.nodes[0].vm
        old = produce_evidence(vm, b"old-nonce")
        with pytest.raises(VtpmError, match="nonce"):
            monitor.verify(old, b"fresh-nonce", now=0)

    def test_foreign_ak_detected(self, deployment, monitor):
        # Evidence signed by an AK that was never endorsed by the
        # hardware RoT for the golden measurement.
        from repro.vtpm import Vtpm
        from repro.crypto.drbg import HmacDrbg

        vm = deployment.nodes[0].vm
        rogue = Vtpm(HmacDrbg(b"rogue"))
        nonce = b"challenge-0004"
        evidence = MonitoringEvidence(
            quote=rogue.quote(nonce, [8]),
            event_log=list(rogue.event_log),
            ak_public=rogue.ak_public,
            ak_endorsement=vm.services["vtpm_ak_endorsement"],
        )
        with pytest.raises(AttestationError):
            monitor.verify(evidence, nonce, now=0)

    def test_vm_without_vtpm_raises(self, registry_and_pins):
        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        deployment = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"no-vtpm"
        )
        deployment.launch_fleet()
        with pytest.raises(VtpmError, match="no vTPM"):
            produce_evidence(deployment.nodes[0].vm, b"n")
