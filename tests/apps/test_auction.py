"""Sealed-bid auction use case tests."""

import pytest

from repro.apps import AuctionClient, AuctionError, AuctionOutcome, AuctionServer
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def world(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(
        make_spec(registry, pins, name="auction-house", data_volume_blocks=96)
    )
    deployment = RevelioDeployment(
        build, num_nodes=1, latency=ZERO_LATENCY, seed=b"auction"
    )
    server = AuctionServer()
    deployment.launch_fleet(app_factory=server.install)
    deployment.create_sp_node()
    deployment.provision_certificates()
    return deployment, server


def _bidder(world, name, index):
    """An attested bidder: the service key is taken from the verified
    TLS connection after the extension validated the VM."""
    deployment, _ = world
    browser, extension = deployment.make_user(name, f"10.2.8.{index}")
    result = browser.navigate(f"https://{deployment.domain}/")
    assert not result.blocked
    service_key = result.connection.peer_public_key
    return AuctionClient(
        browser.client,
        f"https://{deployment.domain}",
        service_key,
        HmacDrbg(name.encode()),
    )


class TestAuctionFlow:
    def test_highest_bid_wins(self, world):
        alice = _bidder(world, "alice", 1)
        bob = _bidder(world, "bob", 2)
        carol = _bidder(world, "carol", 3)
        alice.create_auction("painting")
        alice.place_bid("painting", "alice", 300)
        bob.place_bid("painting", "bob", 450)
        carol.place_bid("painting", "carol", 420)
        outcome = alice.close_auction("painting")
        assert outcome.winner == "bob"
        assert outcome.winning_amount == 450
        assert outcome.num_bids == 3

    def test_outcome_verifies_for_every_bidder(self, world):
        alice = _bidder(world, "alice2", 11)
        bob = _bidder(world, "bob2", 12)
        alice.create_auction("car")
        alice.place_bid("car", "alice", 5000)
        bob.place_bid("car", "bob", 4800)
        alice.close_auction("car")
        # Bob fetches and independently verifies the signed outcome.
        outcome = bob.fetch_outcome("car")
        assert outcome.winner == "alice"

    def test_bids_after_close_rejected(self, world):
        alice = _bidder(world, "alice3", 13)
        alice.create_auction("vase")
        alice.place_bid("vase", "alice", 10)
        alice.close_auction("vase")
        with pytest.raises(AuctionError, match="bid failed"):
            alice.place_bid("vase", "late-larry", 999)

    def test_close_is_idempotent(self, world):
        alice = _bidder(world, "alice4", 14)
        alice.create_auction("clock")
        alice.place_bid("clock", "alice", 7)
        first = alice.close_auction("clock")
        second = alice.close_auction("clock")
        assert first == second

    def test_empty_auction_cannot_close(self, world):
        alice = _bidder(world, "alice5", 15)
        alice.create_auction("empty")
        with pytest.raises(AuctionError, match="close failed"):
            alice.close_auction("empty")

    def test_duplicate_auction_rejected(self, world):
        alice = _bidder(world, "alice6", 16)
        alice.create_auction("dup")
        with pytest.raises(AuctionError, match="create failed"):
            alice.create_auction("dup")

    def test_deterministic_tie_break(self, world):
        alice = _bidder(world, "alice7", 17)
        bob = _bidder(world, "bob7", 18)
        alice.create_auction("tie")
        alice.place_bid("tie", "alice", 100)
        bob.place_bid("tie", "bob", 100)
        outcome = alice.close_auction("tie")
        assert outcome.winner == "bob"  # lexicographically larger name


class TestIntegrityAndConfidentiality:
    def test_operator_sees_only_sealed_bids(self, world):
        deployment, server = world
        alice = _bidder(world, "alice8", 19)
        alice.create_auction("secret-sale")
        alice.place_bid("secret-sale", "alice", 123456)
        sealed = server.snoop_sealed_bids("secret-sale")
        assert set(sealed) == {"alice"}
        # The amount (123456 -> 0x01E240) never appears in the blob.
        assert (123456).to_bytes(3, "big") not in sealed["alice"]
        from repro.crypto import encoding

        assert encoding.encode({"amount": 123456}) not in sealed["alice"]

    def test_forged_outcome_rejected(self, world):
        # The operator (or a MITM) rewrites the winner: the signature
        # check against the attested key catches it.
        alice = _bidder(world, "alice9", 20)
        alice.create_auction("forge-me")
        alice.place_bid("forge-me", "alice", 50)
        outcome = alice.close_auction("forge-me")
        from dataclasses import replace

        forged = replace(outcome, winner="mallory")
        assert not forged.verify(alice.service_key)

    def test_outcome_from_unattested_service_rejected(self, world):
        # A fake auction service with its own key produces outcomes that
        # fail against the attested key bidders pinned.
        from repro.crypto.ec import P256
        from repro.crypto.ecdsa import EcdsaPrivateKey
        from dataclasses import replace

        fake_key = EcdsaPrivateKey.generate(P256, HmacDrbg(b"fake-svc"))
        unsigned = AuctionOutcome("x", "mallory", 1, 1)
        fake_outcome = replace(
            unsigned, signature=fake_key.sign(unsigned.signed_payload())
        )
        alice = _bidder(world, "alice10", 21)
        assert not fake_outcome.verify(alice.service_key)

    def test_garbage_bids_discarded(self, world):
        deployment, _ = world
        alice = _bidder(world, "alice11", 22)
        alice.create_auction("robust")
        alice.place_bid("robust", "alice", 77)
        # Mallory posts garbage directly (not properly encrypted).
        from repro.crypto import encoding
        from repro.net.http import HttpRequest

        mallory_host = deployment.network.add_host("mallory", "10.2.8.99")
        # Bids go over HTTPS; use a plain https client without extension.
        browser, _ = deployment.make_user("mallory-b", "10.2.8.98",
                                          with_extension=False)
        browser.client.post(
            f"https://{deployment.domain}/api/auction/bid",
            encoding.encode(
                {"auction": "robust", "bidder": "mallory",
                 "sealed_bid": b"not-an-ecies-blob"}
            ),
        )
        outcome = alice.close_auction("robust")
        assert outcome.winner == "alice"
        assert outcome.num_bids == 1  # garbage didn't count

    def test_sealed_persistence(self, world):
        deployment, server = world
        alice = _bidder(world, "alice12", 23)
        alice.create_auction("durable")
        alice.place_bid("durable", "alice", 11)
        # A fresh server instance over the same sealed volume reloads.
        reloaded = AuctionServer()
        reloaded._node = server._node
        reloaded._storage = deployment.nodes[0].vm.storage["data"]
        reloaded._load()
        assert "durable" in reloaded._auctions
        assert set(reloaded.snoop_sealed_bids("durable")) == {"alice"}
