"""CryptPad use case: E2EE pads on a Revelio VM (paper §4.1)."""

import pytest

from repro.apps import CryptPadClient, CryptPadError, CryptPadServer
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def world(registry_and_pins):
    registry, pins = registry_and_pins
    build = build_revelio_image(
        make_spec(registry, pins, name="cryptpad", data_volume_blocks=64)
    )
    deployment = RevelioDeployment(
        build, num_nodes=1, latency=ZERO_LATENCY, seed=b"cp-deploy"
    )
    server = CryptPadServer()
    deployment.launch_fleet(app_factory=server.install)
    deployment.create_sp_node()
    deployment.provision_certificates()
    return deployment, server


@pytest.fixture
def user(world):
    deployment, _ = world
    index = getattr(user, "_counter", 0)
    user._counter = index + 1
    browser, _ = deployment.make_user(f"cp-user-{index}", f"10.2.2.{index + 1}")
    browser.navigate(f"https://{deployment.domain}/")  # attest first
    return CryptPadClient(
        browser.client,
        f"https://{deployment.domain}",
        HmacDrbg(f"cp-client-{index}".encode()),
    )


class TestPads:
    def test_create_append_read(self, world, user):
        user.create_pad("meeting-notes")
        user.append("meeting-notes", "agenda: secure the cloud")
        user.append("meeting-notes", "action: deploy revelio")
        assert user.read("meeting-notes") == [
            "agenda: secure the cloud",
            "action: deploy revelio",
        ]

    def test_collaboration_via_shared_key(self, world, user):
        deployment, _ = world
        key = user.create_pad("shared-doc")
        user.append("shared-doc", "alice writes this")

        browser, _ = deployment.make_user("cp-bob", "10.2.2.99")
        browser.navigate(f"https://{deployment.domain}/")
        bob = CryptPadClient(
            browser.client, f"https://{deployment.domain}", HmacDrbg(b"bob")
        )
        bob.open_pad("shared-doc", key)
        assert bob.read("shared-doc") == ["alice writes this"]
        bob.append("shared-doc", "bob replies")
        assert user.read("shared-doc")[-1] == "bob replies"

    def test_wrong_key_cannot_read(self, world, user):
        user.create_pad("private")
        user.append("private", "secret")
        eve = CryptPadClient(
            user._http, f"https://{world[0].domain}", HmacDrbg(b"eve")
        )
        eve.open_pad("private", b"\x00" * 32)
        with pytest.raises(CryptPadError, match="authentication"):
            eve.read("private")

    def test_duplicate_pad_rejected(self, world, user):
        user.create_pad("dup")
        with pytest.raises(CryptPadError):
            user.create_pad("dup")

    def test_missing_pad(self, world, user):
        user.open_pad("ghost", b"\x11" * 32)
        with pytest.raises(CryptPadError):
            user.read("ghost")
        with pytest.raises(CryptPadError):
            user.append("ghost", "x")

    def test_no_key_no_access(self, world, user):
        with pytest.raises(CryptPadError, match="no key"):
            user.read("never-opened")


class TestServerBlindness:
    def test_server_sees_only_ciphertext(self, world, user):
        _, server = world
        user.create_pad("blind-test")
        plaintext = "the server must never see this"
        user.append("blind-test", plaintext)
        stored = server.snoop_ciphertexts("blind-test")
        assert len(stored) == 1
        assert plaintext.encode() not in stored[0]

    def test_pads_persisted_on_sealed_volume(self, world, user):
        deployment, server = world
        user.create_pad("persistent")
        user.append("persistent", "survives reboots")
        # The raw data volume on the host carries only dm-crypt output.
        deployed = deployment.nodes[0]
        from repro.storage.partition import PartitionTable

        table = PartitionTable.read_from(deployed.vm.disk)
        data_part = table.open(deployed.vm.disk, "data")
        raw = b"".join(
            data_part.read_block(i) for i in range(data_part.num_blocks)
        )
        assert b"survives reboots" not in raw

    def test_app_shell_served_from_measured_rootfs(self, world):
        deployment, _ = world
        browser, _ = deployment.make_user("cp-shell", "10.2.2.98")
        result = browser.navigate(f"https://{deployment.domain}/")
        assert b"e2ee client code" in result.response.body


class TestReboot:
    def test_pads_survive_reboot_of_identical_image(self, registry_and_pins):
        registry, pins = registry_and_pins
        build = build_revelio_image(
            make_spec(registry, pins, name="cryptpad", data_volume_blocks=64)
        )
        deployment = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"cp-reboot"
        )
        server = CryptPadServer()
        deployment.launch_fleet(app_factory=server.install)
        deployment.create_sp_node()
        deployment.provision_certificates()
        browser, _ = deployment.make_user("cp-r", "10.2.2.97")
        browser.navigate(f"https://{deployment.domain}/")
        client = CryptPadClient(
            browser.client, f"https://{deployment.domain}", HmacDrbg(b"r")
        )
        key = client.create_pad("diary")
        client.append("diary", "entry one")

        deployed = deployment.nodes[0]
        deployed.vm.shutdown()
        vm2 = deployed.hypervisor.launch(
            build.image, name=deployed.vm.name, reuse_disk=True
        )
        vm2.boot()

        # A fresh server instance on the rebooted VM reloads the pads
        # from the sealed volume.
        reloaded = CryptPadServer()
        reloaded._storage = vm2.storage["data"]
        reloaded._load()
        assert reloaded.snoop_ciphertexts("diary") != []
        # And the pad still decrypts with the original client key.
        ops = reloaded.snoop_ciphertexts("diary")
        from repro.crypto.modes import AeadCipher

        nonce, ciphertext = ops[0][:12], ops[0][12:]
        plaintext = AeadCipher(key).open(nonce, ciphertext, aad=b"diary")
        assert plaintext == b"entry one"
