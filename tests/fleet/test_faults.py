"""Fault injection: dead backends, a black-holed KDS, a raised TCB
floor, a revoked TEE family — each surfacing its stable reason code
and zero end-user damage."""


import pytest

from repro.amd.tcb import TcbVersion
from repro.core.deployment import MINIMAL_PAGE
from repro.fleet import (
    HeterogeneousFleet,
    blackhole_kds,
    corrupt_disk,
    kill_backend,
    raise_family_tcb_floor,
    raise_tcb_floor,
    revoke_family,
    slow_disk,
)
from repro.storage.dm import VerityError
from repro.storage.partition import PartitionTable


def navigate_ok(browser, domain):
    result = browser.navigate(f"https://{domain}/")
    assert not result.blocked, result.block_reason
    assert result.response.body == MINIMAL_PAGE
    return result


class TestBackendDeath:
    def test_mid_session_kill_evicts_and_client_recovers(self, sync_world):
        deployment, gateway, _ = sync_world
        browser, _ = deployment.make_user(name="victim-user", ip_address="10.2.7.1")
        navigate_ok(browser, deployment.domain)
        (victim_ip,) = set(gateway._affinity.values())

        kill_backend(gateway, victim_ip)

        # The revisit's record forward dies on the wire; the gateway
        # evicts with the stable code and the client's automatic
        # re-handshake lands on a healthy peer: zero failed page loads.
        navigate_ok(browser, deployment.domain)
        victim = gateway.backends[victim_ip]
        assert victim.state == "evicted"
        assert victim.verdict_reason == "backend_unreachable"
        assert gateway.counters["evictions.backend_unreachable"] == 1

    def test_new_sessions_retry_past_a_dead_backend(self, sync_world):
        deployment, gateway, _ = sync_world
        dead_ip = sorted(gateway.backends)[0]
        kill_backend(gateway, dead_ip)
        # Three fresh sessions: round-robin guarantees the dead backend
        # is attempted, evicted, and silently retried on a live one.
        for index in range(3):
            browser, _ = deployment.make_user(
                name=f"retry-user-{index}", ip_address=f"10.2.7.{10 + index}"
            )
            navigate_ok(browser, deployment.domain)
        assert gateway.backends[dead_ip].state == "evicted"
        assert gateway.counters["retries"] >= 1
        assert gateway.counters["evictions.backend_unreachable"] == 1

    def test_whole_fleet_dead_is_a_stable_routing_failure(self, sync_world):
        deployment, gateway, _ = sync_world
        for ip in sorted(gateway.backends):
            kill_backend(gateway, ip)
        browser, _ = deployment.make_user(name="left-out", ip_address="10.2.7.20")
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert all(b.state == "evicted" for b in gateway.backends.values())
        assert gateway.counters["routing_failed.no_healthy_backend"] >= 1


class TestKdsBlackhole:
    def test_warm_vcek_cache_rides_out_the_outage(self, sync_world):
        """The PR-3 story: cached VCEKs keep re-attestation working
        while AMD's KDS is unreachable."""
        _, gateway, _ = sync_world
        hole = blackhole_kds(gateway)  # cache intact
        for ip in sorted(gateway.backends):
            verdict = gateway.attest_and_admit(ip)
            assert verdict.ok, verdict.reason
        assert all(b.state == "admitted" for b in gateway.backends.values())
        hole.active = False

    def test_cold_cache_blackhole_evicts_with_kds_unreachable(self, sync_world):
        _, gateway, _ = sync_world
        hole = blackhole_kds(gateway, clear_cache=True)
        ip = sorted(gateway.backends)[0]
        verdict = gateway.attest_and_admit(ip)
        assert not verdict.ok
        assert verdict.reason == "kds_unreachable"
        assert gateway.backends[ip].state == "evicted"
        assert gateway.counters["evictions.kds_unreachable"] == 1

        # Service restored: a replacement registration re-admits.
        hole.active = False
        gateway.add_backend(ip)
        assert gateway.attest_and_admit(ip).ok
        assert gateway.backends[ip].state == "admitted"

    def test_blackhole_spares_non_snp_families(self, sync_world):
        """An AMD KDS outage must not take down TDX/CCA re-attestation:
        their trust material survives the verifier swap."""
        deployment, gateway, _ = sync_world
        fleet = HeterogeneousFleet(deployment)
        fleet.add_tdx_backend("10.1.0.10")
        fleet.add_cca_backend("10.1.0.40")
        assert all(v.ok for v in fleet.attach_gateway(gateway))

        hole = blackhole_kds(gateway, clear_cache=True)
        assert gateway.attest_and_admit("10.1.0.10").ok
        assert gateway.attest_and_admit("10.1.0.40").ok
        snp_ip = sorted(gateway.backends)[0]
        assert gateway.attest_and_admit(snp_ip).reason == "kds_unreachable"
        hole.active = False


class TestTcbFloor:
    def test_raised_floor_evicts_with_tcb_too_old(self, sync_world):
        _, gateway, _ = sync_world
        # Fleet chips report TCB 3.0.8.115; mandate a newer bootloader.
        raise_tcb_floor(gateway, TcbVersion(4, 0, 8, 115))
        ip = sorted(gateway.backends)[0]
        verdict = gateway.attest_and_admit(ip)
        assert not verdict.ok
        assert verdict.reason == "tcb_too_old"
        assert gateway.backends[ip].state == "evicted"
        assert gateway.counters["evictions.tcb_too_old"] == 1

    def test_met_floor_keeps_the_backend_admitted(self, sync_world):
        _, gateway, _ = sync_world
        raise_tcb_floor(gateway, TcbVersion(3, 0, 8, 115))
        ip = sorted(gateway.backends)[0]
        assert gateway.attest_and_admit(ip).ok
        assert gateway.backends[ip].state == "admitted"


class TestFamilyFaults:
    def _hetero(self, deployment, gateway):
        fleet = HeterogeneousFleet(deployment)
        fleet.add_tdx_backend("10.1.0.10")
        fleet.add_cca_backend("10.1.0.40")
        verdicts = fleet.attach_gateway(gateway)
        assert all(v.ok for v in verdicts), [
            (v.ip_address, v.reason) for v in verdicts if not v.ok
        ]
        return fleet

    def test_revoke_family_evicts_with_family_scoped_code(self, sync_world):
        deployment, gateway, _ = sync_world
        self._hetero(deployment, gateway)

        revoke_family(gateway, "tdx")

        tdx = gateway.backends["10.1.0.10"]
        assert tdx.state == "evicted"
        assert tdx.verdict_reason == "family_not_allowed"
        assert (
            gateway.counters["family.tdx.evictions.family_not_allowed"] == 1
        )
        # Other families are untouched; the revoked one fails closed.
        assert gateway.backends["10.1.0.40"].state == "admitted"
        verdict = gateway.attest_and_admit("10.1.0.10")
        assert not verdict.ok
        assert verdict.reason == "family_not_allowed"
        assert (
            gateway.counters["family.tdx.attestations_failed.family_not_allowed"]
            >= 1
        )

    def test_family_tcb_floor_fails_only_that_family(self, sync_world):
        deployment, gateway, _ = sync_world
        self._hetero(deployment, gateway)

        # Fleet TDX platforms report TCB SVN 3; mandate newer firmware.
        raise_family_tcb_floor(gateway, "tdx", 4)

        verdict = gateway.attest_and_admit("10.1.0.10")
        assert not verdict.ok
        assert verdict.reason == "family_tcb_floor"
        assert gateway.backends["10.1.0.10"].state == "evicted"
        assert gateway.counters["family.tdx.evictions.family_tcb_floor"] == 1
        # SNP and CCA backends still re-attest fine under their floors.
        assert gateway.attest_and_admit("10.1.0.40").ok
        assert gateway.attest_and_admit(sorted(gateway.backends)[0]).ok


class TestSymmetricRevert:
    """Every injector's ``revert()`` restores pre-attack admission
    behaviour: after the undo, a re-registration + re-attestation (the
    same path a recovered machine takes) admits the backend again, and
    storage reads verify again."""

    def test_kill_backend_revert_restores_admission(self, sync_world):
        _, gateway, _ = sync_world
        ip = sorted(gateway.backends)[0]
        handle = kill_backend(gateway, ip)
        assert not gateway.attest_and_admit(ip).ok
        assert gateway.backends[ip].state == "evicted"

        handle.revert()
        gateway.add_backend(ip)
        assert gateway.attest_and_admit(ip).ok
        assert gateway.backends[ip].state == "admitted"
        handle.revert()  # idempotent
        assert gateway.attest_and_admit(ip).ok

    def test_blackhole_revert_swaps_client_and_verifier_back(self, sync_world):
        _, gateway, _ = sync_world
        original_kds, original_verifier = gateway.kds, gateway.verifier
        hole = blackhole_kds(gateway, clear_cache=True)
        ip = sorted(gateway.backends)[0]
        assert gateway.attest_and_admit(ip).reason == "kds_unreachable"

        hole.revert()
        assert gateway.kds is original_kds
        assert gateway.verifier is original_verifier
        gateway.add_backend(ip)
        assert gateway.attest_and_admit(ip).ok

    def test_tcb_floor_revert_restores_previous_floor(self, sync_world):
        _, gateway, _ = sync_world
        previous = gateway.minimum_tcb
        handle = raise_tcb_floor(gateway, TcbVersion(255, 255, 255, 255))
        ip = sorted(gateway.backends)[0]
        assert gateway.attest_and_admit(ip).reason == "tcb_too_old"

        handle.revert()
        assert gateway.minimum_tcb == previous
        gateway.add_backend(ip)
        assert gateway.attest_and_admit(ip).ok

    def test_family_floor_revert_removes_the_floor(self, sync_world):
        deployment, gateway, _ = sync_world
        fleet = HeterogeneousFleet(deployment)
        fleet.add_tdx_backend("10.1.0.10")
        assert all(v.ok for v in fleet.attach_gateway(gateway))
        handle = raise_family_tcb_floor(gateway, "tdx", 4)
        assert gateway.attest_and_admit("10.1.0.10").reason == "family_tcb_floor"

        handle.revert()
        assert "tdx" not in gateway.family_tcb_floors
        gateway.add_backend("10.1.0.10", family="tdx")
        assert gateway.attest_and_admit("10.1.0.10").ok

    def test_revoke_family_revert_lifts_the_revocation(self, sync_world):
        deployment, gateway, _ = sync_world
        fleet = HeterogeneousFleet(deployment)
        fleet.add_tdx_backend("10.1.0.10")
        assert all(v.ok for v in fleet.attach_gateway(gateway))
        handle = revoke_family(gateway, "tdx")
        assert gateway.backends["10.1.0.10"].state == "evicted"
        assert not gateway.attest_and_admit("10.1.0.10").ok

        handle.revert()
        assert "tdx" not in gateway.revoked_families
        gateway.add_backend("10.1.0.10", family="tdx")
        assert gateway.attest_and_admit("10.1.0.10").ok

    def test_corrupt_disk_revert_restores_reads(self, sync_world):
        deployment, _, _ = sync_world
        vm = deployment.nodes[0].vm
        volume = vm.storage.open("verity")
        volume.read_block(2)  # clean
        handle = corrupt_disk(
            vm, "rootfs", block_index=2, byte_offset=3, xor_mask=0x40
        )
        with pytest.raises(VerityError):
            volume.read_block(2)

        handle.revert()
        volume.read_block(2)  # verifies again
        handle.revert()  # idempotent: no double re-XOR
        volume.read_block(2)

    def test_slow_disk_revert_unsplices_the_delay(self, sync_world):
        deployment, _, _ = sync_world
        vm = deployment.nodes[0].vm
        original = vm.storage.open("verity")
        handle = slow_disk(vm, "verity", read_ms=5.0)
        assert vm.storage.open("verity") is handle.target

        handle.revert()
        assert vm.storage.open("verity") is original

    def test_runtime_tamper_undo_restores_reads(self, sync_world):
        deployment, _, _ = sync_world
        deployed = deployment.nodes[0]
        vm = deployed.vm
        volume = vm.storage.open("verity")
        entry = PartitionTable.read_from(vm.disk).find("rootfs")
        offset = (entry.first_block + 1) * vm.disk.block_size + 7

        undo = deployed.hypervisor.tamper_disk_at_runtime(vm, offset, 0x20)
        with pytest.raises(VerityError):
            volume.read_block(1)

        undo()
        volume.read_block(1)
