"""Fleet-level verify-farm wiring: batched admission, batched health
re-attestation, and the mesh's shared farm."""

import pytest

from repro.attest import VerifyFarm, get_tracer, reset_tracer
from repro.core import RevelioDeployment
from repro.crypto import sigcache
from repro.fleet import FleetGateway, GatewayMesh, HealthMonitor, blackhole_kds
from repro.sim import EventKernel, SimRng
from repro.sim.kernel import run_until_complete, sleep

REGIONS = ("east", "west")


@pytest.fixture(autouse=True)
def clean_seams():
    """Every test builds its own farm (a process-wide oracle) and reads
    the process-wide tracer; reset both around each test."""
    reset_tracer()
    sigcache.reset_cache()
    yield
    sigcache.set_oracle(None)
    sigcache.reset_cache()
    reset_tracer()


def make_farm_world(build, num_nodes=3, with_kernel=False, seed=0):
    """A deployed fleet fronted by a farm-wired gateway (not admitted)."""
    deployment = RevelioDeployment(build, num_nodes=num_nodes).deploy()
    kernel = None
    if with_kernel:
        kernel = EventKernel(deployment.network.clock, SimRng(seed))
        deployment.network.enable_event_mode(kernel)
    farm = VerifyFarm(
        clock=deployment.network.clock,
        latency=deployment.network.latency,
        seed=b"fleet-farm",
    )
    gateway = FleetGateway.for_deployment(deployment, kernel=kernel, farm=farm)
    return deployment, gateway, kernel, farm


class TestBatchedAdmission:
    def test_attest_and_admit_many_admits_the_fleet_in_one_batch(
        self, fleet_build
    ):
        _, gateway, _, farm = make_farm_world(fleet_build)
        verdicts = gateway.attest_and_admit_many(sorted(gateway.backends))
        assert all(v.ok for v in verdicts), [
            (v.ip_address, v.reason) for v in verdicts if not v.ok
        ]
        assert all(
            b.state == "admitted" for b in gateway.backends.values()
        )
        assert gateway.counters["attestations_ok"] == 3
        counters = get_tracer().farm
        # 3 backends x (2 chain links + report signature) settle in one
        # flush; each node has its own chip/VCEK, so the fleet-shared
        # ASK<-ARK link is the duplicated term (3 copies -> 2 dropped).
        assert counters.batches == 1
        assert counters.jobs == 9
        assert counters.deduplicated == 2
        assert farm.stats()["jobs"] == 9

    def test_batched_admission_matches_sequential_verdicts(self, fleet_build):
        _, batched_gateway, _, farm = make_farm_world(fleet_build)
        batched = batched_gateway.attest_and_admit_many(
            sorted(batched_gateway.backends)
        )
        farm.uninstall()
        sequential_world = RevelioDeployment(fleet_build, num_nodes=3).deploy()
        sequential_gateway = FleetGateway.for_deployment(sequential_world)
        sequential = [
            sequential_gateway.attest_and_admit(ip)
            for ip in sorted(sequential_gateway.backends)
        ]
        assert [v.ok for v in batched] == [v.ok for v in sequential]
        assert [v.reason for v in batched] == [v.reason for v in sequential]

    def test_unknown_backend_rejected_before_any_probe(self, fleet_build):
        from repro.fleet import GatewayError

        _, gateway, _, _ = make_farm_world(fleet_build)
        with pytest.raises(GatewayError, match="unknown_backend"):
            gateway.attest_and_admit_many(["10.0.0.99"])


class TestBatchedReattestation:
    def test_health_monitor_reattests_due_backends_in_one_batch(
        self, fleet_build
    ):
        _, gateway, kernel, _ = make_farm_world(fleet_build, with_kernel=True)
        assert all(v.ok for v in gateway.admit_all())
        admission_batches = get_tracer().farm.batches
        monitor = HealthMonitor(gateway, interval=5.0, reattest_every=0.0)

        def driver():
            yield sleep(monitor.interval)
            monitor.probe_all()

        run_until_complete(kernel, driver())
        assert monitor.reattestations == 3
        assert all(
            b.state == "admitted" for b in gateway.backends.values()
        )
        # All three due backends re-attested through one farm flush.
        assert get_tracer().farm.batches == admission_batches + 1

    def test_fresh_verdicts_are_not_reattested(self, fleet_build):
        _, gateway, kernel, _ = make_farm_world(fleet_build, with_kernel=True)
        assert all(v.ok for v in gateway.admit_all())
        monitor = HealthMonitor(gateway, interval=5.0, reattest_every=1e9)

        def driver():
            yield sleep(monitor.interval)
            monitor.probe_all()

        run_until_complete(kernel, driver())
        assert monitor.reattestations == 0
        assert monitor.probes_ok == 3

    def test_blackholed_kds_fails_the_whole_batch_closed(self, fleet_build):
        """DESIGN.md invariant 11 through the batched path: freshness
        unconfirmable => every due backend evicts, none passes."""
        _, gateway, kernel, _ = make_farm_world(fleet_build, with_kernel=True)
        assert all(v.ok for v in gateway.admit_all())
        monitor = HealthMonitor(gateway, interval=5.0, reattest_every=0.0)
        blackhole = blackhole_kds(gateway, clear_cache=True)
        assert gateway.verifier.farm is not None  # farm survives the swap

        def driver():
            yield sleep(monitor.interval)
            monitor.probe_all()

        run_until_complete(kernel, driver())
        assert all(
            b.state == "evicted" for b in gateway.backends.values()
        )
        assert {
            b.verdict_reason for b in gateway.backends.values()
        } == {"kds_unreachable"}
        blackhole.active = False


class TestMeshSharedFarm:
    def test_shared_farm_spans_every_regional_gateway(self, fleet_build):
        deployment = RevelioDeployment(fleet_build, num_nodes=4).deploy()
        mesh = GatewayMesh.for_deployment(
            deployment, regions=REGIONS, shared_farm=True
        )
        farms = {
            id(gateway.verifier.farm) for gateway in mesh.gateways.values()
        }
        assert len(farms) == 1
        assert None not in {
            gateway.verifier.farm for gateway in mesh.gateways.values()
        }
        verdicts = mesh.admit_all()
        assert all(v.ok for v in verdicts)
        assert get_tracer().farm.jobs > 0

    def test_explicit_farm_kwarg_wins(self, fleet_build):
        deployment = RevelioDeployment(fleet_build, num_nodes=2).deploy()
        mine = VerifyFarm(
            clock=deployment.network.clock,
            latency=deployment.network.latency,
            seed=b"mine",
        )
        mesh = GatewayMesh.for_deployment(
            deployment, regions=REGIONS, shared_farm=True, farm=mine
        )
        assert all(
            gateway.verifier.farm is mine
            for gateway in mesh.gateways.values()
        )

    def test_mesh_without_flag_has_no_farm(self, fleet_build):
        deployment = RevelioDeployment(fleet_build, num_nodes=2).deploy()
        mesh = GatewayMesh.for_deployment(deployment, regions=REGIONS)
        assert all(
            gateway.verifier.farm is None
            for gateway in mesh.gateways.values()
        )
