"""Mixed-fleet serving: SNP + TDX + CCA + e-vTPM backends behind one
tier-aware gateway, tiered traffic, and a mid-storm family revocation
that costs the survivors nothing."""

import json

from repro.crypto import ec, sigcache
from repro.fleet import (
    FleetWorkload,
    HeterogeneousFleet,
    UserPool,
    revoke_family,
)
from repro.sim import SimRng
from repro.sim.kernel import sleep
from tests.fleet.conftest import make_world

TIER_WEIGHTS = {"high": 0.3, "bulk": 0.7}
HIGH_TIER_FAMILIES = {"sev-snp", "e-vtpm"}


def attach_hetero(deployment, gateway):
    """Two TDX + one CCA + one e-vTPM backend joined to the fleet."""
    fleet = HeterogeneousFleet(deployment)
    fleet.add_tdx_backend("10.1.0.10")
    fleet.add_tdx_backend("10.1.0.11")
    fleet.add_cca_backend("10.1.0.40")
    fleet.add_vtpm_backend("10.1.0.70")
    verdicts = fleet.attach_gateway(gateway)
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    return fleet


def extension_setup_for(deployment, fleet):
    family_goldens = {
        family: policy.golden_measurements
        for family, policy in fleet.family_policies().items()
    }

    def setup(extension):
        extension.verifier.contexts.update(fleet.contexts())
        extension.register_site(
            deployment.domain, family_measurements=family_goldens
        )

    return setup


def run_mixed_storm(build, seed=0, sessions=80, revoke_at=3.0):
    """Seeded open-loop storm over the mixed fleet with the tdx family
    revoked mid-storm; returns (gateway, workload snapshot)."""
    sigcache.reset_cache()
    ec.reset_point_cache()
    deployment, gateway, kernel = make_world(
        build, num_nodes=2, with_kernel=True, seed=seed
    )
    fleet = attach_hetero(deployment, gateway)
    pool = UserPool(
        deployment,
        kernel,
        size=16,
        expected_measurements=[build.expected_measurement],
        extension_setup=extension_setup_for(deployment, fleet),
    )
    workload = FleetWorkload(
        kernel, gateway, pool, rng=SimRng(seed), tier_weights=TIER_WEIGHTS
    )

    def revocation():
        yield sleep(revoke_at)
        revoke_family(gateway, "tdx")

    storm = kernel.spawn(
        workload.open_loop(sessions=sessions, arrival_rate=10.0),
        name="storm",
    )
    kernel.spawn(revocation(), name="revocation")
    kernel.run()
    assert storm.finished
    if storm.error is not None:
        raise storm.error
    return gateway, workload.snapshot()


class TestMixedAdmission:
    def test_every_family_admits_with_per_family_counters(self, sync_world):
        deployment, gateway, _ = sync_world
        attach_hetero(deployment, gateway)
        for family in ("sev-snp", "tdx", "arm-cca", "e-vtpm"):
            assert gateway.counters[f"admissions.{family}"] >= 1, family
            assert (
                gateway.counters[f"family.{family}.attestations_ok"] >= 1
            ), family

    def test_high_tier_routes_only_to_snp_and_vtpm(self, sync_world):
        deployment, gateway, _ = sync_world
        fleet = attach_hetero(deployment, gateway)
        setup = extension_setup_for(deployment, fleet)
        for index in range(6):
            browser, extension = deployment.make_user(
                name=f"high-user-{index}", ip_address=f"10.2.9.{index + 1}"
            )
            setup(extension)
            browser.session_tier = "high"
            browser.new_session()
            result = browser.navigate(f"https://{deployment.domain}/")
            assert not result.blocked, result.block_reason
        used = {
            gateway.backends[ip].family for ip in gateway._affinity.values()
        }
        assert used <= HIGH_TIER_FAMILIES, used
        assert gateway.counters["tier.high.sessions_opened"] >= 6

    def test_unknown_tier_falls_back_to_bulk(self, sync_world):
        deployment, gateway, _ = sync_world
        fleet = attach_hetero(deployment, gateway)
        browser, extension = deployment.make_user(
            name="odd-tier-user", ip_address="10.2.9.50"
        )
        extension_setup_for(deployment, fleet)(extension)
        browser.session_tier = "platinum"
        browser.new_session()
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked, result.block_reason
        assert gateway.counters["tier.bulk.sessions_opened"] >= 1


class TestMixedStorm:
    def test_mid_storm_family_revocation_costs_survivors_nothing(
        self, fleet_build
    ):
        gateway, snapshot = run_mixed_storm(fleet_build)
        assert snapshot.get("requests_failed", 0) == 0
        assert snapshot.get("requests_blocked", 0) == 0
        assert snapshot["requests_ok"] == snapshot["requests_total"]
        # Both tdx backends evicted under the family-scoped stable code.
        assert (
            snapshot["gateway.family.tdx.evictions.family_not_allowed"] == 2
        )
        for ip, backend in sorted(gateway.backends.items()):
            if backend.family == "tdx":
                assert backend.state == "evicted", ip
                assert backend.verdict_reason == "family_not_allowed", ip
            else:
                assert backend.state == "admitted", ip
        # A revoked family stays out: re-attestation fails closed.
        verdict = gateway.attest_and_admit("10.1.0.10")
        assert not verdict.ok
        assert verdict.reason == "family_not_allowed"
        # Tiered traffic actually flowed, with per-tier tails recorded.
        for tier in TIER_WEIGHTS:
            assert snapshot[f"gateway.tier.{tier}.sessions_opened"] > 0
            assert snapshot[f"latency.tier.{tier}.p99"] > 0

    def test_same_seed_storms_are_byte_identical(self, fleet_build):
        _, first = run_mixed_storm(fleet_build, seed=7, sessions=40)
        _, second = run_mixed_storm(fleet_build, seed=7, sessions=40)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
