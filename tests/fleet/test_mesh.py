"""The gateway mesh: hash routing, verdict gossip, lite fleet, region
rollouts (DESIGN.md invariant 14)."""

import pytest

from repro.core import RevelioDeployment
from repro.crypto import ec, sigcache
from repro.fleet import (
    ConsistentHashRing,
    GatewayMesh,
    GossipedVerdict,
    LiteFleet,
    MeshWorkload,
    region_rollout,
)
from repro.sim import EventKernel, SimRng
from repro.sim.kernel import sleep

REGIONS = ("east", "west")
LITE_FAMILIES = ("sev-snp", "tdx", "arm-cca", "e-vtpm")


def make_sync_mesh(build, num_nodes=4):
    """Kernel-less mesh (gossip applies synchronously) for unit tests."""
    deployment = RevelioDeployment(build, num_nodes=num_nodes).deploy()
    mesh = GatewayMesh.for_deployment(deployment, regions=REGIONS)
    verdicts = mesh.admit_all()
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    return deployment, mesh


def make_event_mesh(build, num_nodes=2, lite=4, seed=0):
    """Event-mode mesh with a mixed-family lite fleet attached."""
    deployment = RevelioDeployment(build, num_nodes=num_nodes).deploy()
    kernel = EventKernel(deployment.network.clock, SimRng(seed))
    deployment.network.enable_event_mode(kernel)
    deployment.latency.region_rtt[REGIONS] = 0.06
    mesh = GatewayMesh.for_deployment(deployment, kernel, regions=REGIONS)
    fleet = LiteFleet(deployment)
    for index in range(lite):
        fleet.add_backend(
            f"10.8.0.{index + 1}",
            LITE_FAMILIES[index % len(LITE_FAMILIES)],
            region=REGIONS[index % len(REGIONS)],
        )
    fleet.adopt_deployment_nodes()
    mesh.attach_lite_fleet(fleet)
    verdicts = mesh.admit_all()
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    kernel.run(until=kernel.clock.now + 1.0)  # let gossip land
    return deployment, mesh, fleet, kernel


def run_storm(mesh, kernel, sessions, arrival_rate=50.0, seed=1, rollout=None):
    workload = MeshWorkload(mesh, kernel, rng=SimRng(seed))
    storm = kernel.spawn(
        workload.open_loop(sessions, arrival_rate), name="storm"
    )
    rollout_process = None
    if rollout is not None:
        rollout_process = kernel.spawn(rollout, name="rollout")
    while not storm.finished or (
        rollout_process is not None and not rollout_process.finished
    ):
        kernel.run(until=kernel.clock.now + 10.0)
    kernel.run()
    if storm.error is not None:
        raise storm.error
    if rollout_process is not None and rollout_process.error is not None:
        raise rollout_process.error
    return workload, rollout_process


class TestConsistentHashRing:
    def test_lookup_deterministic_and_covers_all_nodes(self):
        ring = ConsistentHashRing()
        for node in ("a", "b", "c"):
            ring.add(node)
        keys = [b"key-%d" % index for index in range(500)]
        owners = [ring.node_for(key) for key in keys]
        assert owners == [ring.node_for(key) for key in keys]
        assert set(owners) == {"a", "b", "c"}

    def test_adding_a_node_moves_only_its_share(self):
        ring = ConsistentHashRing()
        for node in ("a", "b", "c"):
            ring.add(node)
        keys = [b"key-%d" % index for index in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add("d")
        moved = [key for key in keys if ring.node_for(key) != before[key]]
        # Every moved key lands on the new node, and only ~1/4 move.
        assert all(ring.node_for(key) == "d" for key in moved)
        assert 0 < len(moved) < 500

    def test_removing_a_node_restores_prior_owners(self):
        ring = ConsistentHashRing()
        for node in ("a", "b", "c"):
            ring.add(node)
        keys = [b"key-%d" % index for index in range(300)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add("d")
        ring.remove("d")
        assert {key: ring.node_for(key) for key in keys} == before

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ConsistentHashRing().node_for(b"key")

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)


class TestVerdictGossip:
    def test_one_probe_per_backend_admits_fleet_wide(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        backends = [d.host.ip_address for d in deployment.nodes]
        probes = sum(
            gateway.counters.get("attestations_ok", 0)
            for gateway in mesh.gateways.values()
        )
        assert probes == len(backends)  # one home probe each, no dupes
        for gateway in mesh.gateways.values():
            for ip_address in backends:
                assert gateway.backends[ip_address].state == "admitted"
        remote_admissions = sum(
            gateway.counters.get("gossip.admissions", 0)
            for gateway in mesh.gateways.values()
        )
        assert remote_admissions == len(backends) * (len(mesh.gateways) - 1)

    def _peer_and_backend(self, deployment, mesh):
        ip_address = deployment.nodes[0].host.ip_address
        home = mesh.home_gateway(ip_address)
        peer = next(
            gateway for gateway in mesh.gateways.values() if gateway is not home
        )
        return peer, ip_address

    def test_stale_gossip_never_honored(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer, ip_address = self._peer_and_backend(deployment, mesh)
        clock = deployment.network.clock
        clock.advance(500.0)
        record = GossipedVerdict(
            ip_address, "sev-snp", True, "", clock.now - mesh.max_staleness - 1
        )
        assert not peer.accept_gossip(record, mesh.max_staleness)
        assert peer.counters["gossip.rejected.stale"] == 1

    def test_future_dated_gossip_rejected(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer, ip_address = self._peer_and_backend(deployment, mesh)
        record = GossipedVerdict(
            ip_address, "sev-snp", True, "", deployment.network.clock.now + 10.0
        )
        assert not peer.accept_gossip(record, mesh.max_staleness)
        assert peer.counters["gossip.rejected.stale"] == 1

    def test_family_mismatch_rejected(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer, ip_address = self._peer_and_backend(deployment, mesh)
        deployment.network.clock.advance(1.0)
        record = GossipedVerdict(
            ip_address, "tdx", True, "", deployment.network.clock.now
        )
        assert not peer.accept_gossip(record, mesh.max_staleness)
        assert peer.counters["gossip.rejected.family_mismatch"] == 1

    def test_unknown_backend_rejected(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer = mesh.gateways[sorted(mesh.gateways)[0]]
        record = GossipedVerdict(
            "10.99.99.99", "sev-snp", True, "", deployment.network.clock.now
        )
        assert not peer.accept_gossip(record, mesh.max_staleness)
        assert peer.counters["gossip.rejected.unknown_backend"] == 1

    def test_gossip_never_overrides_local_family_policy(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer, ip_address = self._peer_and_backend(deployment, mesh)
        peer.revoke_family("sev-snp")
        deployment.network.clock.advance(1.0)
        record = GossipedVerdict(
            ip_address, "sev-snp", True, "", deployment.network.clock.now
        )
        assert not peer.accept_gossip(record, mesh.max_staleness)
        assert peer.counters["gossip.rejected.family_not_allowed"] == 1
        assert not peer.backends[ip_address].active()

    def test_older_verdict_rejected(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer, ip_address = self._peer_and_backend(deployment, mesh)
        held = peer.backends[ip_address].verdict_time
        record = GossipedVerdict(ip_address, "sev-snp", True, "", held)
        assert not peer.accept_gossip(record, mesh.max_staleness)
        assert peer.counters["gossip.rejected.older"] == 1

    def test_failing_gossip_evicts_active_backend(self, fleet_build):
        deployment, mesh = make_sync_mesh(fleet_build)
        peer, ip_address = self._peer_and_backend(deployment, mesh)
        deployment.network.clock.advance(1.0)
        record = GossipedVerdict(
            ip_address, "sev-snp", False, "tcb_too_old",
            deployment.network.clock.now,
        )
        assert peer.accept_gossip(record, mesh.max_staleness)
        backend = peer.backends[ip_address]
        assert not backend.active()
        assert peer.counters["evictions.tcb_too_old"] == 1

    def test_failing_reattestation_propagates_mesh_wide(self, fleet_build):
        """The home gateway's failing verdict evicts on every shard,
        even shards that still allow the family."""
        deployment, mesh = make_sync_mesh(fleet_build)
        ip_address = deployment.nodes[0].host.ip_address
        home = mesh.home_gateway(ip_address)
        deployment.network.clock.advance(1.0)
        home.revoke_family("sev-snp")  # this shard's policy only
        verdict = home.attest_and_admit(ip_address)
        assert not verdict.ok
        mesh.flush_gossip()
        for gateway in mesh.gateways.values():
            assert not gateway.backends[ip_address].active()


class TestMeshStorm:
    def test_lite_storm_completes_without_failures(self, fleet_build):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        workload, _ = run_storm(mesh, kernel, sessions=150)
        assert workload.sessions_completed == 150
        assert workload.sessions_failed == 0
        snapshot = workload.snapshot()
        assert snapshot.get("requests_failed", 0) == 0
        assert snapshot["requests_ok"] == 150 * 3  # hello + 2 records
        # Sessions closed their affinity on completion (bounded memory).
        for name, gateway in mesh.gateways.items():
            assert gateway.counters_snapshot()["sessions_active"] == 0
        # Both lite and deployment backends served traffic.
        assert sum(b.sessions_opened for b in fleet.backends) > 0

    def test_sessions_spread_across_gateways(self, fleet_build):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        workload, _ = run_storm(mesh, kernel, sessions=150)
        opened = {
            name: gateway.counters.get("sessions_opened", 0)
            for name, gateway in mesh.gateways.items()
        }
        assert sum(opened.values()) == 150
        assert all(count > 0 for count in opened.values()), opened

    def test_same_seed_identical_snapshot(self, fleet_build):
        def one_run():
            # Warm global crypto caches shift admission timing by ulps;
            # determinism is per fresh process, so reset them.
            sigcache.reset_cache()
            ec.reset_point_cache()
            deployment, mesh, fleet, kernel = make_event_mesh(
                fleet_build, seed=7
            )
            workload, _ = run_storm(mesh, kernel, sessions=80, seed=7)
            return workload.snapshot()

        assert one_run() == one_run()


class TestRegionRollout:
    def test_hierarchical_rollout_under_storm(self, fleet_build, fleet_build_v2):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        old = bytes(fleet_build.expected_measurement)
        new = bytes(fleet_build_v2.expected_measurement)

        def delayed_rollout():
            yield sleep(2.0)
            report = yield from region_rollout(
                mesh, deployment, fleet_build_v2, drain_poll=0.05,
                lite_fleet=fleet,
            )
            return report

        workload, rollout_process = run_storm(
            mesh, kernel, sessions=200, arrival_rate=25.0,
            rollout=delayed_rollout(),
        )
        assert workload.sessions_completed == 200
        assert workload.sessions_failed == 0
        assert workload.snapshot().get("requests_failed", 0) == 0

        report = rollout_process.value
        # One region at a time, in sorted order, every node replaced.
        assert [entry["region"] for entry in report.regions] == sorted(REGIONS)
        replaced = [
            replacement["ip_address"]
            for entry in report.regions
            for replacement in entry["replacements"]
        ]
        assert sorted(replaced) == sorted(
            d.host.ip_address for d in deployment.nodes
        )
        assert deployment.build is fleet_build_v2
        for gateway in mesh.gateways.values():
            assert gateway.golden_measurements == [new]
            assert old in gateway.revoked_measurements
            for ip_address in replaced:
                assert gateway.backends[ip_address].state == "admitted"

    def test_post_rollout_sessions_still_served(self, fleet_build, fleet_build_v2):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)

        def rollout():
            report = yield from region_rollout(
                mesh, deployment, fleet_build_v2, drain_poll=0.05,
                lite_fleet=fleet,
            )
            return report

        process = kernel.spawn(rollout(), name="rollout")
        while not process.finished:
            kernel.run(until=kernel.clock.now + 10.0)
        if process.error is not None:
            raise process.error
        # Replacement nodes answer lite sessions again (the lite wrapper
        # was re-installed over the fresh TLS handler).
        workload, _ = run_storm(mesh, kernel, sessions=60)
        assert workload.sessions_completed == 60
        assert workload.sessions_failed == 0
