"""Gateway admission, routing policies, affinity, and counters."""

import pytest

from repro.core.deployment import MINIMAL_PAGE
from repro.fleet import FleetGateway, GatewayError
from repro.fleet.gateway import BackendState
from tests.fleet.conftest import make_world


def fresh_browser(deployment, name, ip):
    browser, _ = deployment.make_user(name=name, ip_address=ip)
    return browser


class TestAdmission:
    def test_admit_all_admits_the_whole_fleet(self, sync_world):
        deployment, gateway, _ = sync_world
        assert len(gateway.backends) == 3
        for backend in gateway.backends.values():
            assert backend.state == "admitted"
            assert backend.verdict_ok
        assert gateway.counters["attestations_ok"] == 3

    def test_backend_with_unknown_measurement_is_rejected(self, fleet_build):
        deployment, gateway, _ = make_world(fleet_build, num_nodes=2)
        # A gateway that expects a different golden refuses everyone.
        strict = FleetGateway(
            network=deployment.network,
            ip_address="10.9.0.2",
            domain=deployment.domain,
            kds=deployment._new_kds_client(),
            trust_anchors=[deployment.web_pki.trust_anchor],
            golden_measurements=[b"\x00" * 48],
            rng=deployment.rng.fork(b"strict-gw"),
            name="strict-gateway",
        )
        for deployed in deployment.nodes:
            strict.add_backend(deployed.host.ip_address)
        verdicts = strict.admit_all()
        assert all(not v.ok for v in verdicts)
        assert {v.reason for v in verdicts} == {"measurement_mismatch"}
        assert all(b.state == "rejected" for b in strict.backends.values())
        with pytest.raises(GatewayError, match="no_healthy_backend"):
            strict._route_new_session(b"")

    def test_unknown_backend_raises(self, sync_world):
        _, gateway, _ = sync_world
        with pytest.raises(GatewayError, match="unknown_backend"):
            gateway.attest_and_admit("10.0.0.99")

    def test_unknown_balancer_refused(self, sync_world):
        deployment, _, _ = sync_world
        with pytest.raises(ValueError, match="unknown balancer"):
            FleetGateway.for_deployment(
                deployment, ip_address="10.9.0.3", balancer="random",
                register_dns=False,
            )


class TestVerdictFreshness:
    def test_stale_verdict_stops_new_sessions(self, fleet_build):
        deployment, gateway, _ = make_world(fleet_build, verdict_ttl=10.0)
        browser = fresh_browser(deployment, "alice", "10.2.9.1")
        assert browser.navigate(f"https://{deployment.domain}/").response.body == MINIMAL_PAGE

        deployment.network.clock.advance(11.0)  # every verdict now stale
        browser.new_session()
        # The extension's attested fetch finds no admittable backend and
        # blocks the page (report_unavailable).
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert gateway.counters["routing_failed.no_healthy_backend"] >= 1

        # Re-attestation refreshes the verdicts and service resumes.
        for ip in sorted(gateway.backends):
            assert gateway.attest_and_admit(ip).ok
        browser.new_session()
        assert browser.navigate(f"https://{deployment.domain}/").response.body == MINIMAL_PAGE


class TestBalancers:
    def test_round_robin_spreads_sessions(self, sync_world):
        deployment, gateway, _ = sync_world
        for index in range(6):
            browser = fresh_browser(deployment, f"rr-{index}", f"10.2.8.{index + 1}")
            browser.navigate(f"https://{deployment.domain}/")
        counts = [b.requests_forwarded for b in gateway.backends.values()]
        # 6 first visits over 3 backends: an even 2-2-2 split of sessions
        # (each visit = handshake + well-known + page on one backend).
        assert all(count == counts[0] for count in counts)

    def test_least_outstanding_prefers_idle_backends(self):
        gateway = object.__new__(FleetGateway)  # policy logic only
        gateway.balancer = "least_outstanding"

        class FakeServer:
            def __init__(self, outstanding):
                self.outstanding = outstanding

        busy = BackendState("10.0.0.1", server=FakeServer(5))
        idle = BackendState("10.0.0.2", server=FakeServer(0))
        mid = BackendState("10.0.0.3", server=FakeServer(2))
        order = gateway._preference_order([busy, idle, mid])
        assert [b.ip_address for b in order] == ["10.0.0.2", "10.0.0.3", "10.0.0.1"]

    def test_weighted_latency_prefers_fast_then_unsampled(self):
        gateway = object.__new__(FleetGateway)
        gateway.balancer = "weighted_latency"
        fast = BackendState("10.0.0.1", ewma_latency=0.010)
        slow = BackendState("10.0.0.2", ewma_latency=0.200)
        unsampled = BackendState("10.0.0.3")
        order = gateway._preference_order([fast, slow, unsampled])
        assert [b.ip_address for b in order] == ["10.0.0.3", "10.0.0.1", "10.0.0.2"]


class TestAffinityAndSevering:
    def test_records_follow_their_session_backend(self, sync_world):
        deployment, gateway, _ = sync_world
        browser = fresh_browser(deployment, "bob", "10.2.9.2")
        browser.navigate(f"https://{deployment.domain}/")
        assert len(gateway._affinity) == 1
        (backend_ip,) = set(gateway._affinity.values())
        before = gateway.backends[backend_ip].requests_forwarded
        browser.navigate(f"https://{deployment.domain}/")  # cached revisit
        assert gateway.backends[backend_ip].requests_forwarded > before

    def test_eviction_severs_sessions_and_clients_rehandshake(self, sync_world):
        deployment, gateway, _ = sync_world
        browser = fresh_browser(deployment, "carol", "10.2.9.3")
        browser.navigate(f"https://{deployment.domain}/")
        (victim_ip,) = set(gateway._affinity.values())

        gateway.evict(victim_ip, "backend_unreachable", "test")
        assert gateway._affinity == {}
        assert gateway.counters["sessions_severed"] == 1

        # The revisit's first record bounces (session_severed), the
        # client transparently re-handshakes onto a healthy peer — the
        # shared fleet TLS key keeps its pin valid — and succeeds.
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.response.body == MINIMAL_PAGE
        assert not result.blocked
        assert gateway.counters["records_severed"] >= 1
        (new_ip,) = set(gateway._affinity.values())
        assert new_ip != victim_ip


class TestCounters:
    def test_snapshot_is_sorted_and_tracks_retirement_guard(self, sync_world):
        _, gateway, _ = sync_world
        snapshot = gateway.counters_snapshot()
        assert list(snapshot) == sorted(snapshot)
        for ip in gateway.backends:
            assert snapshot[f"backend.{ip}.requests_after_retired"] == 0

    def test_malformed_payload_is_rejected(self, sync_world):
        _, gateway, _ = sync_world
        with pytest.raises(GatewayError, match="malformed_request"):
            gateway._handle(b"\xffgarbage", None)
        assert gateway.counters["requests_malformed"] == 1
