"""Fleet fixtures: gateway-fronted deployments, with and without the
event kernel."""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.fleet import FleetGateway
from repro.sim import EventKernel, SimRng
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def fleet_build(registry_and_pins):
    registry, pins = registry_and_pins
    return build_revelio_image(make_spec(registry, pins))


@pytest.fixture(scope="module")
def fleet_build_v2(registry_and_pins):
    """Same service, bumped version: a different measurement."""
    registry, pins = registry_and_pins
    return build_revelio_image(make_spec(registry, pins, version="2.0.0"))


def make_world(build, num_nodes=3, with_kernel=False, seed=0, **gateway_kwargs):
    """A provisioned fleet fronted by an admitted gateway.

    Returns (deployment, gateway, kernel); kernel is None in
    synchronous mode.
    """
    deployment = RevelioDeployment(build, num_nodes=num_nodes).deploy()
    kernel = None
    if with_kernel:
        kernel = EventKernel(deployment.network.clock, SimRng(seed))
        deployment.network.enable_event_mode(kernel)
    gateway = FleetGateway.for_deployment(deployment, kernel=kernel, **gateway_kwargs)
    verdicts = gateway.admit_all()
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    return deployment, gateway, kernel


@pytest.fixture
def sync_world(fleet_build):
    """Synchronous-mode world (no kernel) for routing/admission tests."""
    return make_world(fleet_build)


@pytest.fixture
def event_world(fleet_build):
    """Event-mode world for workload/drain/rollout tests."""
    return make_world(fleet_build, with_kernel=True)
