"""The fleet provisioner: signed delta updates rolled region-serially
across a gateway mesh with a mixed-family lite fleet, under live
traffic, without a single request reaching a non-re-attested node."""

import pytest

from repro.attest import reset_tracer
from repro.attest.trace import get_tracer
from repro.build import ChannelError, build_revelio_image
from repro.core.rollout import RolloutError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.fleet import FleetProvisioner, MeshWorkload, ProvisionReport
from repro.sim import SimRng, sleep
from tests.conftest import make_spec
from tests.fleet.test_mesh import REGIONS, make_event_mesh, run_storm


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


def make_provisioner(deployment, mesh, fleet, seed=b"provision-tests"):
    key = PrivateKey.generate_ecdsa(HmacDrbg(seed), "P-256")
    return FleetProvisioner(mesh, deployment, key, lite_fleet=fleet)


def run_post_storm(mesh, kernel, sessions, seed=3):
    """A second storm in the same world: distinct client IPs."""
    workload = MeshWorkload(
        mesh, kernel, rng=SimRng(seed), client_ip_prefix="10.4"
    )
    storm = kernel.spawn(
        workload.open_loop(sessions, arrival_rate=50.0), name="post-storm"
    )
    while not storm.finished:
        kernel.run(until=kernel.clock.now + 10.0)
    kernel.run()
    if storm.error is not None:
        raise storm.error
    return workload


def run_provision(kernel, provisioner, target_build, **kwargs):
    process = kernel.spawn(
        provisioner.provision(target_build, **kwargs), name="provision"
    )
    while not process.finished:
        kernel.run(until=kernel.clock.now + 10.0)
    kernel.run()
    if process.error is not None:
        raise process.error
    return process.value


class TestProvisionUnderStorm:
    def test_full_pipeline_with_live_traffic(
        self, fleet_build, fleet_build_v2
    ):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        provisioner = make_provisioner(deployment, mesh, fleet)
        old = bytes(fleet_build.expected_measurement)
        new = bytes(fleet_build_v2.expected_measurement)

        def delayed_provision():
            yield sleep(2.0)
            report = yield from provisioner.provision(fleet_build_v2)
            return report

        workload, process = run_storm(
            mesh, kernel, sessions=200, arrival_rate=25.0,
            rollout=delayed_provision(),
        )
        assert workload.sessions_completed == 200
        assert workload.sessions_failed == 0
        assert workload.snapshot().get("requests_failed", 0) == 0

        report = process.value
        deployment_ips = {d.host.ip_address for d in deployment.nodes}
        fleet_size = len(deployment.nodes) + sum(
            1 for b in fleet.backends if b.ip_address not in deployment_ips
        )
        assert report.phase_counters() == {
            "discovered": fleet_size,
            "delivered": fleet_size,
            "verified": fleet_size,
            "applied": fleet_size,
            # Every node shares the same (delta, base) pair: one real
            # patch + re-root, the rest served from the apply cache.
            "apply_cache_hits": fleet_size - 1,
            "reattested": fleet_size,
            "admitted": fleet_size,
        }
        assert report.requests_to_unattested == 0
        assert report.epoch == 1
        assert 0 < report.delta_ratio <= 0.25
        assert [entry["region"] for entry in report.regions] == sorted(REGIONS)

        # The whole world moved: deployment build swapped, the old
        # measurement revoked everywhere, every backend re-admitted.
        assert deployment.build is fleet_build_v2
        for gateway in mesh.gateways.values():
            assert new in gateway.golden_measurements
            assert old not in gateway.golden_measurements
            assert old in gateway.revoked_measurements
            for backend in gateway.backends.values():
                assert backend.state == "admitted"

        # And the moved fleet still serves.
        post = run_post_storm(mesh, kernel, sessions=60)
        assert post.sessions_completed == 60
        assert post.sessions_failed == 0

    def test_rejected_update_leaves_fleet_serving_old_build(
        self, fleet_build, fleet_build_v2
    ):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        provisioner = make_provisioner(deployment, mesh, fleet)
        old = bytes(fleet_build.expected_measurement)

        # A tampered blob store: every delivered blob has one bit
        # flipped, so the first node's digest check must fail closed.
        genuine_blob = provisioner.channel.blob

        def corrupted_blob(digest):
            blob = bytearray(genuine_blob(digest))
            blob[0] ^= 0x01
            return bytes(blob)

        provisioner.channel.blob = corrupted_blob

        with pytest.raises(ChannelError) as info:
            run_provision(kernel, provisioner, fleet_build_v2)
        assert info.value.code == "delta_corrupt"
        assert get_tracer().update.rejections["delta_corrupt"] == 1

        # Nothing moved: old build, old goldens, no retired backend.
        assert deployment.build is fleet_build
        for gateway in mesh.gateways.values():
            assert old in gateway.golden_measurements
            assert old not in gateway.revoked_measurements
        workload, _ = run_storm(mesh, kernel, sessions=60)
        assert workload.sessions_completed == 60
        assert workload.sessions_failed == 0

    def test_identical_target_is_refused(self, fleet_build):
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        provisioner = make_provisioner(deployment, mesh, fleet)
        with pytest.raises(RolloutError, match="identical measurement"):
            run_provision(kernel, provisioner, fleet_build)


class TestSuccessiveRuns:
    def test_epochs_stay_monotonic_across_provisions(
        self, registry_and_pins, fleet_build, fleet_build_v2
    ):
        registry, pins = registry_and_pins
        fleet_build_v3 = build_revelio_image(
            make_spec(registry, pins, version="3.0.0")
        )
        deployment, mesh, fleet, kernel = make_event_mesh(fleet_build)
        provisioner = make_provisioner(deployment, mesh, fleet)

        first = run_provision(kernel, provisioner, fleet_build_v2)
        second = run_provision(
            kernel, provisioner, fleet_build_v3,
            report=ProvisionReport(),
        )
        assert (first.epoch, second.epoch) == (1, 2)
        assert second.requests_to_unattested == 0
        assert deployment.build is fleet_build_v3
        # The whole epoch-1 world is now revoked.
        v2 = bytes(fleet_build_v2.expected_measurement)
        for gateway in mesh.gateways.values():
            assert v2 in gateway.revoked_measurements
        workload, _ = run_storm(mesh, kernel, sessions=60)
        assert workload.sessions_completed == 60
        assert workload.sessions_failed == 0
