"""Connection draining and the zero-downtime rolling rollout under load."""

import pytest

from repro.core.rollout import RolloutError
from repro.fleet import FleetWorkload, UserPool, drain_backend, rolling_rollout
from repro.sim.kernel import run_until_complete, sleep
from tests.fleet.conftest import make_world


class TestDrain:
    def test_idle_backend_drains_immediately(self, event_world):
        _, gateway, kernel = event_world
        ip = sorted(gateway.backends)[0]
        rounds = run_until_complete(kernel, drain_backend(gateway, ip))
        assert rounds == 0
        assert gateway.backends[ip].state == "retired"
        assert gateway.counters["drains_started"] == 1
        assert gateway.counters["retirements"] == 1

    def test_drain_waits_for_outstanding_work(self, event_world):
        _, gateway, kernel = event_world
        ip = sorted(gateway.backends)[0]
        backend = gateway.backends[ip]

        def busy_job():
            yield from backend.server.process(1.0)

        kernel.spawn(busy_job(), name="busy")

        def drain():
            rounds = yield from drain_backend(gateway, ip, poll_interval=0.25)
            return rounds

        rounds = run_until_complete(kernel, drain())
        assert rounds >= 1  # had to poll while the job was in flight
        assert backend.state == "retired"
        assert kernel.clock.now >= 1.0  # retired only after the job finished

    def test_draining_backend_takes_no_new_sessions(self, event_world):
        deployment, gateway, kernel = event_world
        draining_ip = sorted(gateway.backends)[0]
        gateway.mark_draining(draining_ip)
        before = gateway.backends[draining_ip].requests_forwarded
        for index in range(4):
            browser, _ = deployment.make_user(
                name=f"drain-user-{index}", ip_address=f"10.2.6.{index + 1}"
            )
            result = browser.navigate(f"https://{deployment.domain}/")
            assert not result.blocked
        assert gateway.backends[draining_ip].requests_forwarded == before


class TestRollingRollout:
    def test_rollout_replaces_fleet_and_revokes_old_measurement(
        self, fleet_build, fleet_build_v2
    ):
        deployment, gateway, kernel = make_world(fleet_build, with_kernel=True)
        old_m = bytes(fleet_build.expected_measurement)
        new_m = bytes(fleet_build_v2.expected_measurement)

        report = run_until_complete(
            kernel, rolling_rollout(gateway, deployment, fleet_build_v2)
        )

        assert len(report.replacements) == 3
        assert report.new_measurement == new_m.hex()
        assert report.sim_seconds > 0
        for deployed in deployment.nodes:
            assert deployed.vm.name.endswith("-v2.0.0")
            assert deployed.node.serving
        assert deployment.build is fleet_build_v2
        assert gateway.golden_measurements == [new_m]
        assert old_m in gateway.revoked_measurements
        assert old_m not in deployment.sp.expected_measurements
        assert new_m in deployment.sp.expected_measurements
        for backend in gateway.backends.values():
            assert backend.state == "admitted"
            assert backend.requests_after_retired == 0

    def test_identical_measurement_is_refused(self, event_world, fleet_build):
        deployment, gateway, kernel = event_world

        def driver():
            yield from rolling_rollout(gateway, deployment, fleet_build)

        with pytest.raises(RolloutError, match="identical measurement"):
            run_until_complete(kernel, driver())

    def test_rollout_under_load_loses_zero_requests(
        self, fleet_build, fleet_build_v2
    ):
        """The acceptance scenario at test scale: a closed-loop storm
        rides through a full fleet replacement with zero failed and zero
        blocked requests, and no request ever reaches a retired backend."""
        deployment, gateway, kernel = make_world(fleet_build, with_kernel=True)
        pool = UserPool(
            deployment,
            kernel,
            size=6,
            expected_measurements=[
                fleet_build.expected_measurement,
                fleet_build_v2.expected_measurement,
            ],
        )
        workload = FleetWorkload(
            kernel, gateway, pool, think_time_mean=0.5, revisits_per_session=2
        )
        storm = kernel.spawn(
            workload.closed_loop(sessions=12, workers=4), name="storm"
        )

        def delayed_rollout():
            yield sleep(1.0)
            report = yield from rolling_rollout(
                gateway, deployment, fleet_build_v2
            )
            return report

        rollout = kernel.spawn(delayed_rollout(), name="rollout")
        kernel.run()
        assert storm.finished and storm.error is None
        assert rollout.finished and rollout.error is None

        snapshot = workload.snapshot()
        assert snapshot["requests_total"] == 12 * 3
        assert snapshot["requests_ok"] == snapshot["requests_total"]
        assert snapshot.get("requests_failed", 0) == 0
        assert snapshot.get("requests_blocked", 0) == 0
        for backend in gateway.backends.values():
            assert backend.requests_after_retired == 0
        assert len(rollout.value.replacements) == 3
        assert workload.sessions_completed == 12
