"""The determinism gate: no ambient randomness or wall-clock in the
simulation packages, and same-seed benchmark runs are byte-identical."""

import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SIM_PACKAGES = (REPO / "src" / "repro" / "sim", REPO / "src" / "repro" / "fleet")

#: Bare module-level RNG (``random.random()`` etc.) — everything must
#: flow from a seeded :class:`repro.sim.SimRng`.  ``from random import
#: Random`` (which SimRng subclasses) is fine.
BARE_RANDOM = re.compile(r"(^|[^.\w])random\.[a-z]")
#: Wall-clock reads — virtual time comes from the SimClock only.
WALL_CLOCK = re.compile(r"time\.(time|perf_counter|monotonic)\s*\(")


class TestSourceScan:
    def _violations(self, pattern):
        found = []
        for package in SIM_PACKAGES:
            for path in sorted(package.rglob("*.py")):
                for number, line in enumerate(
                    path.read_text().splitlines(), start=1
                ):
                    if pattern.search(line):
                        found.append(f"{path.relative_to(REPO)}:{number}: {line.strip()}")
        return found

    def test_no_bare_random_module_usage(self):
        assert self._violations(BARE_RANDOM) == []

    def test_no_wall_clock_reads(self):
        assert self._violations(WALL_CLOCK) == []


class TestByteIdenticalRuns:
    def test_same_seed_bench_runs_are_byte_identical(self, tmp_path):
        """Two reduced-scale ``bench_fleet.py --seed 42`` runs must dump
        byte-for-byte identical JSON — even under different
        PYTHONHASHSEED values (SimRng normalizes seeds via sha256, so
        nothing depends on the interpreter's hash randomization)."""
        outputs = []
        for run, hash_seed in (("a", "1"), ("b", "2")):
            output = tmp_path / f"bench-{run}.json"
            subprocess.run(
                [
                    sys.executable,
                    str(REPO / "benchmarks" / "bench_fleet.py"),
                    "--seed", "42",
                    "--sessions", "40",
                    "--backends", "3",
                    "--users", "12",
                    "--arrival-rate", "8",
                    "--ablation-sessions", "20",
                    "--rollout-at", "3",
                    "--hetero-sessions", "30",
                    "--hetero-per-family", "1",
                    "--revoke-at", "2",
                    "--mesh-sessions", "200",
                    "--mesh-backends", "6",
                    "--mesh-snp-nodes", "2",
                    "--mesh-regions", "2",
                    "--mesh-arrival-rate", "50",
                    "--output", str(output),
                ],
                check=True,
                capture_output=True,
                env={
                    **os.environ,
                    "PYTHONPATH": str(REPO / "src"),
                    "PYTHONHASHSEED": hash_seed,
                },
            )
            outputs.append(output.read_bytes())
        assert outputs[0] == outputs[1]

    def test_different_seeds_differ(self, tmp_path):
        """The seed actually reaches the traffic generators."""
        dumps = []
        for seed in ("42", "43"):
            output = tmp_path / f"bench-seed-{seed}.json"
            subprocess.run(
                [
                    sys.executable,
                    str(REPO / "benchmarks" / "bench_fleet.py"),
                    "--phases", "ABC",
                    "--seed", seed,
                    "--sessions", "20",
                    "--backends", "3",
                    "--users", "8",
                    "--arrival-rate", "8",
                    "--ablation-sessions", "10",
                    "--rollout-at", "2",
                    "--hetero-sessions", "20",
                    "--hetero-per-family", "1",
                    "--revoke-at", "2",
                    "--output", str(output),
                ],
                check=True,
                capture_output=True,
                env={**os.environ, "PYTHONPATH": str(REPO / "src")},
            )
            dumps.append(output.read_bytes())
        assert dumps[0] != dumps[1]
