"""The health monitor: liveness probes, thresholds, re-attestation."""

from repro.fleet import HealthMonitor, blackhole_kds, kill_backend
from repro.sim.kernel import run_until_complete, sleep


def run_probe_rounds(kernel, monitor, rounds):
    def driver():
        for _ in range(rounds):
            yield sleep(monitor.interval)
            monitor.probe_all()

    run_until_complete(kernel, driver())


class TestProbes:
    def test_healthy_fleet_probes_clean(self, event_world):
        _, gateway, kernel = event_world
        monitor = HealthMonitor(gateway, interval=5.0, reattest_every=1e9)
        run_probe_rounds(kernel, monitor, 3)
        assert monitor.probes_ok == 9  # 3 rounds x 3 backends
        assert monitor.probes_failed == 0
        assert all(b.state == "admitted" for b in gateway.backends.values())

    def test_dead_backend_evicted_at_failure_threshold(self, event_world):
        _, gateway, kernel = event_world
        monitor = HealthMonitor(
            gateway, interval=5.0, failure_threshold=2, reattest_every=1e9
        )
        dead_ip = sorted(gateway.backends)[0]
        kill_backend(gateway, dead_ip)

        run_probe_rounds(kernel, monitor, 1)
        assert gateway.backends[dead_ip].state == "admitted"  # one strike
        run_probe_rounds(kernel, monitor, 1)
        assert gateway.backends[dead_ip].state == "evicted"
        assert gateway.backends[dead_ip].verdict_reason == "backend_unreachable"
        assert gateway.counters["evictions.backend_unreachable"] == 1

    def test_slow_probe_counts_as_health_timeout(self, event_world):
        _, gateway, kernel = event_world
        # Any real probe (handshake + fetch) takes longer than 1 ms.
        monitor = HealthMonitor(
            gateway, interval=5.0, timeout=0.001, failure_threshold=1,
            reattest_every=1e9,
        )
        run_probe_rounds(kernel, monitor, 1)
        assert all(b.state == "evicted" for b in gateway.backends.values())
        assert gateway.counters["evictions.health_timeout"] == 3

    def test_probe_loop_process_stops_on_interrupt(self, event_world):
        _, gateway, kernel = event_world
        monitor = HealthMonitor(gateway, interval=2.0, reattest_every=1e9)
        process = kernel.spawn(monitor.process(), name="health")
        kernel.run(until=kernel.clock.now + 7.0)
        assert monitor.probes_ok == 9  # probes at +2, +4, +6
        process.interrupt("test over")
        kernel.run()
        assert process.finished and process.error is None


class TestReattestation:
    def test_stale_verdicts_are_refreshed_by_the_monitor(self, event_world):
        _, gateway, kernel = event_world
        monitor = HealthMonitor(gateway, interval=5.0, reattest_every=0.0)
        before = {
            ip: gateway.backends[ip].verdict_time for ip in gateway.backends
        }
        run_probe_rounds(kernel, monitor, 1)
        assert monitor.reattestations == 3
        for ip, old_time in before.items():
            assert gateway.backends[ip].verdict_time > old_time
            assert gateway.backends[ip].state == "admitted"

    def test_blackholed_kds_during_reattestation_evicts(self, event_world):
        """DESIGN.md invariant 11: if freshness cannot be confirmed the
        backend stops serving — kds_unreachable, via the health loop."""
        _, gateway, kernel = event_world
        monitor = HealthMonitor(gateway, interval=5.0, reattest_every=0.0)
        blackhole_kds(gateway, clear_cache=True)
        run_probe_rounds(kernel, monitor, 1)
        assert all(b.state == "evicted" for b in gateway.backends.values())
        assert gateway.counters["evictions.kds_unreachable"] == 3
