"""ARM CCA substrate tests + the tee-layer integration."""

import hashlib

import pytest

from repro.cca import (
    ArmInfrastructure,
    CcaError,
    CcaToken,
    verify_cca_token,
)
from repro.crypto.drbg import HmacDrbg
from repro.tee import KIND_CCA, TeeError, TeeVerifier, cca_evidence

CHALLENGE = b"\x13" * 64


@pytest.fixture(scope="module")
def arm():
    return ArmInfrastructure(HmacDrbg(b"cca-tests"))


@pytest.fixture(scope="module")
def platform(arm):
    return arm.provision_platform("cca-host-1")


@pytest.fixture(scope="module")
def cpak(arm, platform):
    return arm.cpak_certificate(platform)


@pytest.fixture
def realm(platform):
    return platform.launch_realm(b"revelio-realm-image")


class TestRealmLifecycle:
    def test_rim_deterministic_and_portable(self, arm):
        a = arm.provision_platform("h-a").launch_realm(b"image").rim
        b = arm.provision_platform("h-b").launch_realm(b"image").rim
        assert a == b
        assert arm.provision_platform("h-c").launch_realm(b"other").rim != a

    def test_rem_extension(self, realm):
        digest = hashlib.sha384(b"event").digest()
        zero = realm.rem(0)
        realm.extend_rem(0, digest)
        assert realm.rem(0) == hashlib.sha384(zero + digest).digest()

    def test_rem_validation(self, realm):
        with pytest.raises(CcaError):
            realm.extend_rem(4, b"\x00" * 48)
        with pytest.raises(CcaError):
            realm.extend_rem(0, b"short")

    def test_raks_unique_per_realm(self, platform):
        first = platform.launch_realm(b"image")
        second = platform.launch_realm(b"image")
        assert first.rak.d != second.rak.d

    def test_sealing_bound_to_rim(self, platform):
        good = platform.launch_realm(b"image")
        same = platform.launch_realm(b"image")
        evil = platform.launch_realm(b"tampered")
        assert good.derive_sealing_key() == same.derive_sealing_key()
        assert good.derive_sealing_key() != evil.derive_sealing_key()


class TestTokens:
    def test_token_verifies(self, arm, cpak, realm):
        token = realm.attest(CHALLENGE)
        verify_cca_token(
            token, cpak, [arm.root.certificate], now=0,
            expected_rim=realm.rim, expected_challenge=CHALLENGE,
        )

    def test_token_codec(self, realm):
        token = realm.attest(CHALLENGE)
        assert CcaToken.decode(token.encode()) == token

    def test_bad_challenge_size(self, realm):
        with pytest.raises(CcaError):
            realm.attest(b"short")

    def test_tampered_rim_rejected(self, arm, cpak, realm):
        from dataclasses import replace

        token = realm.attest(CHALLENGE)
        forged = replace(
            token,
            realm_token=replace(token.realm_token, rim=b"\xff" * 48),
        )
        with pytest.raises(CcaError, match="signature"):
            verify_cca_token(forged, cpak, [arm.root.certificate], now=0)

    def test_swapped_rak_rejected(self, arm, cpak, platform, realm):
        # An attacker realm presents its own realm token with a genuine
        # platform token of another realm: the RAK hash binding fails.
        from dataclasses import replace

        victim_token = realm.attest(CHALLENGE)
        attacker_realm = platform.launch_realm(b"attacker-image")
        attacker_token = attacker_realm.attest(CHALLENGE)
        grafted = replace(
            attacker_token, platform_token=victim_token.platform_token
        )
        with pytest.raises(CcaError, match="endorse"):
            verify_cca_token(grafted, cpak, [arm.root.certificate], now=0)

    def test_unsecured_lifecycle_rejected(self, arm):
        platform = arm.provision_platform("debug-host")
        platform.lifecycle_state = "debug"
        cpak = arm.cpak_certificate(platform)
        realm = platform.launch_realm(b"image")
        with pytest.raises(CcaError, match="lifecycle"):
            verify_cca_token(
                realm.attest(CHALLENGE), cpak, [arm.root.certificate], now=0
            )

    def test_foreign_arm_rejected(self, arm, realm):
        fake_arm = ArmInfrastructure(HmacDrbg(b"fake-arm"))
        fake_platform = fake_arm.provision_platform("fake")
        fake_cpak = fake_arm.cpak_certificate(fake_platform)
        fake_realm = fake_platform.launch_realm(b"revelio-realm-image")
        token = fake_realm.attest(CHALLENGE)
        with pytest.raises(CcaError, match="chain"):
            verify_cca_token(
                token, fake_cpak, [arm.root.certificate], now=0
            )

    def test_wrong_rim_rejected(self, arm, cpak, realm):
        with pytest.raises(CcaError, match="RIM"):
            verify_cca_token(
                realm.attest(CHALLENGE), cpak, [arm.root.certificate], now=0,
                expected_rim=b"\x00" * 48,
            )

    def test_replayed_challenge_rejected(self, arm, cpak, realm):
        with pytest.raises(CcaError, match="challenge"):
            verify_cca_token(
                realm.attest(CHALLENGE), cpak, [arm.root.certificate], now=0,
                expected_challenge=b"\x99" * 64,
            )


class TestTeeLayer:
    def test_cca_through_generic_verifier(self, arm, platform, cpak, realm):
        cpaks = {platform.platform_id: cpak}
        verifier = TeeVerifier(
            {KIND_CCA: (lambda pid: cpaks[pid], [arm.root.certificate])}
        )
        verified = verifier.verify(
            cca_evidence(realm.attest(CHALLENGE)),
            now=0,
            expected_measurements=[realm.rim],
            expected_report_data=CHALLENGE,
        )
        assert verified.kind == KIND_CCA
        assert verified.measurement == realm.rim

    def test_all_three_technologies_coexist(self, arm, platform, cpak):
        from repro.amd.kds import KeyDistributionServer
        from repro.amd.policy import REVELIO_POLICY
        from repro.amd.secure_processor import AmdKeyInfrastructure
        from repro.core.kds_client import KdsClient
        from repro.net.latency import ZERO_LATENCY, SimClock
        from repro.tdx import IntelInfrastructure, ProvisioningCertificationService
        from repro.tee import (
            KIND_SEV_SNP,
            KIND_TDX,
            snp_evidence,
            tdx_evidence,
        )

        amd = AmdKeyInfrastructure(HmacDrbg(b"tri-amd"))
        chip = amd.provision_chip("tri-chip")
        intel = IntelInfrastructure(HmacDrbg(b"tri-intel"))
        tdx_platform = intel.provision_platform("tri-tdx")
        cpaks = {platform.platform_id: cpak}

        verifier = TeeVerifier(
            {
                KIND_SEV_SNP: KdsClient(
                    KeyDistributionServer(amd), SimClock(), ZERO_LATENCY
                ),
                KIND_TDX: ProvisioningCertificationService(intel),
                KIND_CCA: (lambda pid: cpaks[pid], [arm.root.certificate]),
            }
        )
        assert list(verifier.supported_kinds()) == sorted(
            [KIND_SEV_SNP, KIND_TDX, KIND_CCA]
        )

        guest = chip.launch_vm(b"image", REVELIO_POLICY)
        td = tdx_platform.launch_td(b"image")
        realm = platform.launch_realm(b"image")
        challenge = b"\x77" * 64
        for evidence, golden in (
            (snp_evidence(guest.get_report(challenge)), guest.measurement),
            (tdx_evidence(td.get_quote(challenge)), td.mrtd),
            (cca_evidence(realm.attest(challenge)), realm.rim),
        ):
            verified = verifier.verify(
                evidence, now=0, expected_measurements=[golden],
                expected_report_data=challenge,
            )
            assert verified.measurement == golden
            assert verified.report_data == challenge
