"""Verify-farm tests: queue semantics, the oracle seam, pipeline
wiring, and same-seed determinism."""

import json
from dataclasses import replace

import pytest

from repro.amd.kds import KeyDistributionServer
from repro.amd.policy import REVELIO_POLICY
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.attest import (
    STEP_BATCH_PREPARE,
    STEP_CERT_CHAIN,
    STEP_SIGNATURE,
    AttestationTracer,
    AttestationVerifier,
    VerificationPolicy,
    VerifyFarm,
)
from repro.core.kds_client import KdsClient
from repro.crypto import sigcache
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecdsa import EcdsaPrivateKey
from repro.crypto.ec import get_curve
from repro.net.latency import LatencyModel, SimClock

NOW = 1_000_000
REPORT_DATA = b"\x42" * 64


@pytest.fixture(autouse=True)
def clean_seams():
    """Farm tests install process-wide oracles and touch the signature
    cache; leave both exactly as found."""
    saved_oracle = sigcache.get_oracle()
    sigcache.reset_cache()
    yield
    sigcache.set_oracle(saved_oracle)
    sigcache.reset_cache()


def make_world(seed=b"attest-farm"):
    amd = AmdKeyInfrastructure(HmacDrbg(seed))
    kds_server = KeyDistributionServer(amd)
    chip = amd.provision_chip("farm-chip")
    guest = chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
    clock = SimClock()
    client = KdsClient(
        kds_server, clock, LatencyModel(kds_rtt=0.4, kds_processing=0.0273)
    )
    return amd, chip, guest, clock, client


def make_jobs(count, seed=b"farm-jobs"):
    curve = get_curve("P-256")
    private = EcdsaPrivateKey.generate(curve, HmacDrbg(seed))
    public = private.public_key()
    return [
        (public, b"job-%d" % i, private.sign(b"job-%d" % i), "sha256")
        for i in range(count)
    ]


class TestQueue:
    def test_fills_to_max_batch_then_flushes(self):
        clock = SimClock()
        farm = VerifyFarm(clock=clock, latency=LatencyModel(), max_batch=4,
                          tracer=AttestationTracer())
        for job in make_jobs(3):
            farm.submit(*job)
        assert len(farm) == 3  # below max_batch: still queued
        farm.submit(*make_jobs(1, seed=b"fourth")[0])
        assert len(farm) == 0  # hit max_batch: flushed
        snapshot = farm.stats()
        assert snapshot["batches"] == 1 and snapshot["jobs"] == 4

    def test_linger_deadline_flushes_on_poll(self):
        clock = SimClock()
        farm = VerifyFarm(clock=clock, latency=LatencyModel(), max_batch=64,
                          max_linger=0.002, tracer=AttestationTracer())
        for job in make_jobs(2):
            farm.submit(*job)
        farm.poll()
        assert len(farm) == 2  # deadline not reached: keep lingering
        clock.advance(0.0021)
        farm.poll()
        assert len(farm) == 0
        assert farm.stats()["batches"] == 1

    def test_flush_advances_clock_by_amortised_price(self):
        clock = SimClock()
        latency = LatencyModel()
        farm = VerifyFarm(clock=clock, latency=latency, max_batch=64,
                          tracer=AttestationTracer())
        for job in make_jobs(8):
            farm.submit(*job)
        before = clock.now
        result = farm.flush()
        assert result.msm_checks == 1 and result.per_sig_fallbacks == 0
        expected = latency.batch_verify_base + 8 * latency.batch_verify_per_sig
        assert clock.now - before == pytest.approx(expected)
        # Amortised per-signature cost beats one naive verification.
        assert expected / 8 < latency.sig_verify

    def test_max_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            VerifyFarm(max_batch=0)


class TestOracleSeam:
    def test_verdict_consumed_exactly_once_per_job(self):
        farm = VerifyFarm(tracer=AttestationTracer())
        (key, message, signature, hash_name) = make_jobs(1)[0]
        assert farm.verify_many([(key, message, signature, hash_name)]) == [True]
        sigcache.set_enabled(False)
        try:
            hits_before = sigcache.oracle_hits()
            _, misses_before = sigcache.counters()
            # First consumption: served from the batch, no fresh math.
            assert sigcache.cached_verify(key, message, signature, hash_name)
            assert sigcache.oracle_hits() == hits_before + 1
            assert sigcache.counters()[1] == misses_before
            # The verdict was spent: the second check verifies fresh.
            assert sigcache.cached_verify(key, message, signature, hash_name)
            assert sigcache.oracle_hits() == hits_before + 1
            assert sigcache.counters()[1] == misses_before + 1
        finally:
            sigcache.set_enabled(True)

    def test_false_verdicts_are_served_too(self):
        farm = VerifyFarm(tracer=AttestationTracer())
        (key, message, signature, hash_name) = make_jobs(1, b"bad")[0]
        forged = bytes([signature[0] ^ 1]) + signature[1:]
        assert farm.verify_many([(key, message, forged, hash_name)]) == [False]
        assert sigcache.cached_verify(key, message, forged, hash_name) is False

    def test_uninstall_detaches_only_own_oracle(self):
        farm = VerifyFarm(tracer=AttestationTracer())
        assert sigcache.get_oracle() is not None
        newer = VerifyFarm(tracer=AttestationTracer())
        farm.uninstall()  # superseded: must not evict the newer farm
        assert sigcache.get_oracle() is not None
        newer.uninstall()
        assert sigcache.get_oracle() is None


class TestPipelineWiring:
    def test_farm_run_prepends_batch_prepare_and_frees_crypto_steps(self):
        _, _, guest, clock, client = make_world()
        tracer = AttestationTracer()
        farm = VerifyFarm(clock=clock, latency=client.latency,
                          tracer=tracer)
        verifier = AttestationVerifier(client, tracer=tracer, farm=farm)
        report = guest.get_report(REPORT_DATA)
        outcome = verifier.verify(report, now=NOW)
        assert outcome.ok
        assert outcome.steps[0].name == STEP_BATCH_PREPARE
        assert "3 signature job(s)" in outcome.steps[0].detail
        # Chain and report-signature verdicts came from the batch: the
        # EC math was priced inside batch_prepare, not on the steps.
        assert outcome.step(STEP_CERT_CHAIN).sim_cost == 0.0
        assert outcome.step(STEP_SIGNATURE).sim_cost == 0.0
        assert tracer.farm.batches == 1 and tracer.farm.jobs == 3
        assert tracer.farm.oracle_served >= 3

    def test_farm_verdicts_survive_sigcache_ablation(self):
        """Ablating memoization must not ablate batching: the farm's
        verdicts are fresh crypto priced at flush, not memo hits."""
        _, _, guest, clock, client = make_world()
        tracer = AttestationTracer()
        farm = VerifyFarm(clock=clock, latency=client.latency, tracer=tracer)
        verifier = AttestationVerifier(client, tracer=tracer, farm=farm)
        report = guest.get_report(REPORT_DATA)
        sigcache.set_enabled(False)
        try:
            outcome = verifier.verify(report, now=NOW)
        finally:
            sigcache.set_enabled(True)
        assert outcome.ok
        assert tracer.farm.oracle_served >= 3
        assert outcome.step(STEP_SIGNATURE).sim_cost == 0.0

    def test_forged_report_still_fails_through_the_farm(self):
        """Invariant 15 end-to-end: a batch never launders a forged
        report signature into a pass."""
        _, _, guest, clock, client = make_world()
        tracer = AttestationTracer()
        farm = VerifyFarm(clock=clock, latency=client.latency, tracer=tracer)
        verifier = AttestationVerifier(client, tracer=tracer, farm=farm)
        report = replace(
            guest.get_report(REPORT_DATA), measurement=b"\xee" * 48
        )
        outcome = verifier.verify(report, now=NOW)
        assert not outcome.ok
        assert outcome.reason == "bad_signature"

    def test_verify_batch_shares_one_settlement(self):
        amd, chip, _, clock, client = make_world()
        guests = [
            chip.launch_vm(b"revelio-fw", REVELIO_POLICY) for _ in range(4)
        ]
        tracer = AttestationTracer()
        farm = VerifyFarm(clock=clock, latency=client.latency, max_batch=64,
                          tracer=tracer)
        verifier = AttestationVerifier(client, tracer=tracer, farm=farm)
        reports = [g.get_report(REPORT_DATA) for g in guests]
        outcomes = verifier.verify_batch(reports, now=NOW)
        assert all(outcome.ok for outcome in outcomes)
        # 4 reports x (2 chain links + report sig) land in one flush;
        # the shared VCEK->ASK->ARK links dedup inside the batch.
        assert tracer.farm.batches == 1
        assert tracer.farm.jobs == 12
        assert tracer.farm.deduplicated >= 6

    def test_verify_batch_without_farm_degrades_to_sequential(self):
        _, _, guest, _, client = make_world()
        verifier = AttestationVerifier(client, tracer=AttestationTracer())
        outcomes = verifier.verify_batch(
            [guest.get_report(REPORT_DATA)] * 2, now=NOW
        )
        assert all(outcome.ok for outcome in outcomes)

    def test_policies_must_match_reports(self):
        _, _, guest, _, client = make_world()
        verifier = AttestationVerifier(client, tracer=AttestationTracer())
        with pytest.raises(ValueError, match="one-to-one"):
            verifier.verify_batch(
                [guest.get_report(REPORT_DATA)], now=NOW,
                policies=[VerificationPolicy(), VerificationPolicy()],
            )


class TestDeterminism:
    def test_same_seed_runs_produce_byte_identical_counters(self):
        """Same world seed + same farm seed => the trace counters
        serialise byte-for-byte identically (CI gate)."""
        snapshots = []
        for _ in range(2):
            sigcache.reset_cache()
            _, chip, _, clock, client = make_world(seed=b"determinism")
            guests = [
                chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
                for _ in range(3)
            ]
            tracer = AttestationTracer()
            farm = VerifyFarm(clock=clock, latency=client.latency,
                              seed=b"det-farm", tracer=tracer)
            verifier = AttestationVerifier(client, tracer=tracer, farm=farm)
            verifier.verify_batch(
                [g.get_report(REPORT_DATA) for g in guests], now=NOW
            )
            for guest in guests:  # warm re-verify exercises serve paths
                verifier.verify(guest.get_report(REPORT_DATA), now=NOW)
            snapshots.append(
                json.dumps(tracer.farm.snapshot(), sort_keys=True)
            )
            farm.uninstall()
        assert snapshots[0] == snapshots[1]
