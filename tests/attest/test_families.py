"""Cross-family parity: the same policy violation yields the same
stable reason code whether the evidence is SEV-SNP, TDX, CCA, or an
SNP-endorsed e-vTPM — the heterogeneous-fleet promise of the verdict
seam."""

import hashlib

import pytest

from repro.amd.policy import GuestPolicy
from repro.amd.kds import KeyDistributionServer
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.amd.tcb import TcbVersion
from repro.attest import (
    AttestationTracer,
    AttestationVerifier,
    CcaTrust,
    Evidence,
    FamilyPolicy,
    TdxTrust,
    TeeFamily,
    VerificationPolicy,
    VtpmTrust,
)
from repro.cca.realms import ArmInfrastructure
from repro.core.kds_client import KdsClient
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import LatencyModel, SimClock
from repro.tdx.module import IntelInfrastructure, ProvisioningCertificationService
from repro.vtpm.monitoring import MonitoringEvidence
from repro.vtpm.vtpm import PCR_SERVICES, Vtpm

NOW = 1_000_000
BINDING = hashlib.sha256(b"family-parity").digest() + b"\x00" * 32
WRONG_BINDING = hashlib.sha256(b"someone-else").digest() + b"\x00" * 32


class FamilyCase:
    """One family's evidence factory plus the knobs the matrix turns."""

    def __init__(self, family, make_evidence, measurement, floor_too_high):
        self.family = str(family)
        self.make_evidence = make_evidence
        self.measurement = bytes(measurement)
        self.floor_too_high = floor_too_high


@pytest.fixture(scope="module")
def harness():
    """One backend per family, all bound to the same challenge, and a
    verifier holding every family's trust material."""
    rng = HmacDrbg(b"family-parity")
    amd = AmdKeyInfrastructure(rng.fork(b"amd"))
    kds = KdsClient(KeyDistributionServer(amd), SimClock(), LatencyModel())

    snp_guest = amd.provision_chip("parity-snp").launch_vm(
        b"parity-snp-image", GuestPolicy()
    )

    intel = IntelInfrastructure(rng.fork(b"intel"))
    pcs = ProvisioningCertificationService(intel)
    td = intel.provision_platform("parity-tdx").launch_td(b"parity-td-image")

    arm = ArmInfrastructure(rng.fork(b"arm"))
    cca_platform = arm.provision_platform("parity-cca")
    cpak = arm.cpak_certificate(cca_platform)
    realm = cca_platform.launch_realm(b"parity-realm-image")

    vtpm_guest = amd.provision_chip("parity-vtpm").launch_vm(
        b"parity-vtpm-image", GuestPolicy()
    )
    vtpm = Vtpm(rng.fork(b"vtpm"))
    ak_endorsement = vtpm_guest.get_report(
        hashlib.sha256(vtpm.ak_public.encode()).digest() + b"\x00" * 32
    )

    def vtpm_evidence(binding):
        return MonitoringEvidence(
            quote=vtpm.quote(binding, [PCR_SERVICES]),
            event_log=list(vtpm.event_log),
            ak_public=vtpm.ak_public,
            ak_endorsement=ak_endorsement,
        ).encode()

    cases = [
        FamilyCase(
            TeeFamily.SEV_SNP,
            lambda binding: snp_guest.get_report(binding).encode(),
            snp_guest.measurement,
            TcbVersion(99, 0, 8, 115),
        ),
        FamilyCase(
            TeeFamily.TDX,
            lambda binding: td.get_quote(binding).encode(),
            td.mrtd,
            99,
        ),
        FamilyCase(
            TeeFamily.CCA,
            lambda binding: realm.attest(binding).encode(),
            realm.rim,
            99,
        ),
        FamilyCase(
            TeeFamily.VTPM,
            vtpm_evidence,
            vtpm_guest.measurement,
            TcbVersion(99, 0, 8, 115),
        ),
    ]
    verifier = AttestationVerifier(
        kds,
        site="parity",
        tracer=AttestationTracer(),
        contexts={
            str(TeeFamily.TDX): TdxTrust(pcs),
            str(TeeFamily.CCA): CcaTrust(
                lambda platform_id: cpak, (arm.root.certificate,)
            ),
            str(TeeFamily.VTPM): VtpmTrust(kds),
        },
    )
    return verifier, cases


def _verify(verifier, case, binding=BINDING, **policy_overrides):
    kwargs = dict(
        golden_measurements=(case.measurement,),
        expected_report_data=BINDING,
    )
    kwargs.update(policy_overrides)
    evidence = Evidence(case.family, case.make_evidence(binding))
    return verifier.verify(
        evidence, now=NOW, policy=VerificationPolicy(**kwargs)
    )


class TestParityMatrix:
    def test_honest_evidence_passes_in_every_family(self, harness):
        verifier, cases = harness
        for case in cases:
            outcome = _verify(verifier, case)
            assert outcome.ok, (case.family, outcome.reason, outcome.detail)
            assert outcome.family == case.family

    def test_family_not_allowed_is_uniform(self, harness):
        verifier, cases = harness
        for case in cases:
            others = tuple(
                c.family for c in cases if c.family != case.family
            )
            outcome = _verify(verifier, case, allowed_families=others)
            assert not outcome.ok, case.family
            assert outcome.reason == "family_not_allowed", case.family
            assert case.family in outcome.detail

    def test_measurement_mismatch_is_uniform(self, harness):
        verifier, cases = harness
        for case in cases:
            outcome = _verify(
                verifier, case, golden_measurements=(b"\x99" * 48,)
            )
            assert not outcome.ok, case.family
            assert outcome.reason == "measurement_mismatch", case.family

    def test_measurement_revoked_is_uniform(self, harness):
        verifier, cases = harness
        for case in cases:
            outcome = _verify(
                verifier, case, revoked_measurements=(case.measurement,)
            )
            assert not outcome.ok, case.family
            assert outcome.reason == "measurement_revoked", case.family

    def test_report_data_mismatch_is_uniform(self, harness):
        verifier, cases = harness
        for case in cases:
            outcome = _verify(verifier, case, binding=WRONG_BINDING)
            assert not outcome.ok, case.family
            assert outcome.reason == "report_data_mismatch", case.family

    def test_family_tcb_floor_is_uniform(self, harness):
        verifier, cases = harness
        for case in cases:
            outcome = _verify(
                verifier,
                case,
                families={
                    case.family: FamilyPolicy(minimum_tcb=case.floor_too_high)
                },
            )
            assert not outcome.ok, case.family
            assert outcome.reason == "family_tcb_floor", case.family

    def test_per_family_counters_track_each_family(self, harness):
        verifier, cases = harness
        counters = verifier.tracer.counters
        for case in cases:
            assert counters.verifications_by_family[case.family]["pass"] >= 1
            assert (
                counters.failures_by_family[case.family]["family_not_allowed"]
                >= 1
            )
