"""Unified attestation pipeline tests: steps, outcomes, tracing."""

import pytest

from repro.amd.kds import KeyDistributionServer
from repro.amd.policy import REVELIO_POLICY
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.amd.tcb import TcbVersion
from repro.amd.verify import AttestationError
from repro.attest import (
    STEP_CERT_CHAIN,
    STEP_CHIP_ID_ALLOWLIST,
    STEP_CHIP_ID_BINDING,
    STEP_DEBUG_POLICY,
    STEP_MEASUREMENT,
    STEP_REPORT_DATA,
    STEP_REVOCATION,
    STEP_SIGNATURE,
    STEP_TCB_BINDING,
    STEP_TCB_FLOOR,
    STEP_VCEK_FETCH,
    AttestationTracer,
    AttestationVerifier,
    TraceSink,
    VerificationPolicy,
    get_tracer,
    reset_tracer,
)
from repro.core.kds_client import KdsClient
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import LatencyModel, SimClock

NOW = 1_000_000
REPORT_DATA = b"\x42" * 64
KDS_TRIP = 0.4 + 0.0273  # one charged KDS round trip (rtt + processing)
# calibrated crypto prices (LatencyModel defaults): signature, chain walk,
# measurement comparison — together the paper's ~13 ms client validation
CRYPTO_COST = 0.008 + 0.004 + 0.001
# fraction charged when the signature cache fully serves a crypto step
CACHED_DISCOUNT = 0.05


@pytest.fixture
def world():
    amd = AmdKeyInfrastructure(HmacDrbg(b"attest-pipeline"))
    kds_server = KeyDistributionServer(amd)
    chip = amd.provision_chip("pl-chip")
    guest = chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
    clock = SimClock()
    client = KdsClient(
        kds_server, clock, LatencyModel(kds_rtt=0.4, kds_processing=0.0273)
    )
    return {
        "amd": amd,
        "kds_server": kds_server,
        "chip": chip,
        "guest": guest,
        "clock": clock,
        "client": client,
    }


def full_policy(world, **overrides):
    kwargs = dict(
        golden_measurements=(world["guest"].measurement,),
        revoked_measurements=(b"\x0d" * 48,),
        expected_report_data=REPORT_DATA,
        allowed_chip_ids=(world["chip"].chip_id,),
        minimum_tcb=TcbVersion(1, 0, 0, 0),
    )
    kwargs.update(overrides)
    return VerificationPolicy(**kwargs)


class TestHappyPath:
    def test_minimal_policy_runs_mandatory_steps_only(self, world):
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        outcome = verifier.verify(report, now=NOW)
        assert outcome.ok and outcome.verdict == "pass"
        assert [s.name for s in outcome.steps] == [
            STEP_VCEK_FETCH,
            STEP_CERT_CHAIN,
            STEP_CHIP_ID_BINDING,
            STEP_TCB_BINDING,
            STEP_SIGNATURE,
            STEP_DEBUG_POLICY,
        ]
        assert all(s.passed and s.reason is None for s in outcome.steps)
        assert outcome.reason is None and outcome.detail == ""
        assert outcome.failure is None

    def test_full_policy_runs_every_step_in_order(self, world):
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        outcome = verifier.verify(report, now=NOW, policy=full_policy(world))
        assert outcome.ok
        assert [s.name for s in outcome.steps] == [
            STEP_REVOCATION,
            STEP_VCEK_FETCH,
            STEP_CERT_CHAIN,
            STEP_CHIP_ID_BINDING,
            STEP_TCB_BINDING,
            STEP_SIGNATURE,
            STEP_DEBUG_POLICY,
            STEP_MEASUREMENT,
            STEP_REPORT_DATA,
            STEP_CHIP_ID_ALLOWLIST,
            STEP_TCB_FLOOR,
        ]

    def test_verify_or_raise_returns_legacy_verified_report(self, world):
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        verified = verifier.verify_or_raise(
            report, now=NOW, policy=full_policy(world)
        )
        assert verified.checked_measurement
        assert verified.checked_report_data
        assert verified.checked_chip_id
        assert verified.vcek_certificate is not None

    def test_vcek_fetch_costs_one_round_trip(self, world):
        """The chain rides along with the VCEK response: one trip total,
        plus the calibrated crypto prices on the signature-bearing steps."""
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        outcome = verifier.verify(report, now=NOW, policy=full_policy(world))
        fetch = outcome.step(STEP_VCEK_FETCH)
        assert fetch.sim_cost == pytest.approx(KDS_TRIP)
        assert outcome.step(STEP_SIGNATURE).sim_cost == pytest.approx(0.008)
        assert outcome.step(STEP_CERT_CHAIN).sim_cost == pytest.approx(0.004)
        assert outcome.step(STEP_MEASUREMENT).sim_cost == pytest.approx(0.001)
        assert outcome.sim_cost == pytest.approx(KDS_TRIP + CRYPTO_COST)
        priced = {STEP_VCEK_FETCH, STEP_SIGNATURE, STEP_CERT_CHAIN, STEP_MEASUREMENT}
        for step in outcome.steps:
            if step.name not in priced:
                assert step.sim_cost == 0.0

    def test_cached_rerun_avoids_kds_and_discounts_crypto(self, world):
        """A warm rerun pays no KDS trip and its signature/chain steps
        are served from the verification cache at the discounted rate."""
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        cold = verifier.verify(report, now=NOW)
        warm = verifier.verify(report, now=NOW)
        assert warm.step(STEP_VCEK_FETCH).sim_cost == 0.0
        assert warm.step(STEP_SIGNATURE).sim_cost == pytest.approx(
            0.008 * CACHED_DISCOUNT
        )
        assert warm.step(STEP_CERT_CHAIN).sim_cost == pytest.approx(
            0.004 * CACHED_DISCOUNT
        )
        assert warm.sim_cost < cold.sim_cost


class TestFailureOutcomes:
    def test_failure_stops_pipeline_and_records_reason(self, world):
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        policy = full_policy(world, golden_measurements=(b"\xff" * 48,))
        outcome = verifier.verify(report, now=NOW, policy=policy)
        assert not outcome.ok and outcome.verdict == "fail"
        assert outcome.steps[-1].name == STEP_MEASUREMENT
        assert not outcome.steps[-1].passed
        assert outcome.reason == "measurement_mismatch"
        assert "golden" in outcome.detail
        # Later steps never ran.
        assert outcome.step(STEP_REPORT_DATA) is None
        assert outcome.step(STEP_TCB_FLOOR) is None
        # Earlier steps are all recorded as passed.
        assert all(s.passed for s in outcome.steps[:-1])

    def test_raise_for_failure_carries_stable_code(self, world):
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        policy = full_policy(world, expected_report_data=b"\xff" * 64)
        outcome = verifier.verify(report, now=NOW, policy=policy)
        with pytest.raises(AttestationError) as excinfo:
            outcome.raise_for_failure()
        assert excinfo.value.reason == "report_data_mismatch"
        with pytest.raises(AttestationError):
            outcome.verified_report()

    def test_revocation_beats_golden_membership(self, world):
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        measurement = bytes(world["guest"].measurement)
        policy = full_policy(world, revoked_measurements=(measurement,))
        outcome = verifier.verify(report, now=NOW, policy=policy)
        assert outcome.reason == "measurement_revoked"
        assert "revoked" in outcome.detail
        # The pipeline never reached the KDS.
        assert [s.name for s in outcome.steps] == [STEP_REVOCATION]
        assert outcome.sim_cost == 0.0

    def test_trust_anchor_override(self, world):
        fake = KeyDistributionServer(AmdKeyInfrastructure(HmacDrbg(b"fake")))
        verifier = AttestationVerifier(world["client"], tracer=AttestationTracer())
        report = world["guest"].get_report(REPORT_DATA)
        policy = full_policy(world, trust_anchors=(fake.ark_certificate,))
        outcome = verifier.verify(report, now=NOW, policy=policy)
        assert outcome.reason == "bad_cert_chain"
        assert outcome.steps[-1].name == STEP_CERT_CHAIN


class TestTracing:
    def test_counters_aggregate_verdicts_and_reasons(self, world):
        tracer = AttestationTracer()
        verifier = AttestationVerifier(world["client"], tracer=tracer)
        report = world["guest"].get_report(REPORT_DATA)
        verifier.verify(report, now=NOW, policy=full_policy(world))
        verifier.verify(
            report,
            now=NOW,
            policy=full_policy(world, golden_measurements=(b"\xff" * 48,)),
        )
        counters = tracer.counters
        assert counters.verifications_by_verdict == {"pass": 1, "fail": 1}
        assert counters.failures_by_reason == {"measurement_mismatch": 1}
        snapshot = counters.snapshot()
        assert snapshot["verifications_by_verdict"] == {"pass": 1, "fail": 1}
        assert snapshot["failures_by_reason"] == {"measurement_mismatch": 1}

    def test_kds_cache_hit_rate(self, world):
        tracer = AttestationTracer()
        verifier = AttestationVerifier(world["client"], tracer=tracer)
        report = world["guest"].get_report(REPORT_DATA)
        verifier.verify(report, now=NOW)  # cold: 1 fetch (+1 chain cache hit)
        verifier.verify(report, now=NOW)  # warm: served from cache
        counters = tracer.counters
        assert counters.kds_fetches == 1
        assert counters.kds_cache_hits == 3
        assert counters.kds_cache_hit_rate() == pytest.approx(3 / 4)

    def test_step_latency_histograms(self, world):
        tracer = AttestationTracer()
        verifier = AttestationVerifier(world["client"], tracer=tracer)
        report = world["guest"].get_report(REPORT_DATA)
        verifier.verify(report, now=NOW)
        verifier.verify(report, now=NOW)
        histogram = tracer.counters.step_latency[STEP_VCEK_FETCH]
        assert histogram.count == 2
        assert histogram.mean() == pytest.approx(KDS_TRIP / 2)
        means = tracer.counters.snapshot()["step_latency_ms_mean"]
        assert means[STEP_VCEK_FETCH] == pytest.approx(KDS_TRIP / 2 * 1000)

    def test_ring_buffer_keeps_recent_events(self, world):
        tracer = AttestationTracer(ring_capacity=2)
        verifier = AttestationVerifier(world["client"], tracer=tracer)
        report = world["guest"].get_report(REPORT_DATA)
        for site in ("first", "second", "third"):
            verifier.verify(report, now=NOW, site=site)
        assert len(tracer.ring) == 2
        assert [e.site for e in tracer.ring.events] == ["second", "third"]
        # Counters still saw everything.
        assert tracer.counters.verifications_by_verdict["pass"] == 3

    def test_custom_sink_receives_events(self, world):
        class Collect(TraceSink):
            def __init__(self):
                self.seen = []

            def record(self, event):
                self.seen.append(event)

        tracer = AttestationTracer()
        sink = Collect()
        tracer.add_sink(sink)
        verifier = AttestationVerifier(world["client"], tracer=tracer)
        report = world["guest"].get_report(REPORT_DATA)
        verifier.verify(report, now=NOW)
        assert len(sink.seen) == 1
        assert sink.seen[0].verdict == "pass"
        assert sink.seen[0].kds_fetches == 1

    def test_default_tracer_is_process_wide(self, world):
        tracer = reset_tracer()
        try:
            verifier = AttestationVerifier(world["client"])  # no tracer given
            report = world["guest"].get_report(REPORT_DATA)
            verifier.verify(report, now=NOW)
            assert get_tracer() is tracer
            assert tracer.counters.verifications_by_verdict["pass"] == 1
        finally:
            reset_tracer()

    def test_counter_reset(self, world):
        tracer = AttestationTracer()
        verifier = AttestationVerifier(world["client"], tracer=tracer)
        report = world["guest"].get_report(REPORT_DATA)
        verifier.verify(report, now=NOW)
        tracer.counters.reset()
        assert tracer.counters.verifications_by_verdict == {}
        assert tracer.counters.kds_fetches == 0
