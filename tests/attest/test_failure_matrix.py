"""Failure-injection matrix: every stable reason code, end to end.

Each case injects one fault and drives it through the unified pipeline,
asserting the outcome carries the expected stable reason code; a second
set asserts the migrated call sites (key sharing, RA-TLS, TEE dispatch)
surface the *same* code.
"""

from dataclasses import replace

import pytest

from repro.amd.kds import KeyDistributionServer
from repro.amd.policy import REVELIO_POLICY, GuestPolicy
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.amd.tcb import TcbVersion
from repro.amd.verify import AttestationError
from repro.attest import (
    AttestationTracer,
    AttestationVerifier,
    VerificationPolicy,
)
from repro.core.kds_client import KdsClient
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY, SimClock

NOW = 1_000_000
REPORT_DATA = b"\x42" * 64


class SubstituteVcekKds:
    """A KDS client that serves a substituted VCEK (fault injection)."""

    def __init__(self, inner, vcek):
        self._inner = inner
        self._vcek = vcek

    def get_vcek(self, chip_id, tcb):
        return self._vcek

    def cert_chain(self):
        return self._inner.cert_chain()

    @property
    def trust_anchor(self):
        return self._inner.trust_anchor

    @property
    def clock(self):
        return self._inner.clock

    @property
    def fetches(self):
        return self._inner.fetches

    @property
    def cache_hits(self):
        return self._inner.cache_hits


@pytest.fixture(scope="module")
def world():
    amd = AmdKeyInfrastructure(HmacDrbg(b"attest-matrix"))
    kds_server = KeyDistributionServer(amd)
    chip = amd.provision_chip("fm-chip")
    other_chip = amd.provision_chip("fm-chip-2")
    guest = chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
    client = KdsClient(kds_server, SimClock(), ZERO_LATENCY)
    return {
        "amd": amd,
        "kds_server": kds_server,
        "chip": chip,
        "other_chip": other_chip,
        "guest": guest,
        "client": client,
    }


def base_policy(world, **overrides):
    kwargs = dict(
        golden_measurements=(world["guest"].measurement,),
        expected_report_data=REPORT_DATA,
        allowed_chip_ids=(world["chip"].chip_id,),
        minimum_tcb=TcbVersion(1, 0, 0, 0),
    )
    kwargs.update(overrides)
    return VerificationPolicy(**kwargs)


def inject_measurement_revoked(world):
    report = world["guest"].get_report(REPORT_DATA)
    policy = base_policy(
        world, revoked_measurements=(bytes(world["guest"].measurement),)
    )
    return world["client"], report, policy


def inject_unknown_platform(world):
    foreign_amd = AmdKeyInfrastructure(HmacDrbg(b"foreign"))
    foreign_chip = foreign_amd.provision_chip("foreign-chip")
    foreign_guest = foreign_chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
    report = foreign_guest.get_report(REPORT_DATA)
    return world["client"], report, base_policy(world)


def inject_bad_cert_chain(world):
    fake = KeyDistributionServer(AmdKeyInfrastructure(HmacDrbg(b"fake-root")))
    report = world["guest"].get_report(REPORT_DATA)
    policy = base_policy(world, trust_anchors=(fake.ark_certificate,))
    return world["client"], report, policy


def inject_chip_id_mismatch(world):
    report = world["guest"].get_report(REPORT_DATA)
    wrong_vcek = world["kds_server"].get_vcek_certificate(
        world["other_chip"].chip_id, report.reported_tcb
    )
    return SubstituteVcekKds(world["client"], wrong_vcek), report, base_policy(world)


def inject_tcb_mismatch(world):
    report = world["guest"].get_report(REPORT_DATA)
    wrong_vcek = world["kds_server"].get_vcek_certificate(
        world["chip"].chip_id, TcbVersion(9, 9, 9, 200)
    )
    return SubstituteVcekKds(world["client"], wrong_vcek), report, base_policy(world)


def inject_bad_signature(world):
    report = replace(
        world["guest"].get_report(REPORT_DATA), measurement=b"\xee" * 48
    )
    return world["client"], report, base_policy(world)


def inject_debug_policy(world):
    debug_guest = world["chip"].launch_vm(
        b"revelio-fw", GuestPolicy(debug_allowed=True)
    )
    report = debug_guest.get_report(REPORT_DATA)
    return world["client"], report, base_policy(world)


def inject_measurement_mismatch(world):
    report = world["guest"].get_report(REPORT_DATA)
    policy = base_policy(world, golden_measurements=(b"\xff" * 48,))
    return world["client"], report, policy


def inject_report_data_mismatch(world):
    report = world["guest"].get_report(REPORT_DATA)
    policy = base_policy(world, expected_report_data=b"\xff" * 64)
    return world["client"], report, policy


def inject_chip_id_not_allowed(world):
    report = world["guest"].get_report(REPORT_DATA)
    policy = base_policy(world, allowed_chip_ids=(b"\xaa" * 64,))
    return world["client"], report, policy


def inject_tcb_too_old(world):
    report = world["guest"].get_report(REPORT_DATA)
    policy = base_policy(world, minimum_tcb=TcbVersion(255, 255, 255, 255))
    return world["client"], report, policy


INJECTORS = {
    "measurement_revoked": inject_measurement_revoked,
    "unknown_platform": inject_unknown_platform,
    "bad_cert_chain": inject_bad_cert_chain,
    "chip_id_mismatch": inject_chip_id_mismatch,
    "tcb_mismatch": inject_tcb_mismatch,
    "bad_signature": inject_bad_signature,
    "debug_policy": inject_debug_policy,
    "measurement_mismatch": inject_measurement_mismatch,
    "report_data_mismatch": inject_report_data_mismatch,
    "chip_id_not_allowed": inject_chip_id_not_allowed,
    "tcb_too_old": inject_tcb_too_old,
}


@pytest.mark.parametrize("code", sorted(INJECTORS))
def test_reason_code_through_pipeline(world, code):
    kds, report, policy = INJECTORS[code](world)
    tracer = AttestationTracer()
    verifier = AttestationVerifier(kds, tracer=tracer, site=f"matrix:{code}")

    outcome = verifier.verify(report, now=NOW, policy=policy)
    assert not outcome.ok
    assert outcome.reason == code
    failing = outcome.steps[-1]
    assert not failing.passed and failing.reason == code
    # Everything before the failing step passed.
    assert all(step.passed for step in outcome.steps[:-1])
    # The tracer counted the failure under the same code.
    assert tracer.counters.verifications_by_verdict["fail"] == 1
    assert tracer.counters.failures_by_reason == {code: 1}
    assert tracer.ring.events[-1].reason == code

    # The raising entry point surfaces the identical stable code.
    with pytest.raises(AttestationError) as excinfo:
        verifier.verify_or_raise(report, now=NOW, policy=policy)
    assert excinfo.value.reason == code


class TestCallSiteParity:
    """Migrated call sites surface the pipeline's stable codes."""

    def test_key_sharing_bundle(self, world):
        from repro.core.key_sharing import (
            BUNDLE_KIND_PUBLIC_KEY,
            ReportBundle,
            report_data_for,
            verify_report_bundle,
        )
        from repro.crypto.keys import PrivateKey

        key = PrivateKey.generate_ecdsa(HmacDrbg(b"parity-key"))
        payload = key.public_key().encode()
        report = world["guest"].get_report(
            report_data_for(key.public_key().fingerprint())
        )
        bundle = ReportBundle(BUNDLE_KIND_PUBLIC_KEY, report, payload)
        with pytest.raises(AttestationError) as excinfo:
            verify_report_bundle(
                bundle, world["client"], NOW,
                expected_measurements=[b"\xff" * 48],
            )
        assert excinfo.value.reason == "measurement_mismatch"

        # Payload swap breaks the REPORT_DATA binding.
        other = PrivateKey.generate_ecdsa(HmacDrbg(b"other-key"))
        swapped = replace(bundle, payload=other.public_key().encode())
        with pytest.raises(AttestationError) as excinfo:
            verify_report_bundle(
                swapped, world["client"], NOW,
                expected_measurements=[world["guest"].measurement],
            )
        assert excinfo.value.reason == "report_data_mismatch"

    def test_ra_tls(self, world):
        from repro.core.ra_tls import (
            REPORT_EXTENSION,
            RaTlsError,
            issue_ra_tls_certificate,
            validate_ra_tls_certificate,
        )
        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import Certificate, Name

        key = PrivateKey.generate_ecdsa(HmacDrbg(b"ra-tls-key"))
        certificate = issue_ra_tls_certificate(
            world["guest"], key, subject_name="parity.ra-tls"
        )
        with pytest.raises(RaTlsError, match="golden") as excinfo:
            validate_ra_tls_certificate(
                certificate, world["client"], NOW,
                expected_measurements=[b"\xff" * 48],
            )
        assert excinfo.value.reason == "measurement_mismatch"

        # A report stolen into a certificate for a different key breaks
        # the REPORT_DATA binding.
        attacker = PrivateKey.generate_ecdsa(HmacDrbg(b"attacker"))
        unsigned = Certificate(
            subject=Name("attacker"), issuer=Name("attacker"),
            public_key=attacker.public_key(), serial=1,
            not_before=0, not_after=2**61,
            extensions=(
                (REPORT_EXTENSION, certificate.extension(REPORT_EXTENSION)),
            ),
        )
        forged = replace(
            unsigned, signature=attacker.sign(unsigned.tbs_bytes())
        )
        with pytest.raises(RaTlsError, match="does not endorse") as excinfo:
            validate_ra_tls_certificate(
                forged, world["client"], NOW,
                expected_measurements=[world["guest"].measurement],
            )
        assert excinfo.value.reason == "report_data_mismatch"

    def test_tee_dispatch(self, world):
        from repro.tee import KIND_SEV_SNP, TeeError, TeeVerifier, snp_evidence

        verifier = TeeVerifier({KIND_SEV_SNP: world["client"]})
        evidence = snp_evidence(world["guest"].get_report(REPORT_DATA))
        with pytest.raises(TeeError, match="measurement_mismatch"):
            verifier.verify(evidence, NOW, [b"\xff" * 48])

    def test_tcb_too_old_shared_code(self, world):
        from repro.core.key_sharing import (
            BUNDLE_KIND_PUBLIC_KEY,
            ReportBundle,
            report_data_for,
            verify_report_bundle,
        )
        from repro.crypto.keys import PrivateKey

        key = PrivateKey.generate_ecdsa(HmacDrbg(b"tcb-key"))
        report = world["guest"].get_report(
            report_data_for(key.public_key().fingerprint())
        )
        bundle = ReportBundle(
            BUNDLE_KIND_PUBLIC_KEY, report, key.public_key().encode()
        )
        with pytest.raises(AttestationError) as excinfo:
            verify_report_bundle(
                bundle, world["client"], NOW,
                expected_measurements=[world["guest"].measurement],
                minimum_tcb=TcbVersion(255, 255, 255, 255),
            )
        assert excinfo.value.reason == "tcb_too_old"
