"""ACME CA tests: DNS-01 validation, issuance, and rate limits."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.crypto.x509 import CertificateSigningRequest, Name, validate_chain
from repro.net.dns import DnsRegistry
from repro.net.latency import LatencyModel, SimClock
from repro.pki.acme import AcmeError, AcmeServer, RateLimitError
from repro.pki.ca import WebPki
from repro.pki.certbot import CertbotClient

DOMAIN = "service.example"


@pytest.fixture
def setup():
    rng = HmacDrbg(b"acme-tests")
    clock = SimClock()
    dns = DnsRegistry()
    pki = WebPki.create(rng.fork(b"pki"))
    acme = AcmeServer(
        pki, dns, clock, rng.fork(b"acme"),
        latency=LatencyModel(acme_issuance=2.95),
        rate_limit=3, rate_window=100.0,
    )
    key = PrivateKey.generate_ecdsa(rng.fork(b"svc"))
    csr = CertificateSigningRequest.create(Name(DOMAIN), key, san=(DOMAIN,))
    return {
        "rng": rng, "clock": clock, "dns": dns, "pki": pki, "acme": acme,
        "key": key, "csr": csr,
    }


class TestHappyPath:
    def test_certbot_flow(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        chain = certbot.obtain_certificate(DOMAIN, setup["csr"])
        validate_chain(
            chain, [setup["pki"].trust_anchor],
            now=setup["clock"].epoch_seconds(), hostname=DOMAIN,
        )
        assert chain[0].public_key == setup["key"].public_key()

    def test_issuance_charges_latency(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        before = setup["clock"].now
        certbot.obtain_certificate(DOMAIN, setup["csr"])
        assert setup["clock"].now - before == pytest.approx(2.95)

    def test_challenge_record_cleaned_up(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        certbot.obtain_certificate(DOMAIN, setup["csr"])
        assert setup["dns"].get_txt(f"_acme-challenge.{DOMAIN}") == []

    def test_cert_lifetime_90_days(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        leaf = certbot.obtain_certificate(DOMAIN, setup["csr"])[0]
        assert leaf.not_after - leaf.not_before == 90 * 24 * 3600


class TestValidation:
    def test_unpublished_challenge_fails(self, setup):
        acme = setup["acme"]
        order = acme.new_order(DOMAIN)
        with pytest.raises(AcmeError, match="DNS-01"):
            acme.validate_challenge(order.order_id)

    def test_wrong_token_fails(self, setup):
        acme = setup["acme"]
        order = acme.new_order(DOMAIN)
        setup["dns"].set_txt(order.txt_record_name, ["wrong-value"])
        with pytest.raises(AcmeError, match="DNS-01"):
            acme.validate_challenge(order.order_id)

    def test_finalize_requires_validation(self, setup):
        acme = setup["acme"]
        order = acme.new_order(DOMAIN)
        with pytest.raises(AcmeError, match="validation"):
            acme.finalize(order.order_id, setup["csr"])

    def test_csr_domain_mismatch(self, setup):
        acme, dns = setup["acme"], setup["dns"]
        wrong_csr = CertificateSigningRequest.create(
            Name("other.example"), setup["key"], san=("other.example",)
        )
        order = acme.new_order(DOMAIN)
        dns.set_txt(order.txt_record_name, [order.key_authorization()])
        acme.validate_challenge(order.order_id)
        with pytest.raises(AcmeError, match="does not cover"):
            acme.finalize(order.order_id, wrong_csr)

    def test_bad_csr_signature(self, setup):
        from dataclasses import replace

        acme, dns = setup["acme"], setup["dns"]
        bad_csr = replace(setup["csr"], signature=b"\x00" * 64)
        order = acme.new_order(DOMAIN)
        dns.set_txt(order.txt_record_name, [order.key_authorization()])
        acme.validate_challenge(order.order_id)
        with pytest.raises(AcmeError, match="proof-of-possession"):
            acme.finalize(order.order_id, bad_csr)

    def test_order_not_reusable(self, setup):
        certbot_like = setup["acme"]
        order = certbot_like.new_order(DOMAIN)
        setup["dns"].set_txt(order.txt_record_name, [order.key_authorization()])
        certbot_like.validate_challenge(order.order_id)
        certbot_like.finalize(order.order_id, setup["csr"])
        with pytest.raises(AcmeError, match="already fulfilled"):
            certbot_like.finalize(order.order_id, setup["csr"])

    def test_unknown_order(self, setup):
        with pytest.raises(AcmeError, match="unknown order"):
            setup["acme"].validate_challenge("nope")

    def test_invalid_domain(self, setup):
        with pytest.raises(AcmeError):
            setup["acme"].new_order("bad/domain")


class TestRateLimiting:
    """The constraint that motivates Revelio's TLS-key sharing (3.4.6)."""

    def test_limit_enforced(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        for _ in range(3):
            certbot.obtain_certificate(DOMAIN, setup["csr"])
        with pytest.raises(RateLimitError):
            certbot.obtain_certificate(DOMAIN, setup["csr"])

    def test_limit_is_per_domain(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        for _ in range(3):
            certbot.obtain_certificate(DOMAIN, setup["csr"])
        other_csr = CertificateSigningRequest.create(
            Name("other.example"), setup["key"], san=("other.example",)
        )
        certbot.obtain_certificate("other.example", other_csr)  # fine

    def test_window_slides(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        for _ in range(3):
            certbot.obtain_certificate(DOMAIN, setup["csr"])
        setup["clock"].advance(200.0)  # beyond the 100 s test window
        certbot.obtain_certificate(DOMAIN, setup["csr"])

    def test_new_order_also_rate_limited(self, setup):
        certbot = CertbotClient(setup["acme"], setup["dns"])
        for _ in range(3):
            certbot.obtain_certificate(DOMAIN, setup["csr"])
        with pytest.raises(RateLimitError):
            setup["acme"].new_order(DOMAIN)
