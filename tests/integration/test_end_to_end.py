"""End-to-end happy-path integration tests across every subsystem."""

import pytest

from repro.core import (
    BOOTSTRAP_PORT,
    WELL_KNOWN_ATTESTATION_PATH,
    decode_attestation_payload,
)
from repro.core.key_sharing import report_data_for
from repro.crypto.keys import PrivateKey
from repro.net.firewall import ConnectionRefused
from repro.net.http import HttpRequest


class TestFleetProvisioning:
    def test_all_nodes_attested(self, deployment):
        assert len(deployment.provisioning.attested) == 3

    def test_all_nodes_serving(self, deployment):
        assert all(d.node.serving for d in deployment.nodes)

    def test_shared_certificate(self, deployment):
        chains = [d.node.certificate_chain for d in deployment.nodes]
        assert all(chain[0] == chains[0][0] for chain in chains)

    def test_shared_private_key(self, deployment):
        keys = [d.node.tls_private_key for d in deployment.nodes]
        assert all(key.d == keys[0].d for key in keys)

    def test_leader_key_is_certified_key(self, deployment):
        leader = deployment.leader
        leaf = deployment.provisioning.certificate_chain[0]
        assert leaf.public_key == leader.vm.identity.public_key

    def test_certificate_covers_domain(self, deployment):
        leaf = deployment.provisioning.certificate_chain[0]
        assert leaf.matches_hostname(deployment.domain)

    def test_private_key_persisted_encrypted(self, deployment):
        # Non-leader nodes store the key on the sealed data volume.
        for deployed in deployment.nodes:
            if deployed.host.ip_address == deployment.provisioning.leader_ip:
                continue
            data = deployed.vm.storage["data"]
            length = int.from_bytes(data.read_bytes(0, 4), "big")
            from repro.crypto.ecdsa import EcdsaPrivateKey

            stored = EcdsaPrivateKey.decode(data.read_bytes(4, length))
            assert stored.d == deployed.node.tls_private_key.d

    def test_timings_recorded(self, deployment):
        timings = deployment.provisioning.timings
        assert set(timings) == {
            "evidence_retrieval",
            "evidence_validation",
            "certificate_generation",
            "certificate_distribution",
        }


class TestGuestState:
    def test_vms_booted_with_all_services(self, deployment):
        for deployed in deployment.nodes:
            steps = [t.step for t in deployed.vm.boot_timings]
            assert steps == [
                "verity-rootfs",
                "network-lockdown",
                "dm-crypt-data",
                "identity-creation",
                "start-services",
            ]

    def test_measurement_matches_golden(self, deployment):
        for deployed in deployment.nodes:
            assert deployed.vm.measurement == deployment.build.expected_measurement

    def test_rootfs_mounted_and_verified(self, deployment):
        for deployed in deployment.nodes:
            assert deployed.vm.rootfs.exists("/usr/sbin/nginx")

    def test_data_volume_usable(self, deployment):
        volume = deployment.nodes[0].vm.storage["data"]
        volume.write_block(3, b"\x42" * 4096)
        assert volume.read_block(3) == b"\x42" * 4096

    def test_identities_are_unique(self, deployment):
        scalars = {d.vm.identity.private_key.d for d in deployment.nodes}
        assert len(scalars) == 3

    def test_firewall_blocks_ssh(self, deployment):
        attacker = deployment.network.add_host("ssh-attacker", "10.9.9.1")
        with pytest.raises(ConnectionRefused):
            attacker.request(deployment.nodes[0].host.ip_address, 22, b"ssh")
        deployment.network.remove_host("10.9.9.1")


class TestEndUserAttestation:
    def test_navigation_validated(self, deployment):
        browser, extension = deployment.make_user("u1", "10.2.0.11")
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert result.response.status == 200
        assert [e.kind for e in extension.events] == ["validated"]

    def test_pinned_key_matches_tls(self, deployment):
        browser, extension = deployment.make_user("u2", "10.2.0.12")
        browser.navigate(f"https://{deployment.domain}/")
        pinned = extension.pinned_key_fingerprint(deployment.domain)
        assert pinned == browser.connection_public_key_fingerprint(deployment.domain)

    def test_monitoring_accepts_stable_connection(self, deployment):
        browser, extension = deployment.make_user("u3", "10.2.0.13")
        for _ in range(5):
            result = browser.navigate(f"https://{deployment.domain}/")
            assert not result.blocked
        assert sum(1 for e in extension.events if e.kind == "validated") == 1

    def test_new_session_revalidates(self, deployment):
        browser, extension = deployment.make_user("u4", "10.2.0.14")
        browser.navigate(f"https://{deployment.domain}/")
        browser.new_session()
        browser.navigate(f"https://{deployment.domain}/")
        assert sum(1 for e in extension.events if e.kind == "validated") == 2

    def test_vcek_cache_survives_sessions(self, deployment):
        # Pin one platform via the per-node name (the service domain
        # round-robins across chips, each with its own VCEK).
        domain = f"node1.{deployment.domain}"
        browser, extension = deployment.make_user("u5", "10.2.0.15",
                                                  register_service=False)
        extension.register_site(domain, [deployment.build.expected_measurement])
        browser.navigate(f"https://{domain}/")
        fetches_before = extension.kds.fetches
        browser.new_session()
        browser.navigate(f"https://{domain}/")
        assert extension.kds.fetches == fetches_before  # served from cache

    def test_user_without_extension_still_browses(self, deployment):
        browser, _ = deployment.make_user("u6", "10.2.0.16", with_extension=False)
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.response.status == 200

    def test_any_node_serves_attested_sessions(self, deployment):
        # Per-node domains: every fleet member passes validation.
        for index in range(3):
            browser, extension = deployment.make_user(
                f"u7-{index}", f"10.2.0.{17 + index}"
            )
            domain = f"node{index}.{deployment.domain}"
            extension.register_site(
                domain, [deployment.build.expected_measurement]
            )
            result = browser.navigate(f"https://{domain}/")
            assert not result.blocked, result.block_reason

    def test_sessions_roam_across_fleet_nodes(self, deployment):
        # DNS round-robins the fleet; reconnections may land on another
        # node — harmless precisely because the TLS identity is shared
        # (the design rationale of section 3.4.6).
        browser, extension = deployment.make_user("u10", "10.2.0.22")
        url = f"https://{deployment.domain}/"
        assert not browser.navigate(url).blocked
        seen_ips = set()
        for _ in range(6):
            browser.client.close_all()  # force a reconnect + re-resolve
            result = browser.navigate(url)
            assert not result.blocked, result.block_reason
            seen_ips.add(result.connection.destination_ip)
        assert len(seen_ips) > 1  # genuinely roamed
        # ...and validation happened only once (pin stayed valid).
        assert sum(1 for e in extension.events if e.kind == "validated") == 1

    def test_opportunistic_discovery(self, deployment):
        browser, extension = deployment.make_user(
            "u8", "10.2.0.20", register_service=False
        )
        browser.navigate(f"https://{deployment.domain}/")
        assert any(e.kind == "discovered" for e in extension.events)


class TestWellKnownEndpoint:
    def test_report_binds_tls_key(self, deployment):
        browser, _ = deployment.make_user("u9", "10.2.0.21", with_extension=False)
        response, info = browser.client.get(
            f"https://{deployment.domain}{WELL_KNOWN_ATTESTATION_PATH}"
        )
        report = decode_attestation_payload(response.body)
        assert report.report_data == report_data_for(
            info.peer_public_key.fingerprint()
        )
        assert report.measurement == deployment.build.expected_measurement

    def test_bootstrap_endpoint_still_reachable(self, deployment):
        # The bootstrap port serves only self-authenticating bundles.
        probe = deployment.network.add_host("probe", "10.9.9.2")
        raw = probe.request(
            deployment.nodes[0].host.ip_address,
            BOOTSTRAP_PORT,
            HttpRequest("GET", "/revelio/csr-bundle").encode(),
        )
        from repro.core.key_sharing import ReportBundle
        from repro.net.http import HttpResponse

        bundle = ReportBundle.decode(HttpResponse.decode(raw).body)
        assert bundle.binding_ok()
        deployment.network.remove_host("10.9.9.2")


class TestPersistentState:
    def test_reboot_reopens_sealed_volume(self, registry_and_pins):
        from repro.build import build_revelio_image
        from repro.core import RevelioDeployment
        from repro.net.latency import ZERO_LATENCY
        from tests.conftest import make_spec

        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        deployment = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"reboot-test"
        )
        deployment.launch_fleet()
        deployed = deployment.nodes[0]
        deployed.vm.storage["data"].write_block(5, b"\x77" * 4096)
        deployed.vm.shutdown()

        # Relaunch on the same host with the persisted disk.
        vm2 = deployed.hypervisor.launch(
            build.image, name=deployed.vm.name, reuse_disk=True
        )
        vm2.boot()
        assert not vm2.first_boot
        assert vm2.storage["data"].read_block(5) == b"\x77" * 4096

    def test_different_image_cannot_unseal(self, registry_and_pins):
        from repro.build import build_revelio_image
        from repro.core import RevelioDeployment
        from repro.net.latency import ZERO_LATENCY
        from repro.virt.vm import BootFailure
        from tests.conftest import make_spec

        registry, pins = registry_and_pins
        build = build_revelio_image(make_spec(registry, pins))
        evil_build = build_revelio_image(
            make_spec(registry, pins,
                      extra_files={"/opt/backdoor": b"evil"})
        )
        deployment = RevelioDeployment(
            build, num_nodes=1, latency=ZERO_LATENCY, seed=b"unseal-test"
        )
        deployment.launch_fleet()
        deployed = deployment.nodes[0]
        deployed.vm.shutdown()

        # A *different* (backdoored) image relaunched over the same disk
        # derives a different sealing key and cannot open the volume.
        # (The verity rootfs also fails first: the disk carries the
        # honest rootfs but the evil cmdline's root hash differs...
        # so tamper the disk to match the evil image except the data
        # partition, i.e. just launch evil image with fresh disk but
        # restore the old data partition.)
        old_disk = deployed.hypervisor.disk_store[deployed.vm.name]
        evil_vm = deployed.hypervisor.launch(evil_build.image, name="evil-vm")

        # Copy the sealed data partition from the old disk into the
        # evil VM's disk (offline attack on persistent state).
        from repro.storage.partition import PartitionTable

        old_table = PartitionTable.read_from(old_disk)
        old_data = old_table.open(old_disk, "data")
        new_table = PartitionTable.read_from(evil_vm.disk)
        new_data = new_table.open(evil_vm.disk, "data")
        for block in range(min(old_data.num_blocks, new_data.num_blocks)):
            new_data.write_block(block, old_data.read_block(block))

        with pytest.raises(BootFailure, match="master key|LUKS"):
            evil_vm.boot()
