"""The security analysis of paper section 6.1, executed end to end.

Every attack the paper discusses is actually mounted here via the
untrusted hypervisor / malicious provider hooks, and the test asserts
the defence the paper claims: failed boots, failed attestations, or
the web extension flagging the access.
"""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.core.key_sharing import ReportBundle
from repro.core.sp_node import ProvisioningError
from repro.core.trusted_registry import StaticRegistry
from repro.net.latency import ZERO_LATENCY
from repro.amd.verify import AttestationError
from repro.virt.firmware import build_firmware
from repro.virt.hypervisor import LaunchAttack
from repro.virt.vm import BootFailure
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def build(registry_and_pins):
    registry, pins = registry_and_pins
    return build_revelio_image(make_spec(registry, pins))


def fresh_deployment(build, seed, num_nodes=1):
    return RevelioDeployment(
        build, num_nodes=num_nodes, latency=ZERO_LATENCY, seed=seed
    )


class TestModifiedBootComponents:
    """6.1.1: loading a modified kernel or initrd."""

    def test_wrong_kernel_halts_boot(self, build):
        deployment = fresh_deployment(build, b"atk-kernel")
        from repro.virt.image import KernelBlob

        evil = KernelBlob("evil", "6.6.6").encode()
        with pytest.raises(BootFailure, match="kernel"):
            deployment.launch_fleet(
                attack_for=lambda i: LaunchAttack(
                    replace_kernel=evil, inject_expected_hashes=True
                )
            )

    def test_cmdline_with_forged_root_hash_halts_boot(self, build):
        deployment = fresh_deployment(build, b"atk-cmdline")
        evil_cmdline = build.image.cmdline.replace(
            build.root_hash.hex(), "00" * 32
        )
        with pytest.raises(BootFailure, match="cmdline"):
            deployment.launch_fleet(
                attack_for=lambda i: LaunchAttack(
                    replace_cmdline=evil_cmdline, inject_expected_hashes=True
                )
            )

    def test_honestly_hashed_evil_kernel_fails_attestation(self, build):
        # The host injects matching hashes for the evil blobs: the VM
        # boots, but its measurement deviates and the SP refuses it.
        deployment = fresh_deployment(build, b"atk-kernel2")
        from repro.virt.image import InitrdDescriptor

        evil_initrd = InitrdDescriptor(
            init_steps=("verity-rootfs", "network-lockdown", "dm-crypt-data",
                        "identity-creation", "start-services"),
            parameters={"rootfs_partition": "rootfs",
                        "verity_partition": "verity",
                        "data_partition": "data",
                        "backdoor": "yes"},
        ).encode()
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(replace_initrd=evil_initrd)
        )
        deployment.create_sp_node()
        with pytest.raises(AttestationError) as excinfo:
            deployment.sp.provision_fleet([deployment.node_ip(0)])
        assert excinfo.value.reason == "measurement_mismatch"

    def test_malicious_firmware_fails_attestation(self, build):
        deployment = fresh_deployment(build, b"atk-ovmf")
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                replace_firmware_template=build_firmware(verify_hashes=False)
            )
        )
        deployment.create_sp_node()
        with pytest.raises(AttestationError) as excinfo:
            deployment.sp.provision_fleet([deployment.node_ip(0)])
        assert excinfo.value.reason == "measurement_mismatch"


class TestRootfsTampering:
    """6.1.2: tampering with the root filesystem."""

    def test_tampered_rootfs_fails_boot(self, build):
        deployment = fresh_deployment(build, b"atk-rootfs")

        def tamper(disk):
            # Flip one bit somewhere inside the rootfs partition.
            disk.corrupt(4096 * 3 + 123)

        with pytest.raises(BootFailure, match="integrity|root hash"):
            deployment.launch_fleet(
                attack_for=lambda i: LaunchAttack(tamper_disk=tamper)
            )

    def test_rebuilt_rootfs_with_fixed_hash_fails_attestation(
        self, build, registry_and_pins
    ):
        # The provider rebuilds the image with a backdoor and a *correct*
        # root hash for it; the VM boots, but measurement != golden.
        registry, pins = registry_and_pins
        evil_build = build_revelio_image(
            make_spec(registry, pins, extra_files={"/opt/backdoor": b"evil"})
        )
        deployment = fresh_deployment(evil_build, b"atk-rootfs2")
        deployment.launch_fleet()
        sp_host = deployment.network.add_host("sp-honest", "10.1.0.9")
        from repro.core.sp_node import ServiceProviderNode
        from repro.pki.certbot import CertbotClient

        honest_sp = ServiceProviderNode(
            host=sp_host,
            certbot=CertbotClient(deployment.acme, deployment.network.dns),
            kds=deployment._new_kds_client(),
            domain=deployment.domain,
            expected_measurements=[build.expected_measurement],  # honest golden
        )
        with pytest.raises(AttestationError) as excinfo:
            honest_sp.provision_fleet([deployment.node_ip(0)])
        assert excinfo.value.reason == "measurement_mismatch"


class TestRuntimeModification:
    """6.1.3: modifying the system during runtime."""

    def test_remote_access_blocked(self, build):
        deployment = fresh_deployment(build, b"atk-runtime1")
        deployment.launch_fleet()
        from repro.net.firewall import ConnectionRefused

        attacker = deployment.network.add_host("intruder", "10.9.9.9")
        node_ip = deployment.nodes[0].host.ip_address
        with pytest.raises(ConnectionRefused):
            attacker.request(node_ip, 22, b"ssh login attempt")

    def test_runtime_disk_tamper_detected_on_read(self, build):
        deployment = fresh_deployment(build, b"atk-runtime2")
        deployment.launch_fleet()
        deployed = deployment.nodes[0]
        from repro.storage.dm_verity import VerityError
        from repro.storage.partition import PartitionTable

        # Find a byte inside the rootfs partition and flip it while the
        # VM runs (the host can always write to the disk).
        table = PartitionTable.read_from(deployed.vm.disk)
        entry = next(e for e in table.entries if e.name == "rootfs")
        offset = (entry.first_block + 2) * 4096 + 5
        deployed.hypervisor.tamper_disk_at_runtime(deployed.vm, offset)
        with pytest.raises(VerityError):
            # Even a full rescan: dm-verity raises on the tampered block.
            deployed.vm.storage["verity"].verify_all()

    def test_single_bit_flip_anywhere_detected(self, build):
        deployment = fresh_deployment(build, b"atk-runtime3")
        deployment.launch_fleet()
        deployed = deployment.nodes[0]
        from repro.storage.dm_verity import VerityError
        from repro.storage.partition import PartitionTable

        table = PartitionTable.read_from(deployed.vm.disk)
        entry = next(e for e in table.entries if e.name == "rootfs")
        # Try several offsets across the partition.
        for block_offset in (0, entry.num_blocks // 2, entry.num_blocks - 1):
            snapshot = deployed.vm.disk.snapshot()
            deployed.hypervisor.tamper_disk_at_runtime(
                deployed.vm, (entry.first_block + block_offset) * 4096
            )
            with pytest.raises(VerityError):
                deployed.vm.storage["verity"].verify_all()
            deployed.vm.disk.restore(snapshot)


class TestRollback:
    """6.1.4: rollback attacks on the VM image."""

    def test_sp_rejects_revoked_measurement(self, build, registry_and_pins):
        registry, pins = registry_and_pins
        new_build = build_revelio_image(
            make_spec(registry, pins, version="2.0.0")
        )
        # Provider launches the *old* (buggy) image.
        deployment = fresh_deployment(build, b"atk-rollback")
        deployment.launch_fleet()
        deployment.create_sp_node(
            extra_measurements=[new_build.expected_measurement]
        )
        # The new image rolled out; the old measurement is revoked.
        deployment.sp.revoke_measurement(build.expected_measurement)
        with pytest.raises(AttestationError) as excinfo:
            deployment.sp.provision_fleet([deployment.node_ip(0)])
        assert excinfo.value.reason == "measurement_revoked"

    def test_extension_rejects_revoked_measurement(self, build):
        deployment = fresh_deployment(build, b"atk-rollback2", num_nodes=1)
        deployment.deploy()
        registry = StaticRegistry(
            golden={deployment.domain: [b"\x11" * 48]},
            revoked={deployment.domain: [build.expected_measurement]},
        )
        browser, extension = deployment.make_user(
            "rb-user", "10.2.0.30", register_service=False,
            trusted_registry=registry,
        )
        extension.register_site(deployment.domain, use_registry=True)
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert "revoked" in result.block_reason


class TestImpersonation:
    def test_sp_rejects_unapproved_chip(self, build):
        # A genuine SEV platform running the genuine image, but not one
        # of the provider's approved machines (a cuckoo attack).
        deployment = fresh_deployment(build, b"atk-chip", num_nodes=2)
        deployment.launch_fleet()
        sp_host = deployment.network.add_host("sp-pin", "10.1.0.8")
        from repro.core.sp_node import ServiceProviderNode
        from repro.pki.certbot import CertbotClient

        sp = ServiceProviderNode(
            host=sp_host,
            certbot=CertbotClient(deployment.acme, deployment.network.dns),
            kds=deployment._new_kds_client(),
            domain=deployment.domain,
            expected_measurements=[build.expected_measurement],
            approved_chip_ids=[
                deployment.nodes[0].vm.guest.processor.chip_id
            ],  # only node 0 approved
        )
        with pytest.raises(AttestationError) as excinfo:
            sp.provision_fleet([deployment.node_ip(1)])
        assert excinfo.value.reason == "chip_id_not_allowed"

    def test_sp_rejects_unapproved_ip(self, build):
        deployment = fresh_deployment(build, b"atk-ip")
        deployment.launch_fleet()
        sp_host = deployment.network.add_host("sp-ip", "10.1.0.7")
        from repro.core.sp_node import ServiceProviderNode
        from repro.pki.certbot import CertbotClient

        sp = ServiceProviderNode(
            host=sp_host,
            certbot=CertbotClient(deployment.acme, deployment.network.dns),
            kds=deployment._new_kds_client(),
            domain=deployment.domain,
            expected_measurements=[build.expected_measurement],
            approved_ips=["10.0.0.99"],
        )
        with pytest.raises(AttestationError) as excinfo:
            sp.provision_fleet([deployment.node_ip(0)])
        assert excinfo.value.reason == "ip_not_allowed"

    def test_leader_rejects_unattested_peer(self, build):
        # An attacker with the bootstrap protocol but no valid report
        # cannot extract the TLS private key from the leader.
        deployment = fresh_deployment(build, b"atk-peer", num_nodes=2)
        deployment.deploy()
        from repro.core import BOOTSTRAP_PORT
        from repro.crypto.drbg import HmacDrbg
        from repro.crypto.keys import PrivateKey
        from repro.net.http import HttpRequest, HttpResponse

        attacker_key = PrivateKey.generate_ecdsa(HmacDrbg(b"attacker"))
        # Reuse a genuine node's report but swap in the attacker's key.
        genuine_bundle = deployment.nodes[1].vm.identity.key_bundle()
        from dataclasses import replace

        forged = replace(genuine_bundle, payload=attacker_key.public_key().encode())
        attacker = deployment.network.add_host("key-thief", "10.9.9.8")
        raw = attacker.request(
            deployment.provisioning.leader_ip,
            BOOTSTRAP_PORT,
            HttpRequest(
                "POST", "/revelio/key-request", body=forged.encode()
            ).encode(),
        )
        response = HttpResponse.decode(raw)
        assert response.status == 403


class TestRedirectAndMitm:
    """Section 5.3.2: certificate swap / DNS redirect detection."""

    def _evil_endpoint(self, deployment, seed=b"evil-endpoint"):
        """A non-TEE host serving the domain with a CA-valid certificate
        (the malicious provider controls DNS, so ACME issues happily)."""
        from repro.crypto.drbg import HmacDrbg
        from repro.crypto.keys import PrivateKey
        from repro.crypto.x509 import CertificateSigningRequest, Name
        from repro.net.http import HttpResponse, HttpServer
        from repro.pki.certbot import CertbotClient

        rng = HmacDrbg(seed)
        evil_key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(
            Name(deployment.domain), evil_key, san=(deployment.domain,)
        )
        chain = CertbotClient(deployment.acme, deployment.network.dns).obtain_certificate(
            deployment.domain, csr
        )
        evil_host = deployment.network.add_host("evil-endpoint", "10.6.6.6")
        server = HttpServer("evil")
        server.add_route(
            "GET", "/", lambda r, c: HttpResponse.ok(b"<html>phish</html>")
        )
        server.serve_tls(evil_host, chain, evil_key, rng.fork(b"tls"))
        return evil_host

    def test_mid_session_redirect_detected(self, build):
        deployment = fresh_deployment(build, b"atk-redirect", num_nodes=1)
        deployment.deploy()
        browser, extension = deployment.make_user("victim", "10.2.0.40")
        first = browser.navigate(f"https://{deployment.domain}/")
        assert not first.blocked

        self._evil_endpoint(deployment)
        deployment.network.dns.redirect(deployment.domain, "10.6.6.6")
        browser.client.close_all()  # connection reset forces re-resolution

        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked
        assert "re-keyed" in result.block_reason or "unattested" in result.block_reason

    def test_fresh_session_redirect_detected(self, build):
        # Even on first contact, the evil endpoint has no attestation
        # report binding its TLS key, so validation fails.
        deployment = fresh_deployment(build, b"atk-redirect2", num_nodes=1)
        deployment.deploy()
        self._evil_endpoint(deployment, seed=b"evil2")
        deployment.network.dns.redirect(deployment.domain, "10.6.6.6")
        browser, extension = deployment.make_user("victim2", "10.2.0.41")
        result = browser.navigate(f"https://{deployment.domain}/")
        assert result.blocked

    def test_browser_without_extension_is_fooled(self, build):
        # The contrast case motivating Revelio: a plain browser accepts
        # the redirect because the CA-issued certificate is valid.
        deployment = fresh_deployment(build, b"atk-redirect3", num_nodes=1)
        deployment.deploy()
        self._evil_endpoint(deployment, seed=b"evil3")
        deployment.network.dns.redirect(deployment.domain, "10.6.6.6")
        browser, _ = deployment.make_user(
            "naive", "10.2.0.42", with_extension=False
        )
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked
        assert result.response.body == b"<html>phish</html>"

    def test_user_override_proceeds_with_warning(self, build):
        deployment = fresh_deployment(build, b"atk-override", num_nodes=1)
        deployment.deploy()
        self._evil_endpoint(deployment, seed=b"evil4")
        deployment.network.dns.redirect(deployment.domain, "10.6.6.6")
        browser, extension = deployment.make_user(
            "risk-taker", "10.2.0.43",
            user_override=lambda domain, reason: True,
        )
        result = browser.navigate(f"https://{deployment.domain}/")
        assert not result.blocked  # user chose to proceed...
        assert any(e.kind == "violation" for e in extension.events)

    def test_record_tampering_detected_by_tls(self, build):
        deployment = fresh_deployment(build, b"atk-mitm", num_nodes=1)
        deployment.deploy()
        browser, _ = deployment.make_user("mitm-victim", "10.2.0.44",
                                          with_extension=False)
        browser.navigate(f"https://{deployment.domain}/")

        def corrupt_records(src, dst, port, payload):
            if port == 443 and len(payload) > 40:
                mutated = bytearray(payload)
                mutated[-1] ^= 0x01
                return (src, dst, port, bytes(mutated))
            return (src, dst, port, payload)

        deployment.network.add_interceptor(corrupt_records)
        from repro.net.tls import TlsError

        with pytest.raises((TlsError, ConnectionError)):
            connection = browser.client.current_connection(deployment.domain)
            from repro.net.http import HttpRequest

            connection.request(HttpRequest("GET", "/").encode())
