"""Mixed-version fleets: the extra-golden-measurements mechanism.

During a rolling upgrade both image versions serve simultaneously; the
paper's design plants golden values at build time (section 5.3), so an
image that should trust its successor lists the successor's measurement
in its baked-in golden set (and vice versa).
"""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.core.guest import RevelioNode, golden_measurements_for
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY
from repro.virt.hypervisor import Hypervisor
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def builds(registry_and_pins):
    """v1 and v2 builds that each list the other as golden.

    The fixpoint is resolved the practical way: compute both plain
    measurements first, then rebuild each image with the *other*'s
    final measurement embedded.  (v2 embeds plain-v1's measurement is
    not enough — so we do one extra round: v1' embeds v2', where v2'
    embeds v1'.  A two-pass handshake: v2' embeds v1-with-v2-plain.)
    Simpler and fully deterministic: build v2 first, then v1 embedding
    v2's measurement, then REBUILD v2 embedding v1's measurement; v1
    then accepts v2-final via a one-directional link and v2-final
    accepts v1 — sufficient for the upgrade direction that matters
    (new leader attests old nodes and vice versa via own+extras).
    """
    registry, pins = registry_and_pins
    v2_plain = build_revelio_image(make_spec(registry, pins, version="2.0.0"))
    v1 = build_revelio_image(
        make_spec(
            registry, pins, version="1.0.0",
            extra_golden_measurements=(v2_plain.expected_measurement,),
        )
    )
    v2 = build_revelio_image(
        make_spec(
            registry, pins, version="2.0.0",
            extra_golden_measurements=(v1.expected_measurement,),
        )
    )
    return v1, v2, v2_plain


class TestGoldenConf:
    def test_extras_are_baked_and_measured(self, builds):
        v1, v2, v2_plain = builds
        assert v1.expected_measurement != v2.expected_measurement
        # Embedding goldens changes the measurement (it's in the rootfs).
        assert v2.expected_measurement != v2_plain.expected_measurement

    def test_node_golden_set_includes_extras(self, builds):
        v1, v2, v2_plain = builds
        deployment = RevelioDeployment(
            v1, num_nodes=1, latency=ZERO_LATENCY, seed=b"mixed-1"
        )
        deployment.launch_fleet()
        goldens = golden_measurements_for(deployment.nodes[0].vm)
        assert bytes(v1.expected_measurement) in [bytes(m) for m in goldens]
        assert bytes(v2_plain.expected_measurement) in [bytes(m) for m in goldens]


class TestMixedFleetProvisioning:
    def test_v1_leader_shares_key_with_v2_plain_node(self, builds):
        """A v1 fleet admits a v2-plain node.

        The v1 leader accepts v2-plain via its *baked* golden extras;
        the v2-plain node (whose baked set only holds itself) accepts
        the v1 leader via a *trusted registry* — the paper's runtime
        alternative to hard-coded values (section 5.3).
        """
        from repro.core.trusted_registry import StaticRegistry

        v1, _, v2_plain = builds
        deployment = RevelioDeployment(
            v1, num_nodes=2, latency=ZERO_LATENCY, seed=b"mixed-2"
        )
        deployment.launch_fleet()

        # Hand-launch a v2-plain node into the same world, configured
        # with a registry that endorses both versions.
        registry = StaticRegistry(
            golden={
                deployment.domain: [
                    v1.expected_measurement,
                    v2_plain.expected_measurement,
                ]
            }
        )
        chip = deployment.amd.provision_chip("mixed-chip")
        hypervisor = Hypervisor(chip, HmacDrbg(b"mixed-hv"))
        vm = hypervisor.launch(v2_plain.image, ip_address="10.0.0.50")
        vm.boot()
        host = deployment.network.add_host("v2-node", "10.0.0.50",
                                           firewall=vm.firewall)
        RevelioNode(vm, host, deployment._new_kds_client(), deployment.latency,
                    trusted_registry=registry)

        deployment.create_sp_node(
            extra_measurements=[v2_plain.expected_measurement]
        )
        deployment.sp.approved_chip_ids.append(chip.chip_id)
        deployment.sp.approved_ips.add("10.0.0.50")

        result = deployment.sp.provision_fleet(
            [deployment.node_ip(0), deployment.node_ip(1), "10.0.0.50"]
        )
        assert len(result.attested) == 3
        # All three serve the same shared certificate.
        deployment.provisioning = result
        deployment.network.dns.register(deployment.domain,
                                        [deployment.node_ip(0)])
        browser, extension = deployment.make_user(
            "mixed-user", "10.2.7.1", register_service=False
        )
        extension.register_site(
            deployment.domain,
            [v1.expected_measurement, v2_plain.expected_measurement],
        )
        assert not browser.navigate(f"https://{deployment.domain}/").blocked

    def test_unrelated_image_still_rejected_by_leader(self, builds,
                                                      registry_and_pins):
        """The golden-extras mechanism is an allow-list, not a bypass:
        an image absent from it cannot obtain the key."""
        v1, _, _ = builds
        registry, pins = registry_and_pins
        rogue_build = build_revelio_image(
            make_spec(registry, pins, version="6.6.6",
                      extra_files={"/opt/rogue": b"x"})
        )
        deployment = RevelioDeployment(
            v1, num_nodes=1, latency=ZERO_LATENCY, seed=b"mixed-3"
        )
        deployment.launch_fleet()
        deployment.create_sp_node()
        deployment.provision_certificates()

        chip = deployment.amd.provision_chip("rogue-chip")
        hypervisor = Hypervisor(chip, HmacDrbg(b"rogue-hv"))
        vm = hypervisor.launch(rogue_build.image, ip_address="10.0.0.66")
        vm.boot()
        host = deployment.network.add_host("rogue", "10.0.0.66",
                                           firewall=vm.firewall)
        rogue_node = RevelioNode(vm, host, deployment._new_kds_client(),
                                 deployment.latency)
        # The rogue asks the leader for the key directly.
        from repro.core import BOOTSTRAP_PORT
        from repro.net.http import HttpRequest, HttpResponse

        raw = host.request(
            deployment.provisioning.leader_ip,
            BOOTSTRAP_PORT,
            HttpRequest(
                "POST", "/revelio/key-request",
                body=vm.identity.key_bundle().encode(),
            ).encode(),
        )
        assert HttpResponse.decode(raw).status == 403
        assert not rogue_node.serving
