"""Integration fixtures: a fully deployed Revelio world."""

import pytest

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def deployment(registry_and_pins):
    """Three Revelio nodes, provisioned, certificates installed."""
    registry, pins = registry_and_pins
    build = build_revelio_image(make_spec(registry, pins))
    return RevelioDeployment(build, num_nodes=3, latency=ZERO_LATENCY).deploy()
