"""A tour of the implemented extension points beyond the paper's
prototype: the integrations its related-work section names as
compatible (RA-TLS, vTPM runtime monitoring) and the TEE portability
claim (TDX + ARM CCA backends behind one verification interface).

Run:  python examples/extensions_tour.py
"""

import hashlib

from _common import banner, boundary_node_spec, sample_registry

from repro.build import DEFAULT_INIT_STEPS, NetworkPolicy, build_revelio_image
from repro.core import RevelioDeployment
from repro.core.ra_tls import RA_TLS_PORT, RaTlsError, ra_tls_connect, serve_ra_tls
from repro.crypto.drbg import HmacDrbg
from repro.net.http import HttpRequest, HttpResponse
from repro.vtpm import RuntimeMonitor, VtpmError, measure_service_start, produce_evidence


def ra_tls_section(registry, pins):
    banner("RA-TLS: attestation evidence inside the TLS certificate")
    build = build_revelio_image(
        boundary_node_spec(
            registry, pins,
            network_policy=NetworkPolicy(
                allowed_inbound_ports=(443, 8080, RA_TLS_PORT)
            ),
        )
    )
    deployment = RevelioDeployment(build, num_nodes=1, seed=b"ext-ra").deploy()
    serve_ra_tls(deployment.nodes[0].node)
    client = deployment.network.add_host("m2m-client", "10.5.0.1")

    connection = ra_tls_connect(
        client, deployment.node_ip(0), RA_TLS_PORT,
        f"{deployment.nodes[0].vm.name}.ra-tls",
        deployment._new_kds_client(),
        [build.expected_measurement],
        HmacDrbg(b"m2m"),
    )
    response = HttpResponse.decode(connection.request(HttpRequest("GET", "/").encode()))
    print(f"  CA-less attested channel established; GET / -> {response.status}")
    print("  trust chain: AMD ARK -> VCEK -> report -> certificate key")

    try:
        ra_tls_connect(
            client, deployment.node_ip(0), RA_TLS_PORT,
            f"{deployment.nodes[0].vm.name}.ra-tls",
            deployment._new_kds_client(),
            [b"\x00" * 48],  # wrong golden value
            HmacDrbg(b"m2m2"),
        )
    except RaTlsError as error:
        print(f"  wrong golden value rejected: {error}")


def vtpm_section(registry, pins):
    banner("vTPM: runtime monitoring (the e-vTPM extension)")
    nginx, backdoor = b"\x7fELF-nginx", b"\x7fELF-backdoor"
    build = build_revelio_image(
        boundary_node_spec(
            registry, pins, init_steps=DEFAULT_INIT_STEPS + ("vtpm-init",)
        )
    )
    deployment = RevelioDeployment(build, num_nodes=1, seed=b"ext-vtpm")
    deployment.launch_fleet()
    vm = deployment.nodes[0].vm
    monitor = RuntimeMonitor(
        deployment._new_kds_client(),
        build.expected_measurement,
        allowed_service_digests=[hashlib.sha256(nginx).digest()],
    )

    measure_service_start(vm, "nginx", nginx)
    nonce = b"challenge-0001"
    monitor.verify(produce_evidence(vm, nonce), nonce, now=0)
    print("  clean runtime state: quote + event log verified against allow-list")

    measure_service_start(vm, "backdoor", backdoor)
    nonce = b"challenge-0002"
    try:
        monitor.verify(produce_evidence(vm, nonce), nonce, now=0)
    except VtpmError as error:
        print(f"  rogue service start detected: {error}")


def portability_section():
    banner("TEE portability: SNP, TDX, and CCA behind one verifier")
    from repro.amd.kds import KeyDistributionServer
    from repro.amd.policy import REVELIO_POLICY
    from repro.amd.secure_processor import AmdKeyInfrastructure
    from repro.cca import ArmInfrastructure
    from repro.core.kds_client import KdsClient
    from repro.net.latency import ZERO_LATENCY, SimClock
    from repro.tdx import IntelInfrastructure, ProvisioningCertificationService
    from repro.tee import (
        KIND_CCA, KIND_SEV_SNP, KIND_TDX,
        TeeVerifier, cca_evidence, snp_evidence, tdx_evidence,
    )

    amd = AmdKeyInfrastructure(HmacDrbg(b"tour-amd"))
    intel = IntelInfrastructure(HmacDrbg(b"tour-intel"))
    arm = ArmInfrastructure(HmacDrbg(b"tour-arm"))
    chip = amd.provision_chip("tour-chip")
    td_platform = intel.provision_platform("tour-tdx")
    cca_platform = arm.provision_platform("tour-cca")
    cpak = arm.cpak_certificate(cca_platform)

    verifier = TeeVerifier(
        {
            KIND_SEV_SNP: KdsClient(KeyDistributionServer(amd), SimClock(),
                                    ZERO_LATENCY),
            KIND_TDX: ProvisioningCertificationService(intel),
            KIND_CCA: (lambda pid: cpak, [arm.root.certificate]),
        }
    )
    print(f"  verifier supports: {', '.join(verifier.supported_kinds())}")

    challenge = b"\x42" * 64
    workloads = {
        "SEV-SNP guest": (
            lambda: chip.launch_vm(b"revelio-image", REVELIO_POLICY),
            lambda g: (snp_evidence(g.get_report(challenge)), g.measurement),
        ),
        "TDX trust domain": (
            lambda: td_platform.launch_td(b"revelio-image"),
            lambda t: (tdx_evidence(t.get_quote(challenge)), t.mrtd),
        ),
        "CCA realm": (
            lambda: cca_platform.launch_realm(b"revelio-image"),
            lambda r: (cca_evidence(r.attest(challenge)), r.rim),
        ),
    }
    for name, (launch, evidence_of) in workloads.items():
        workload = launch()
        evidence, golden = evidence_of(workload)
        verified = verifier.verify(
            evidence, now=0, expected_measurements=[golden],
            expected_report_data=challenge,
        )
        print(f"  {name:<18s} verified: measurement "
              f"{verified.measurement.hex()[:24]}... [{verified.kind}]")


def main():
    registry, pins = sample_registry()
    ra_tls_section(registry, pins)
    vtpm_section(registry, pins)
    portability_section()
    banner("Done")


if __name__ == "__main__":
    main()
