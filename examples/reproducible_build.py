"""Reproducible builds and delegated verification (paper §3.4.1, §3.4.7).

Shows the verifiability story end to end:

* two independent parties rebuild the image from the same pinned
  sources and arrive at bit-identical golden values,
* any change — a file, the network policy, a package — shifts the
  measurement,
* a supply-chain tamper of the package registry is caught by digest
  pinning,
* less technical users delegate: an auditor signs golden values, and a
  DAO votes on them (with revocation for rollback protection).

Run:  python examples/reproducible_build.py
"""

from _common import banner, boundary_node_spec, sample_registry

from repro.build import NetworkPolicy, PackageError, build_revelio_image
from repro.core.trusted_registry import Auditor, AuditorRegistry, DaoRegistry
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey


def main():
    banner("Two independent parties rebuild from sources")
    registry_a, pins_a = sample_registry()
    registry_b, pins_b = sample_registry()
    build_provider = build_revelio_image(boundary_node_spec(registry_a, pins_a))
    build_auditor = build_revelio_image(boundary_node_spec(registry_b, pins_b))
    same = build_provider.expected_measurement == build_auditor.expected_measurement
    print(f"provider measurement: {build_provider.expected_measurement.hex()[:40]}...")
    print(f"auditor  measurement: {build_auditor.expected_measurement.hex()[:40]}...")
    print(f"bit-identical:        {same}")
    print(f"root hash identical:  "
          f"{build_provider.root_hash == build_auditor.root_hash}")

    banner("Every relevant change shifts the measurement")
    variants = {
        "added file /opt/backdoor": boundary_node_spec(
            registry_a, pins_a, extra_files={"/opt/backdoor": b"evil"}
        ),
        "ssh enabled in network policy": boundary_node_spec(
            registry_a, pins_a,
            network_policy=NetworkPolicy(ssh_enabled=True,
                                         allowed_inbound_ports=(443, 8080, 22)),
        ),
        "version bump to 1.0.1": boundary_node_spec(
            registry_a, pins_a, version="1.0.1"
        ),
        "init step removed": boundary_node_spec(
            registry_a, pins_a,
            init_steps=("verity-rootfs", "identity-creation", "start-services"),
        ),
    }
    base = build_provider.expected_measurement
    for what, spec in variants.items():
        measurement = build_revelio_image(spec).expected_measurement
        print(f"  {what:<36s} changed: {measurement != base}")

    banner("Supply-chain tamper caught by digest pinning")
    registry_a.tamper("nginx", "1.24.0", {"/usr/sbin/nginx": b"backdoored"})
    try:
        build_revelio_image(boundary_node_spec(registry_a, pins_a))
        print("  build succeeded?!")
    except PackageError as error:
        print(f"  build refused: {error}")

    banner("Delegation 1: an auditing company signs golden values")
    auditor = Auditor(PrivateKey.generate_ecdsa(HmacDrbg(b"auditor")),
                      name="TrustWatch Ltd")
    store = AuditorRegistry(auditor.public_key)
    store.ingest(auditor.endorse("ic-gateway.example", base))
    print(f"  golden values for ic-gateway.example: "
          f"{[m.hex()[:16] + '...' for m in store.golden_measurements('ic-gateway.example')]}")
    store.ingest(auditor.revoke("ic-gateway.example", base))
    print(f"  after revocation: "
          f"{store.golden_measurements('ic-gateway.example') or '{}'} "
          f"(revoked: {len(store.revoked_measurements('ic-gateway.example'))})")

    banner("Delegation 2: an on-chain DAO votes (NNS-style)")
    dao = DaoRegistry(members=["alice", "bob", "carol", "dave", "erin"])
    proposal = dao.propose("ic-gateway.example", base)
    print(f"  proposal #{proposal}: endorse {base.hex()[:16]}... "
          f"(threshold {dao.threshold}/{len(dao.members)})")
    for voter in ("alice", "bob"):
        dao.vote(proposal, voter, True)
        print(f"  {voter} votes yes -> "
              f"golden: {bool(dao.golden_measurements('ic-gateway.example'))}")
    dao.vote(proposal, "carol", True)
    print(f"  carol votes yes -> "
          f"golden: {bool(dao.golden_measurements('ic-gateway.example'))}")


if __name__ == "__main__":
    main()
