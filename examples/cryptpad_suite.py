"""Use case 1 (paper §4.1): an end-to-end-encrypted collaboration suite
on a Revelio VM.

Demonstrates:

* pads encrypted client-side; the server (and the cloud provider
  snooping its memory/disk) only ever sees ciphertext,
* pad storage sealed to the VM's measurement — persists across reboots
  of the identical image, unreadable by any other image,
* the gap Revelio closes: users can attest the *server-side code*
  (including the JavaScript it ships) before typing a single character.

Run:  python examples/cryptpad_suite.py
"""

from _common import banner, cryptpad_spec, sample_registry

from repro.apps import CryptPadClient, CryptPadError, CryptPadServer
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto.drbg import HmacDrbg


def main():
    banner("Deploy the CryptPad server inside a Revelio VM")
    registry, pins = sample_registry()
    build = build_revelio_image(cryptpad_spec(registry, pins))
    deployment = RevelioDeployment(build, num_nodes=1, seed=b"cryptpad-example")
    server = CryptPadServer()
    deployment.launch_fleet(app_factory=server.install)
    deployment.create_sp_node()
    deployment.provision_certificates()
    print(f"service:  https://{deployment.domain}/")
    print(f"golden:   {build.expected_measurement.hex()[:32]}...")

    banner("Alice attests the service, then collaborates with Bob")
    alice_browser, alice_ext = deployment.make_user("alice", "10.2.0.10")
    page = alice_browser.navigate(f"https://{deployment.domain}/")
    print(f"attested before use:  {[e.kind for e in alice_ext.events]}")
    print(f"app shell served:     {page.response.body[:40]!r}...")

    alice = CryptPadClient(
        alice_browser.client, f"https://{deployment.domain}", HmacDrbg(b"alice")
    )
    pad_key = alice.create_pad("design-doc")
    alice.append("design-doc", "Alice: let's use SEV-SNP for the backend")
    print(f"pad key (URL fragment, never sent): {pad_key.hex()[:24]}...")

    bob_browser, _ = deployment.make_user("bob", "10.2.0.11")
    bob_browser.navigate(f"https://{deployment.domain}/")
    bob = CryptPadClient(
        bob_browser.client, f"https://{deployment.domain}", HmacDrbg(b"bob")
    )
    bob.open_pad("design-doc", pad_key)
    bob.append("design-doc", "Bob: agreed, and Revelio for attestation")
    print("pad contents as Alice sees them:")
    for line in alice.read("design-doc"):
        print(f"  | {line}")

    banner("What the curious provider sees (honest-but-curious model)")
    for op in server.snoop_ciphertexts("design-doc"):
        print(f"  ciphertext: {op.hex()[:64]}...")
    print("  (no plaintext recoverable without the pad key)")

    banner("An eavesdropper with a wrong key gets nothing")
    eve = CryptPadClient(
        bob_browser.client, f"https://{deployment.domain}", HmacDrbg(b"eve")
    )
    eve.open_pad("design-doc", b"\x00" * 32)
    try:
        eve.read("design-doc")
    except CryptPadError as error:
        print(f"  read failed as expected: {error}")

    banner("Sealed persistence across reboots (requirement F6)")
    deployed = deployment.nodes[0]
    deployed.vm.shutdown()
    rebooted = deployed.hypervisor.launch(
        build.image, name=deployed.vm.name, reuse_disk=True
    )
    rebooted.boot()
    reloaded = CryptPadServer()
    reloaded._storage = rebooted.storage["data"]
    reloaded._load()
    count = len(reloaded.snoop_ciphertexts("design-doc"))
    print(f"  identical image re-derived the sealing key; {count} ops recovered")
    print("  (a tampered image would fail to open the volume - see tests)")


if __name__ == "__main__":
    main()
