"""Use case 2 (paper §4.2, Fig. 2): a Revelio-protected Internet
Computer boundary node.

Demonstrates:

* an IC subnet (4 replicas, BFT, threshold-signed responses) hosting a
  dapp in canisters,
* the boundary node translating browser HTTP into IC protocol messages,
* the service worker — served from the BN's *measured* rootfs —
  verifying subnet threshold signatures in the browser,
* why Revelio matters here: a forging BN is caught by the worker, and a
  BN shipping a verification-skipping worker is caught by attestation.

Run:  python examples/boundary_node.py
"""

from _common import banner, boundary_node_spec, sample_registry

from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto import encoding
from repro.ic import (
    AssetCanister,
    BoundaryNodeApp,
    BoundaryNodeError,
    KvCanister,
    ServiceWorker,
    Subnet,
    build_service_worker,
)
from repro.ic.boundary_node import SERVICE_WORKER_PATH


def main():
    banner("An IC subnet with a dapp (asset + key-value canisters)")
    subnet = Subnet(num_replicas=4, seed=b"bn-example")
    subnet.install_canister(
        "frontend",
        AssetCanister({"/index.html": b"<html><body>my dapp</body></html>"}),
    )
    subnet.install_canister("app", KvCanister())
    print(f"replicas: {subnet.num_replicas}, tolerates f={subnet.fault_tolerance}")
    print(f"subnet public key: {subnet.public_key.fingerprint().hex()[:32]}...")

    banner("Build + deploy the boundary node with the genuine worker")
    registry, pins = sample_registry()
    worker_blob = build_service_worker(subnet.public_key)
    build = build_revelio_image(
        boundary_node_spec(
            registry, pins, extra_files={SERVICE_WORKER_PATH: worker_blob}
        )
    )
    deployment = RevelioDeployment(build, num_nodes=2, seed=b"bn-example")
    app = BoundaryNodeApp(subnet)
    deployment.launch_fleet(app_factory=app.install)
    deployment.create_sp_node()
    deployment.provision_certificates()
    print(f"boundary nodes at https://{deployment.domain}/")

    banner("A user attests the BN, installs the worker, talks to the IC")
    browser, extension = deployment.make_user()
    page = browser.navigate(f"https://{deployment.domain}/")
    print(f"attestation: {[e.kind for e in extension.events]}")
    print(f"dapp page (direct translation): {page.response.body.decode()!r}")

    sw_response, _ = browser.client.get(f"https://{deployment.domain}/sw.js")
    worker = ServiceWorker.decode(sw_response.body)
    print(f"worker v{worker.version}, verifies signatures: "
          f"{worker.verify_signatures}")

    base = f"https://{deployment.domain}"
    worker.call(
        browser.client, base, "app", "put",
        encoding.encode({"key": "motd", "value": b"hello from the IC"}),
        kind="update",
    )
    raw = worker.call(browser.client, base, "app", "get", b"motd")
    print(f"certified canister read: {encoding.decode(raw)['value'].decode()!r}")

    banner("Byzantine replica? Still fine (threshold certification)")
    subnet.replicas[1].corrupt_execution = True
    raw = worker.call(browser.client, base, "app", "get", b"motd")
    print(f"with 1 corrupt replica:  {encoding.decode(raw)['value'].decode()!r}")
    subnet.replicas[1].corrupt_execution = False

    banner("A forging boundary node is caught by the worker")
    app.forge_responses = True
    try:
        worker.call(browser.client, base, "app", "get", b"motd")
    except BoundaryNodeError as error:
        print(f"worker rejected response: {error}")
    app.forge_responses = False

    banner("A malicious worker image is caught by Revelio attestation")
    evil_worker = build_service_worker(subnet.public_key, verify_signatures=False)
    evil_build = build_revelio_image(
        boundary_node_spec(
            registry, pins, extra_files={SERVICE_WORKER_PATH: evil_worker}
        )
    )
    print(f"honest measurement: {build.expected_measurement.hex()[:32]}...")
    print(f"evil measurement:   {evil_build.expected_measurement.hex()[:32]}...")
    print("=> the extension, pinning the honest golden value, blocks the site")
    print("   (executed end to end in tests/ic/test_boundary_node.py)")


if __name__ == "__main__":
    main()
