"""Fleet lifecycle operations: renewal, rollout, revocation, migration.

The day-2 operations behind the paper's remarks:

* certificate renewal every ~90 days (section 6.3.2) — same key pair,
  so attested browser sessions never notice,
* image rollout with golden-value revocation (section 6.1.4) — the old
  image can neither rejoin the fleet nor pass end-user attestation,
* attested sealed-state migration — the old VM releases its volume key
  only to a successor that attests as the endorsed new image.

* a seeded end-user session storm riding through a rolling rollout
  behind the attestation-aware fleet gateway — zero failed requests.

Run:  python examples/fleet_operations.py
Scale the storm with REVELIO_FLEET_SESSIONS (default 10000).
"""

import os

from _common import banner, boundary_node_spec, sample_registry

from repro.build import build_revelio_image
from repro.core import (
    RevelioDeployment,
    migrate_sealed_state,
    renew_certificate,
    roll_out_image,
)
from repro.fleet import FleetGateway, FleetWorkload, HealthMonitor, UserPool
from repro.fleet.drain import rolling_rollout
from repro.sim import EventKernel, SimRng
from repro.sim.kernel import sleep


def main():
    registry, pins = sample_registry()
    build_v1 = build_revelio_image(
        boundary_node_spec(registry, pins, version="1.0.0")
    )
    build_v2 = build_revelio_image(
        boundary_node_spec(registry, pins, version="2.0.0")
    )

    banner("Day 0: deploy v1.0.0")
    deployment = RevelioDeployment(build_v1, num_nodes=2, seed=b"fleet-ops").deploy()
    browser, extension = deployment.make_user()
    assert not browser.navigate(f"https://{deployment.domain}/").blocked
    print(f"  2 nodes at https://{deployment.domain}/, user attested v1")
    print(f"  v1 golden: {build_v1.expected_measurement.hex()[:24]}...")

    banner("Day ~90: certificate renewal (same key pair)")
    old_leaf = deployment.provisioning.certificate_chain[0]
    renew_certificate(deployment)
    new_leaf = deployment.provisioning.certificate_chain[0]
    print(f"  serial {old_leaf.serial} -> {new_leaf.serial}, "
          f"key unchanged: {new_leaf.public_key == old_leaf.public_key}")
    result = browser.navigate(f"https://{deployment.domain}/")
    print(f"  user's pinned session still valid: {not result.blocked}")

    banner("Day N: stage the sealed-state migration to v2")
    old_node = deployment.nodes[0]
    old_node.vm.storage["data"].write_block(1, b"customer-data".ljust(4096, b"\0"))
    successor = old_node.hypervisor.launch(build_v2.image, name="v2-successor")
    successor.boot()
    blocks = migrate_sealed_state(
        old_node,
        successor,
        deployment._new_kds_client,
        now=deployment.network.clock.epoch_seconds(),
        old_accepts=[build_v2.expected_measurement],
        new_accepts=[build_v1.expected_measurement],
    )
    recovered = successor.storage["data"].read_block(1).rstrip(b"\0")
    print(f"  {blocks} blocks handed over after mutual attestation")
    print(f"  successor reads: {recovered.decode()!r}")

    banner("Day N: roll out v2.0.0 and revoke v1's golden value")
    rollout = roll_out_image(deployment, build_v2)
    print(f"  fleet now measures {rollout.new_measurement.hex()[:24]}...")
    print(f"  v1 revoked at the SP: "
          f"{rollout.old_measurement in deployment.sp.revoked_measurements}")

    banner("The consequences, end to end")
    # A user still pinning only the v1 golden is protected from... v2!
    # (They must update their golden value — e.g. via the registry.)
    stale_result = browser.navigate(f"https://{deployment.domain}/")
    print(f"  stale-golden user blocked: {stale_result.blocked} "
          f"('{stale_result.block_reason[:48]}...')" if stale_result.blocked else "")
    fresh_browser, fresh_ext = deployment.make_user(
        "updated-user", "10.2.0.9", register_service=False
    )
    fresh_ext.register_site(deployment.domain, [build_v2.expected_measurement])
    print(f"  updated-golden user accepted: "
          f"{not fresh_browser.navigate(f'https://{deployment.domain}/').blocked}")

    sessions = int(os.environ.get("REVELIO_FLEET_SESSIONS", "10000"))
    banner(f"Under load: {sessions}-session storm through a rolling rollout")
    storm_deployment = RevelioDeployment(
        build_v1, num_nodes=4, seed=b"fleet-storm"
    ).deploy()
    kernel = EventKernel(storm_deployment.network.clock, SimRng(42))
    storm_deployment.network.enable_event_mode(kernel)
    gateway = FleetGateway.for_deployment(storm_deployment, kernel=kernel)
    assert all(v.ok for v in gateway.admit_all())
    pool = UserPool(
        storm_deployment,
        kernel,
        size=min(sessions, 250),
        # Riding through the rollout needs both goldens client-side.
        expected_measurements=[
            build_v1.expected_measurement, build_v2.expected_measurement
        ],
    )
    workload = FleetWorkload(kernel, gateway, pool, rng=SimRng(42))
    monitor = HealthMonitor(gateway, interval=10.0, reattest_every=120.0)
    monitor_process = kernel.spawn(monitor.process(), name="health")
    storm = kernel.spawn(
        workload.open_loop(sessions=sessions, arrival_rate=30.0), name="storm"
    )

    def delayed_rollout():
        yield sleep(10.0)
        result = yield from rolling_rollout(
            gateway, storm_deployment, build_v2, drain_poll=0.1
        )
        return result

    rollout_process = kernel.spawn(delayed_rollout(), name="rollout")
    while not (storm.finished and rollout_process.finished):
        kernel.run(until=kernel.clock.now + 20.0)
    monitor_process.interrupt("storm over")
    kernel.run()

    snap = workload.snapshot()
    print(f"  {snap['requests_ok']}/{snap['requests_total']} requests ok, "
          f"{snap.get('requests_failed', 0)} failed, "
          f"{snap.get('requests_blocked', 0)} blocked")
    print(f"  all 4 nodes replaced in "
          f"{rollout_process.value.sim_seconds:.1f} sim s under load; "
          f"{gateway.counters.get('sessions_severed', 0)} sessions "
          f"transparently re-handshaked")
    print(f"  revisit p50 "
          f"{snap['latency.revisit.p50']:.1f} sim ms, "
          f"p99 all {snap['latency.all.p99']:.1f} sim ms")
    assert snap.get("requests_failed", 0) == 0
    assert all(
        b.requests_after_retired == 0 for b in gateway.backends.values()
    ), "a retired backend saw traffic"

    banner("Done")


if __name__ == "__main__":
    main()
