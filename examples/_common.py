"""Shared helpers for the example scripts: a sample package registry and
image specs for the two paper use cases."""

from repro.build import ImageSpec, Package, PackagePin, PackageRegistry


def sample_registry():
    """A registry with the software the use-case images install,
    published with pinned digests (the provider's CI did this)."""
    registry = PackageRegistry()
    pins = {}
    for package in [
        Package.create(
            "nginx",
            "1.24.0",
            files={
                "/usr/sbin/nginx": b"\x7fELF-nginx" + b"n" * 2000,
                "/etc/nginx/nginx.conf": b"server { listen 443 ssl; }",
            },
        ),
        Package.create(
            "cryptpad-server",
            "5.2.1",
            files={
                "/opt/cryptpad/server.js": b"// cryptpad server " + b"c" * 3000,
                "/opt/cryptpad/www/app.js": b"// e2ee client code " + b"a" * 1500,
            },
        ),
        Package.create(
            "ic-boundary-node",
            "0.9.0",
            files={
                "/opt/ic/boundary-node": b"\x7fELF-bn" + b"b" * 4000,
                "/opt/ic/service-worker.js": b"// placeholder, overridden",
            },
        ),
        Package.create(
            "revelio-agent",
            "1.0.0",
            files={"/usr/bin/revelio-agent": b"\x7fELF-agent" + b"r" * 1000},
        ),
    ]:
        digest = registry.publish(package)
        pins[package.name] = PackagePin(package.name, package.version, digest)
    return registry, pins


def boundary_node_spec(registry, pins, **overrides):
    """The Revelio-protected Boundary Node image (paper §4.2)."""
    kwargs = dict(
        name="boundary-node",
        version="1.0.0",
        registry=registry,
        package_pins=[pins[p] for p in ("nginx", "ic-boundary-node", "revelio-agent")],
        service_domain="ic-gateway.example",
        services=("https",),
        data_volume_blocks=32,
        # The BN starts many system services at boot (paper: 22.7 s total).
        base_boot_services=(
            ("systemd-units", 9.0),
            ("ic-replica-sync", 6.0),
            ("monitoring-agents", 2.7),
        ),
    )
    kwargs.update(overrides)
    return ImageSpec(**kwargs)


def cryptpad_spec(registry, pins, **overrides):
    """The Revelio-protected CryptPad server image (paper §4.1)."""
    kwargs = dict(
        name="cryptpad",
        version="1.0.0",
        registry=registry,
        package_pins=[pins[p] for p in ("nginx", "cryptpad-server", "revelio-agent")],
        service_domain="pads.example",
        services=("https",),
        data_volume_blocks=64,
        # CryptPad boots little beyond the server itself (paper: 10.2 s).
        base_boot_services=(("systemd-units", 3.0), ("node-runtime", 2.2)),
    )
    kwargs.update(overrides)
    return ImageSpec(**kwargs)


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
