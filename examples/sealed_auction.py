"""Use case 3: a sealed-bid auction on a Revelio VM.

The paper motivates Revelio for services "where the demand for the
service's integrity might be of key interest, like in auction sites,
lotteries and any form of e-commerce service" (section 4).  This
example shows the full trust story:

* bidders attest the auction house before bidding,
* bids are sealed to the attested TLS key (only TEE code opens them),
* the outcome is signed by that key; any bidder verifies it offline,
* the operator sees ciphertext only and cannot forge results.

Run:  python examples/sealed_auction.py
"""

from _common import banner, boundary_node_spec, sample_registry

from repro.apps import AuctionClient, AuctionError, AuctionServer
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto.drbg import HmacDrbg


def attested_bidder(deployment, name, index):
    browser, extension = deployment.make_user(name, f"10.2.9.{index}")
    result = browser.navigate(f"https://{deployment.domain}/")
    assert not result.blocked, result.block_reason
    print(f"  {name}: attested the auction house "
          f"({[e.kind for e in extension.events]})")
    return AuctionClient(
        browser.client,
        f"https://{deployment.domain}",
        result.connection.peer_public_key,  # the attested key
        HmacDrbg(name.encode()),
    )


def main():
    banner("Deploy the auction house inside a Revelio VM")
    registry, pins = sample_registry()
    build = build_revelio_image(
        boundary_node_spec(
            registry, pins, name="auction-house",
            service_domain="auctions.example", data_volume_blocks=96,
        )
    )
    deployment = RevelioDeployment(build, num_nodes=1, seed=b"auction-example")
    server = AuctionServer()
    deployment.launch_fleet(app_factory=server.install)
    deployment.create_sp_node()
    deployment.provision_certificates()
    print(f"  https://{deployment.domain}/ "
          f"(golden {build.expected_measurement.hex()[:24]}...)")

    banner("Three bidders attest, then place sealed bids")
    alice = attested_bidder(deployment, "alice", 1)
    bob = attested_bidder(deployment, "bob", 2)
    carol = attested_bidder(deployment, "carol", 3)

    alice.create_auction("rare-painting")
    alice.place_bid("rare-painting", "alice", 4_200)
    bob.place_bid("rare-painting", "bob", 5_100)
    carol.place_bid("rare-painting", "carol", 4_900)
    print("  3 sealed bids placed")

    banner("What the curious operator can see")
    for bidder, blob in server.snoop_sealed_bids("rare-painting").items():
        print(f"  {bidder}: {blob.hex()[:48]}... (ECIES to the attested key)")

    banner("Closing: the TEE opens bids, signs the outcome")
    outcome = alice.close_auction("rare-painting")
    print(f"  winner: {outcome.winner} at {outcome.winning_amount} "
          f"({outcome.num_bids} valid bids)")
    verified = outcome.verify(bob.service_key)
    print(f"  bob independently verifies the signature: {verified}")

    banner("A forged outcome fails verification")
    from dataclasses import replace

    forged = replace(outcome, winner="the-operator's-friend")
    print(f"  forged outcome verifies: {forged.verify(bob.service_key)}")

    banner("Done")


if __name__ == "__main__":
    main()
