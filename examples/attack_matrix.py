"""The security analysis of paper section 6.1, executed live.

Mounts every attack the paper discusses — through the untrusted
hypervisor, the malicious service provider, and the network adversary —
and prints which defence layer caught each one.

Run:  python examples/attack_matrix.py
"""

from _common import banner, boundary_node_spec, sample_registry

from repro.amd.verify import AttestationError
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.crypto.x509 import CertificateSigningRequest, Name
from repro.net.firewall import ConnectionRefused
from repro.net.http import HttpResponse, HttpServer
from repro.net.latency import ZERO_LATENCY
from repro.pki.certbot import CertbotClient
from repro.storage.dm_verity import VerityError
from repro.storage.partition import PartitionTable
from repro.virt.firmware import build_firmware
from repro.virt.hypervisor import LaunchAttack
from repro.virt.image import KernelBlob
from repro.virt.vm import BootFailure

RESULTS = []


def record(attack, caught_by, outcome):
    RESULTS.append((attack, caught_by, outcome))
    print(f"  [{'DETECTED' if caught_by else 'MISSED  '}] {attack}")
    print(f"             -> {outcome}")


def fresh(build, seed, nodes=1):
    return RevelioDeployment(build, num_nodes=nodes, latency=ZERO_LATENCY, seed=seed)


def main():
    registry, pins = sample_registry()
    build = build_revelio_image(boundary_node_spec(registry, pins))

    banner("6.1.1 Loading a modified kernel or initrd")
    deployment = fresh(build, b"m1")
    try:
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                replace_kernel=KernelBlob("evil", "6.6.6").encode(),
                inject_expected_hashes=True,
            )
        )
        record("substitute kernel, keep honest hash table", False, "VM booted?!")
    except BootFailure as error:
        record("substitute kernel, keep honest hash table",
               "OVMF measured direct boot", f"boot halted: {error}")

    deployment = fresh(build, b"m2")
    deployment.launch_fleet(
        attack_for=lambda i: LaunchAttack(
            replace_kernel=KernelBlob("evil", "6.6.6").encode()
        )
    )
    deployment.create_sp_node()
    try:
        deployment.sp.provision_fleet([deployment.node_ip(0)])
        record("substitute kernel, inject matching hashes", False, "attested?!")
    except AttestationError as error:
        record("substitute kernel, inject matching hashes",
               "launch measurement", f"SP attestation failed: {error.reason}")

    deployment = fresh(build, b"m3")
    deployment.launch_fleet(
        attack_for=lambda i: LaunchAttack(
            replace_firmware_template=build_firmware(verify_hashes=False)
        )
    )
    deployment.create_sp_node()
    try:
        deployment.sp.provision_fleet([deployment.node_ip(0)])
        record("non-verifying (malicious) OVMF", False, "attested?!")
    except AttestationError as error:
        record("non-verifying (malicious) OVMF", "launch measurement",
               f"SP attestation failed: {error.reason}")

    banner("6.1.2 Tampering with the rootfs")
    deployment = fresh(build, b"m4")
    try:
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                tamper_disk=lambda disk: disk.corrupt(4096 * 3 + 7)
            )
        )
        record("flip one bit in the rootfs image", False, "booted?!")
    except BootFailure as error:
        record("flip one bit in the rootfs image", "dm-verity full verification",
               f"boot halted: {error}")

    banner("6.1.3 Modifying the system during runtime")
    deployment = fresh(build, b"m5")
    deployment.launch_fleet()
    attacker = deployment.network.add_host("intruder", "10.9.9.9")
    try:
        attacker.request(deployment.node_ip(0), 22, b"ssh")
        record("ssh into the running VM", False, "connected?!")
    except ConnectionRefused:
        record("ssh into the running VM", "measured network lockdown",
               "connection refused by firewall")

    deployed = deployment.nodes[0]
    table = PartitionTable.read_from(deployed.vm.disk)
    entry = next(e for e in table.entries if e.name == "rootfs")
    deployed.hypervisor.tamper_disk_at_runtime(
        deployed.vm, (entry.first_block + 1) * 4096
    )
    try:
        deployed.vm.storage["verity"].verify_all()
        record("host flips a disk bit under the running VM", False, "unnoticed?!")
    except VerityError as error:
        record("host flips a disk bit under the running VM",
               "dm-verity verify-on-read", f"I/O error raised: {error}")

    banner("6.1.4 Rollback to an obsolete image")
    new_build = build_revelio_image(
        boundary_node_spec(registry, pins, version="2.0.0")
    )
    deployment = fresh(build, b"m6")  # provider launches the OLD image
    deployment.launch_fleet()
    deployment.create_sp_node(extra_measurements=[new_build.expected_measurement])
    deployment.sp.revoke_measurement(build.expected_measurement)
    try:
        deployment.sp.provision_fleet([deployment.node_ip(0)])
        record("launch obsolete (buggy) image after rollout", False, "attested?!")
    except AttestationError as error:
        record("launch obsolete (buggy) image after rollout",
               "measurement revocation", f"SP refused: {error.reason}")

    banner("5.3.2 Certificate swap / DNS redirect (malicious provider)")
    deployment = fresh(build, b"m7")
    deployment.deploy()
    browser, extension = deployment.make_user()
    browser.navigate(f"https://{deployment.domain}/")

    rng = HmacDrbg(b"evil-endpoint")
    evil_key = PrivateKey.generate_ecdsa(rng)
    csr = CertificateSigningRequest.create(
        Name(deployment.domain), evil_key, san=(deployment.domain,)
    )
    chain = CertbotClient(deployment.acme, deployment.network.dns).obtain_certificate(
        deployment.domain, csr
    )
    evil_host = deployment.network.add_host("evil", "10.6.6.6")
    evil_server = HttpServer("evil")
    evil_server.add_route("GET", "/", lambda r, c: HttpResponse.ok(b"<html>phish</html>"))
    evil_server.serve_tls(evil_host, chain, evil_key, rng.fork(b"tls"))
    deployment.network.dns.redirect(deployment.domain, "10.6.6.6")
    browser.client.close_all()
    result = browser.navigate(f"https://{deployment.domain}/")
    if result.blocked:
        record("redirect domain to non-TEE host with valid CA cert",
               "web extension TLS-key pinning", result.block_reason)
    else:
        record("redirect domain to non-TEE host with valid CA cert",
               False, "user reached the phishing endpoint?!")

    banner("Summary")
    detected = sum(1 for _, caught, _ in RESULTS if caught)
    print(f"\n  {detected}/{len(RESULTS)} attacks detected, 0 missed"
          if detected == len(RESULTS)
          else f"\n  WARNING: {len(RESULTS) - detected} attacks went undetected!")
    for attack, caught_by, _ in RESULTS:
        print(f"  - {attack:<52s} [{caught_by or 'MISSED'}]")


if __name__ == "__main__":
    main()
