"""Quickstart: build a Revelio image, deploy a fleet, attest from a browser.

Walks the full paper pipeline (Fig. 3 + Fig. 4 + section 5.3.2):

1. reproducibly build a VM image and compute its golden measurement,
2. launch a 3-node fleet on simulated SEV-SNP hosts,
3. let the SP node attest the fleet and provision the shared TLS
   certificate via ACME,
4. visit the service with a browser running the Revelio web extension,
5. show what happens when the measurement doesn't match.

Run:  python examples/quickstart.py
"""

from _common import banner, boundary_node_spec, sample_registry

from repro.build import build_revelio_image
from repro.core import RevelioDeployment


def main():
    banner("1. Reproducible build (requirement F5)")
    registry, pins = sample_registry()
    build = build_revelio_image(boundary_node_spec(registry, pins))
    rebuild = build_revelio_image(boundary_node_spec(registry, pins))
    print(f"image:                {build.image.name}-{build.image.version}")
    print(f"dm-verity root hash:  {build.root_hash.hex()[:32]}...")
    print(f"golden measurement:   {build.expected_measurement.hex()[:32]}...")
    print(f"rebuild identical:    {rebuild.expected_measurement == build.expected_measurement}")

    banner("2. Fleet launch + SP provisioning (Fig. 3 / Fig. 4)")
    deployment = RevelioDeployment(build, num_nodes=3).deploy()
    print(f"domain:               {deployment.domain}")
    print(f"leader:               {deployment.provisioning.leader_ip}")
    print(f"nodes serving HTTPS:  {sum(d.node.serving for d in deployment.nodes)}/3")
    leaf = deployment.provisioning.certificate_chain[0]
    print(f"shared certificate:   CN={leaf.subject.common_name} "
          f"(issued by {leaf.issuer.common_name})")
    for phase, timing in deployment.provisioning.timings.items():
        print(f"  {phase:<26s} {timing.simulated_seconds * 1000:8.1f} ms (simulated)")

    banner("3. End-user attestation via the web extension (section 5.3.2)")
    browser, extension = deployment.make_user()
    result = browser.navigate(f"https://{deployment.domain}/")
    print(f"navigation blocked:   {result.blocked}")
    print(f"page:                 {result.response.body.decode()!r}")
    for event in extension.events:
        print(f"extension event:      [{event.kind}] {event.domain} {event.detail}")
    print(f"pinned TLS key:       "
          f"{extension.pinned_key_fingerprint(deployment.domain).hex()[:32]}...")

    banner("4. A user expecting a different measurement is protected")
    strict_browser, strict_extension = deployment.make_user(
        "strict-user", "10.2.0.2", register_service=False
    )
    strict_extension.register_site(deployment.domain, [b"\x00" * 48])
    blocked = strict_browser.navigate(f"https://{deployment.domain}/")
    print(f"navigation blocked:   {blocked.blocked}")
    print(f"reason:               {blocked.block_reason}")

    banner("Done")
    print("Every check above ran against real ECDSA-P384-signed attestation")
    print("reports, a real Merkle-tree-verified rootfs, and a real TLS stack -")
    print("all simulated in pure Python. See DESIGN.md for the architecture.")


if __name__ == "__main__":
    main()
