"""Naive vs fast-path ECDSA verification throughput.

Measures four verification strategies per curve:

``naive``
    The retained pre-fast-path verifier (``verify_rs_reference``): two
    independent double-and-add multiplications with per-op affine
    round-trips.
``fast_cold``
    The engine's first contact with a key — Strauss–Shamir over freshly
    built odd multiples (the point cache is reset before every round).
``fast_hot``
    The steady state for VCEK/ASK/ARK/site keys: fixed-base tables on
    both halves of ``u1*G + u2*Q``.  Distinct messages per round, so the
    signature cache never hits — this is pure EC speedup.
``memoized``
    Re-verifying an identical ``(key, message, signature)`` tuple — a
    signature-cache hit (what the extension does on every page load).

Writes ``BENCH_crypto.json`` next to this script and fails if the hot
fast path is not measurably faster than the naive path.

Run directly: ``PYTHONPATH=src python benchmarks/bench_crypto.py``
CI smoke mode: ``BENCH_CRYPTO_ROUNDS=6 PYTHONPATH=src python benchmarks/bench_crypto.py``
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.crypto import ec, sigcache
from repro.crypto.batch import BatchItem, BatchVerifier
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecdsa import EcdsaPrivateKey, verify_rs_reference

ROUNDS = int(os.environ.get("BENCH_CRYPTO_ROUNDS", "40"))
#: The hot fast path must beat naive by at least this factor for the
#: benchmark to pass.  Kept deliberately conservative so the CI smoke
#: run (few rounds, noisy shared runners) stays reliable; full runs on
#: this implementation measure ~8x or better (recorded in the JSON).
MIN_SPEEDUP = float(os.environ.get("BENCH_CRYPTO_MIN_SPEEDUP", "1.5"))
#: Cold attestation chains in the batch-verification phase (>= 16 keeps
#: the MSM amortisation representative of a fleet admission storm).
BATCH_CHAINS = int(os.environ.get("BENCH_CRYPTO_BATCH_CHAINS", "16"))
#: Required batch-vs-naive speedup on cold 3-cert P-384 chains.  Full
#: runs clear 10x; CI smoke lowers the floor to 4x for noisy runners.
MIN_BATCH_SPEEDUP = float(os.environ.get("BENCH_CRYPTO_MIN_BATCH_SPEEDUP", "10.0"))

CURVES = {"P-256": "sha256", "P-384": "sha384"}


def _signatures(curve_name: str, hash_name: str):
    curve = ec.get_curve(curve_name)
    private = EcdsaPrivateKey.generate(curve, HmacDrbg(b"bench-" + curve_name.encode()))
    public = private.public_key()
    size = curve.coordinate_size
    batch = []
    for index in range(ROUNDS):
        message = b"bench message %d" % index
        signature = private.sign(message, hash_name)
        r = int.from_bytes(signature[:size], "big")
        s = int.from_bytes(signature[size:], "big")
        batch.append((message, signature, r, s))
    return public, batch


def _throughput(worker, rounds: int) -> float:
    started = time.perf_counter()
    for index in range(rounds):
        assert worker(index), "benchmark signature failed to verify"
    return rounds / (time.perf_counter() - started)


def _measure_curve(curve_name: str, hash_name: str) -> dict:
    public, batch = _signatures(curve_name, hash_name)

    naive = _throughput(
        lambda i: verify_rs_reference(
            public, batch[i][0], batch[i][2], batch[i][3], hash_name
        ),
        ROUNDS,
    )

    def cold(i):
        ec.reset_point_cache()
        return public.verify_rs(batch[i][0], batch[i][2], batch[i][3], hash_name)

    fast_cold = _throughput(cold, ROUNDS)

    ec.reset_point_cache()
    sigcache.reset_cache()
    for _ in range(2):  # cross hot_threshold: builds the fixed-base table
        public.verify_rs(batch[0][0], batch[0][2], batch[0][3], hash_name)
    fast_hot = _throughput(
        lambda i: public.verify_rs(batch[i][0], batch[i][2], batch[i][3], hash_name),
        ROUNDS,
    )
    point_stats = ec.get_point_cache().stats()

    sigcache.reset_cache()
    message, signature, _, _ = batch[0]
    sigcache.cached_verify(public, message, signature, hash_name)  # prime
    memoized = _throughput(
        lambda i: sigcache.cached_verify(public, message, signature, hash_name),
        ROUNDS,
    )
    sig_stats = sigcache.get_cache().stats()

    return {
        "hash": hash_name,
        "naive_verifications_per_sec": naive,
        "fast_cold_verifications_per_sec": fast_cold,
        "fast_hot_verifications_per_sec": fast_hot,
        "memoized_verifications_per_sec": memoized,
        "hot_speedup_vs_naive": fast_hot / naive,
        "memoized_speedup_vs_naive": memoized / naive,
        "point_cache": point_stats,
        "signature_cache": sig_stats,
    }


def _cold_chains(count: int):
    """A fleet admission storm's verification work: *count* cold 3-cert
    P-384 chains sharing one root and one intermediate (AMD's ARK/ASK),
    each with its own leaf key (the per-chip VCEK) and report signature.
    Returns per-chain lists of (public, message, signature) triples."""
    curve = ec.get_curve("P-384")
    root = EcdsaPrivateKey.generate(curve, HmacDrbg(b"bench-batch-root"))
    intermediate = EcdsaPrivateKey.generate(
        curve, HmacDrbg(b"bench-batch-intermediate")
    )
    intermediate_tbs = b"bench intermediate certificate (ASK)"
    intermediate_sig = root.sign(intermediate_tbs, "sha384")
    chains = []
    for index in range(count):
        leaf = EcdsaPrivateKey.generate(
            curve, HmacDrbg(b"bench-batch-leaf-%d" % index)
        )
        leaf_tbs = b"bench leaf certificate (VCEK) %d" % index
        report = b"bench attestation report %d" % index
        chains.append([
            (root.public_key(), intermediate_tbs, intermediate_sig),
            (intermediate.public_key(), leaf_tbs,
             intermediate.sign(leaf_tbs, "sha384")),
            (leaf.public_key(), report, leaf.sign(report, "sha384")),
        ])
    return chains


def _measure_batch() -> dict:
    """Batch verification of a cold admission storm vs naive per-sig."""
    chains = _cold_chains(BATCH_CHAINS)
    flat = [triple for chain in chains for triple in chain]

    def naive_chain(i):
        for public, message, signature in chains[i]:
            size = public.curve.coordinate_size
            r = int.from_bytes(signature[:size], "big")
            s = int.from_bytes(signature[size:], "big")
            if not verify_rs_reference(public, message, r, s, "sha384"):
                return False
        return True

    naive = _throughput(naive_chain, BATCH_CHAINS)

    ec.reset_point_cache()  # cold: no precomputed key tables
    verifier = BatchVerifier(HmacDrbg(b"bench-batch"))
    items = [
        BatchItem(public, message, signature, "sha384")
        for public, message, signature in flat
    ]
    started = time.perf_counter()
    result = verifier.verify(items)
    elapsed = time.perf_counter() - started
    assert all(result.verdicts), "batch benchmark signature failed to verify"
    batch = BATCH_CHAINS / elapsed

    return {
        "chains": BATCH_CHAINS,
        "signatures": len(items),
        "curve": "P-384",
        "naive_chains_per_sec": naive,
        "batch_chains_per_sec": batch,
        "batch_signatures_per_sec": len(items) / elapsed,
        "batch_speedup_vs_naive": batch / naive,
        "batch_stats": result.stats(),
    }


def _measure_point_cache_churn() -> dict:
    """Realistic point-cache behaviour under a many-key cold-chain storm:
    more distinct public keys than the cache holds, two verifications
    each (crossing ``hot_threshold``), so the JSON reports genuine
    entries/evictions instead of the single-key ``entries: 1``."""
    curve = ec.get_curve("P-256")
    cache = ec.reset_point_cache()
    keys = cache.capacity + 12  # overcommit: forces LRU eviction churn
    pairs = []
    for index in range(keys):
        private = EcdsaPrivateKey.generate(
            curve, HmacDrbg(b"bench-churn-%d" % index)
        )
        message = b"churn message %d" % index
        signature = private.sign(message)
        size = curve.coordinate_size
        pairs.append((
            private.public_key(),
            message,
            int.from_bytes(signature[:size], "big"),
            int.from_bytes(signature[size:], "big"),
        ))
    started = time.perf_counter()
    for public, message, r, s in pairs:
        assert public.verify_rs(message, r, s, "sha256")
    # Second sweep in reverse: the LRU's resident tail hits (and earns
    # fixed-base tables), the evicted head rebuilds — realistic churn.
    for public, message, r, s in reversed(pairs):
        assert public.verify_rs(message, r, s, "sha256")
    elapsed = time.perf_counter() - started
    stats = cache.stats()
    stats["capacity"] = cache.capacity
    stats["distinct_keys"] = keys
    stats["evicted"] = max(0, stats["misses"] - stats["entries"])
    stats["verifications_per_sec"] = (2 * keys) / elapsed
    ec.reset_point_cache()
    return stats


def main() -> dict:
    results = {
        "benchmark": "ECDSA verification: naive vs fast path",
        "rounds": ROUNDS,
        "min_required_hot_speedup": MIN_SPEEDUP,
        "curves": {},
    }
    for curve_name, hash_name in CURVES.items():
        measured = _measure_curve(curve_name, hash_name)
        results["curves"][curve_name] = measured
        print(
            f"{curve_name}: naive {measured['naive_verifications_per_sec']:7.1f}/s"
            f"  cold {measured['fast_cold_verifications_per_sec']:7.1f}/s"
            f"  hot {measured['fast_hot_verifications_per_sec']:7.1f}/s"
            f"  memoized {measured['memoized_verifications_per_sec']:9.0f}/s"
            f"  (hot speedup {measured['hot_speedup_vs_naive']:.1f}x)"
        )
        assert measured["hot_speedup_vs_naive"] >= MIN_SPEEDUP, (
            f"{curve_name} hot fast path is only "
            f"{measured['hot_speedup_vs_naive']:.2f}x naive "
            f"(required >= {MIN_SPEEDUP}x)"
        )

    batch = _measure_batch()
    results["batch"] = batch
    results["min_required_batch_speedup"] = MIN_BATCH_SPEEDUP
    print(
        f"batch: {batch['chains']} cold 3-cert P-384 chains  "
        f"naive {batch['naive_chains_per_sec']:6.1f} chains/s  "
        f"batch {batch['batch_chains_per_sec']:6.1f} chains/s  "
        f"({batch['batch_speedup_vs_naive']:.1f}x)"
    )
    assert batch["batch_speedup_vs_naive"] >= MIN_BATCH_SPEEDUP, (
        f"batch verification is only "
        f"{batch['batch_speedup_vs_naive']:.2f}x naive on cold chains "
        f"(required >= {MIN_BATCH_SPEEDUP}x)"
    )

    churn = _measure_point_cache_churn()
    results["point_cache_churn"] = churn
    print(
        f"point-cache churn: {churn['distinct_keys']} keys over "
        f"capacity {churn['capacity']}: {churn['entries']} resident, "
        f"{churn['evicted']} evicted, {churn['hits']} hits"
    )

    output = Path(__file__).resolve().parent / "BENCH_crypto.json"
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    return results


if __name__ == "__main__":
    main()
