"""Naive vs fast-path ECDSA verification throughput.

Measures four verification strategies per curve:

``naive``
    The retained pre-fast-path verifier (``verify_rs_reference``): two
    independent double-and-add multiplications with per-op affine
    round-trips.
``fast_cold``
    The engine's first contact with a key — Strauss–Shamir over freshly
    built odd multiples (the point cache is reset before every round).
``fast_hot``
    The steady state for VCEK/ASK/ARK/site keys: fixed-base tables on
    both halves of ``u1*G + u2*Q``.  Distinct messages per round, so the
    signature cache never hits — this is pure EC speedup.
``memoized``
    Re-verifying an identical ``(key, message, signature)`` tuple — a
    signature-cache hit (what the extension does on every page load).

Writes ``BENCH_crypto.json`` next to this script and fails if the hot
fast path is not measurably faster than the naive path.

Run directly: ``PYTHONPATH=src python benchmarks/bench_crypto.py``
CI smoke mode: ``BENCH_CRYPTO_ROUNDS=6 PYTHONPATH=src python benchmarks/bench_crypto.py``
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.crypto import ec, sigcache
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecdsa import EcdsaPrivateKey, verify_rs_reference

ROUNDS = int(os.environ.get("BENCH_CRYPTO_ROUNDS", "40"))
#: The hot fast path must beat naive by at least this factor for the
#: benchmark to pass.  Kept deliberately conservative so the CI smoke
#: run (few rounds, noisy shared runners) stays reliable; full runs on
#: this implementation measure ~8x or better (recorded in the JSON).
MIN_SPEEDUP = float(os.environ.get("BENCH_CRYPTO_MIN_SPEEDUP", "1.5"))

CURVES = {"P-256": "sha256", "P-384": "sha384"}


def _signatures(curve_name: str, hash_name: str):
    curve = ec.get_curve(curve_name)
    private = EcdsaPrivateKey.generate(curve, HmacDrbg(b"bench-" + curve_name.encode()))
    public = private.public_key()
    size = curve.coordinate_size
    batch = []
    for index in range(ROUNDS):
        message = b"bench message %d" % index
        signature = private.sign(message, hash_name)
        r = int.from_bytes(signature[:size], "big")
        s = int.from_bytes(signature[size:], "big")
        batch.append((message, signature, r, s))
    return public, batch


def _throughput(worker, rounds: int) -> float:
    started = time.perf_counter()
    for index in range(rounds):
        assert worker(index), "benchmark signature failed to verify"
    return rounds / (time.perf_counter() - started)


def _measure_curve(curve_name: str, hash_name: str) -> dict:
    public, batch = _signatures(curve_name, hash_name)

    naive = _throughput(
        lambda i: verify_rs_reference(
            public, batch[i][0], batch[i][2], batch[i][3], hash_name
        ),
        ROUNDS,
    )

    def cold(i):
        ec.reset_point_cache()
        return public.verify_rs(batch[i][0], batch[i][2], batch[i][3], hash_name)

    fast_cold = _throughput(cold, ROUNDS)

    ec.reset_point_cache()
    sigcache.reset_cache()
    for _ in range(2):  # cross hot_threshold: builds the fixed-base table
        public.verify_rs(batch[0][0], batch[0][2], batch[0][3], hash_name)
    fast_hot = _throughput(
        lambda i: public.verify_rs(batch[i][0], batch[i][2], batch[i][3], hash_name),
        ROUNDS,
    )
    point_stats = ec.get_point_cache().stats()

    sigcache.reset_cache()
    message, signature, _, _ = batch[0]
    sigcache.cached_verify(public, message, signature, hash_name)  # prime
    memoized = _throughput(
        lambda i: sigcache.cached_verify(public, message, signature, hash_name),
        ROUNDS,
    )
    sig_stats = sigcache.get_cache().stats()

    return {
        "hash": hash_name,
        "naive_verifications_per_sec": naive,
        "fast_cold_verifications_per_sec": fast_cold,
        "fast_hot_verifications_per_sec": fast_hot,
        "memoized_verifications_per_sec": memoized,
        "hot_speedup_vs_naive": fast_hot / naive,
        "memoized_speedup_vs_naive": memoized / naive,
        "point_cache": point_stats,
        "signature_cache": sig_stats,
    }


def main() -> dict:
    results = {
        "benchmark": "ECDSA verification: naive vs fast path",
        "rounds": ROUNDS,
        "min_required_hot_speedup": MIN_SPEEDUP,
        "curves": {},
    }
    for curve_name, hash_name in CURVES.items():
        measured = _measure_curve(curve_name, hash_name)
        results["curves"][curve_name] = measured
        print(
            f"{curve_name}: naive {measured['naive_verifications_per_sec']:7.1f}/s"
            f"  cold {measured['fast_cold_verifications_per_sec']:7.1f}/s"
            f"  hot {measured['fast_hot_verifications_per_sec']:7.1f}/s"
            f"  memoized {measured['memoized_verifications_per_sec']:9.0f}/s"
            f"  (hot speedup {measured['hot_speedup_vs_naive']:.1f}x)"
        )
        assert measured["hot_speedup_vs_naive"] >= MIN_SPEEDUP, (
            f"{curve_name} hot fast path is only "
            f"{measured['hot_speedup_vs_naive']:.2f}x naive "
            f"(required >= {MIN_SPEEDUP}x)"
        )

    output = Path(__file__).resolve().parent / "BENCH_crypto.json"
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    return results


if __name__ == "__main__":
    main()
