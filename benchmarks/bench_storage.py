"""Storage-stack read-path benchmark (the paper's Figs. 5/6 shape).

Sequentially reads the same volume through four device-mapper stacks —
plain, dm-crypt, dm-verity, and crypt+verity — cold (first pass after
open) and warm (repeat passes), recording wall-clock throughput, the
verity hash-path hit rate, and the simulated storage latency.  The
shape to reproduce: crypt adds a roughly constant factor, verity
multiplies cold reads by the hash-path depth, and the verified page
cache collapses warm reads (>= 5x over cold, asserted).

A tamper section then flips one bit under each protected stack, cold
and warm, and asserts every flip is rejected — the warm speedup must
not come at the cost of serving poisoned caches.

Writes ``BENCH_storage.json`` (or ``--output``).

Run directly: ``PYTHONPATH=src python benchmarks/bench_storage.py``
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.attest import get_tracer, reset_tracer
from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import RamBlockDevice
from repro.storage.dm import DmContext, DmTable
from repro.storage.dm_crypt import DmCryptError, luks_format
from repro.storage.dm_verity import VerityError, verity_format

BLOCK = 4096
#: Logical data blocks under dm-crypt's two LUKS header blocks.
HEADER_BLOCKS = 2


def _build_variant(kind: str, blocks: int):
    """Return (volume, raw_backing, raw_block_of_data_block) for one
    stack variant over a freshly filled device."""
    payload = HmacDrbg(b"bench-storage:%s" % kind.encode()).generate(blocks * BLOCK)
    if kind in ("crypt", "crypt+verity"):
        backing = RamBlockDevice(HEADER_BLOCKS + blocks, BLOCK)
        master_key = HmacDrbg(b"bench-key").generate(64)
        plain = luks_format(backing, HmacDrbg(b"bench-rng"), master_key=master_key)
        plain.write_blocks(0, payload)
        raw_of = lambda i: HEADER_BLOCKS + i  # noqa: E731
        keys = {"master": master_key}
        inner = "crypt key=master"
    else:
        backing = RamBlockDevice(blocks, BLOCK, initial=payload)
        plain = backing
        raw_of = lambda i: i  # noqa: E731
        keys = {}
        inner = None

    devices = {"disk": backing}
    cmdline = {}
    if kind in ("verity", "crypt+verity"):
        fmt = verity_format(plain, salt=b"bench-salt")
        devices["hash"] = fmt.hash_device
        cmdline["rh"] = fmt.root_hash.hex()
        outer = f"verity hash=device:hash root=cmdline:rh cache_blocks={blocks}"
    else:
        outer = None

    targets = ["linear device=disk", f"cache blocks={blocks}"]
    if inner:
        targets.append(inner)
    if outer:
        targets.append(outer)
    table = DmTable.parse(kind, " ; ".join(targets))
    context = DmContext(devices=devices, keys=keys, cmdline_args=cmdline)
    return table.open(context), backing, raw_of


def _sequential_pass(volume) -> float:
    started = time.perf_counter()
    for index in range(volume.num_blocks):
        volume.read_block(index)
    return time.perf_counter() - started


def _measure_variant(kind: str, blocks: int, rounds: int) -> dict:
    reset_tracer()
    volume, _, _ = _build_variant(kind, blocks)
    cold = _sequential_pass(volume)
    warm_passes = [_sequential_pass(volume) for _ in range(rounds)]
    warm = sum(warm_passes) / len(warm_passes)
    mib = blocks * BLOCK / (1024 * 1024)
    storage = get_tracer().storage
    result = {
        "cold_ms": cold * 1000,
        "warm_ms": warm * 1000,
        "cold_mib_per_s": mib / cold,
        "warm_mib_per_s": mib / warm,
        "warm_speedup": cold / warm,
        "sim_ms_total": storage.sim_seconds * 1000,
    }
    if kind in ("verity", "crypt+verity"):
        result["verify_hit_rate"] = storage.verify_hit_rate()
    return result


#: Volume size for tamper probes — each probe rebuilds the stack (a
#: full XTS fill for crypt variants), so keep it small but multi-level.
TAMPER_BLOCKS = 64


def _tamper_check(kind: str, warm: bool, probes: int = 8) -> dict:
    """Flip one bit under a protected stack at several positions; count
    how many of the subsequent reads are rejected.  Must be all."""
    blocks = TAMPER_BLOCKS
    injected = rejected = 0
    for probe in range(probes):
        volume, backing, raw_of = _build_variant(kind, blocks)
        if warm:
            _sequential_pass(volume)
        block = (probe * 7919) % blocks
        offset = (probe * 2641) % BLOCK
        backing.corrupt(raw_of(block) * BLOCK + offset, 1 << (probe % 8))
        injected += 1
        try:
            volume.read_block(block)
        except (VerityError, DmCryptError):
            rejected += 1
    return {"injected": injected, "rejected": rejected}


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=2048,
                        help="data blocks per volume (4 KiB each)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="warm passes to average")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent / "BENCH_storage.json")
    args = parser.parse_args(argv)

    variants = {}
    for kind in ("plain", "crypt", "verity", "crypt+verity"):
        variants[kind] = _measure_variant(kind, args.blocks, args.rounds)
        print(f"{kind:>13s}: cold {variants[kind]['cold_mib_per_s']:7.1f} MiB/s, "
              f"warm {variants[kind]['warm_mib_per_s']:7.1f} MiB/s "
              f"({variants[kind]['warm_speedup']:5.1f}x)")

    plain_cold = variants["plain"]["cold_ms"]
    overhead = {
        kind: variants[kind]["cold_ms"] / plain_cold
        for kind in ("crypt", "verity", "crypt+verity")
    }

    tamper = {
        "verity": {
            "cold": _tamper_check("verity", warm=False),
            "warm": _tamper_check("verity", warm=True),
        },
        "crypt+verity": {
            "cold": _tamper_check("crypt+verity", warm=False),
            "warm": _tamper_check("crypt+verity", warm=True),
        },
    }

    # The two properties this PR's storage stack stands on: hot verified
    # reads are cheap, and the caches never launder tampering.
    for kind in ("verity", "crypt+verity"):
        speedup = variants[kind]["warm_speedup"]
        assert speedup >= 5.0, (
            f"{kind}: warm reads only {speedup:.1f}x faster than cold (need >= 5x)"
        )
    for kind, runs in tamper.items():
        for mode, counts in runs.items():
            assert counts["rejected"] == counts["injected"], (
                f"{kind} {mode}: {counts['injected'] - counts['rejected']} "
                "bit flips were NOT rejected"
            )
            print(f"{kind:>13s} tamper ({mode}): "
                  f"{counts['rejected']}/{counts['injected']} rejected")

    # Fig. 5/6 shape: every protected stack costs more than plain on the
    # cold path.  (Unlike the paper's hardware numbers, pure-Python XTS
    # makes crypt — not verity — the dominant cold cost here.)
    for kind in ("crypt", "verity", "crypt+verity"):
        assert overhead[kind] > 1.0, f"{kind} cold reads not slower than plain"

    results = {
        "benchmark": "storage stack read path (Figs. 5/6 shape)",
        "blocks": args.blocks,
        "block_size": BLOCK,
        "warm_rounds": args.rounds,
        "variants": variants,
        "cold_overhead_vs_plain": overhead,
        "tamper_rejection": tamper,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return results


if __name__ == "__main__":
    main()
