"""Shared benchmark fixtures: paper-shaped images at bench scale."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from _common import boundary_node_spec, cryptpad_spec, sample_registry  # noqa: E402

from repro.bench import bench_scale, scaled_blocks  # noqa: E402
from repro.build import build_revelio_image  # noqa: E402

#: Paper workload sizes (section 6.3).
PAPER_DMCRYPT_VOLUME = 84 * 1024 * 1024  # 84 MB encrypted volume
PAPER_ROOTFS = 4 * 1024 * 1024 * 1024  # 4 GB dm-verity rootfs

#: Extra runtime divisor on top of REVELIO_BENCH_SCALE (applied to both
#: volumes alike, so the paper's 1:48.8 size proportion is preserved).
RUNTIME_DIVISOR = 4

#: Filler content giving the bench rootfs a paper-proportional footprint.
ROOTFS_FILLER_BYTES = max(1, int(PAPER_ROOTFS * bench_scale() / RUNTIME_DIVISOR))


def _filler_files(total_bytes: int, chunk: int = 512 * 1024) -> dict:
    files = {}
    index = 0
    remaining = total_bytes
    while remaining > 0:
        size = min(chunk, remaining)
        files[f"/usr/share/filler/blob-{index:03d}"] = bytes(
            (index * 7 + i) % 256 for i in range(size)
        )
        remaining -= size
        index += 1
    return files


@pytest.fixture(scope="session")
def bench_registry():
    return sample_registry()


@pytest.fixture(scope="session")
def bn_build(bench_registry):
    """The Boundary Node image: heavier rootfs, many base services."""
    registry, pins = bench_registry
    spec = boundary_node_spec(
        registry,
        pins,
        data_volume_blocks=scaled_blocks(PAPER_DMCRYPT_VOLUME // RUNTIME_DIVISOR),
        extra_files=_filler_files(ROOTFS_FILLER_BYTES),
    )
    return build_revelio_image(spec)


@pytest.fixture(scope="session")
def cp_build(bench_registry):
    """The CryptPad image: lighter rootfs, few base services."""
    registry, pins = bench_registry
    spec = cryptpad_spec(
        registry,
        pins,
        data_volume_blocks=scaled_blocks(PAPER_DMCRYPT_VOLUME // RUNTIME_DIVISOR),
        extra_files=_filler_files(int(ROOTFS_FILLER_BYTES / 1.4)),
    )
    return build_revelio_image(spec)
