"""Gateway throughput, tail latency, and rollout disruption under load.

Drives the :mod:`repro.fleet` gateway with the :mod:`repro.sim` event
kernel through two phases:

* **Phase A — signature-cache ablation.**  The same seeded open-loop
  session storm twice, with the PR-3 signature-verification cache
  enabled and disabled.  Every first visit runs the full attestation
  pipeline client-side, so the cache's discounted verify price shows up
  directly in the first-visit tail (p95/p99).
* **Phase B — storm through a rolling rollout.**  A large open-loop
  storm (default 10 000 sessions over 8 backends) with the health
  monitor running; mid-storm the whole fleet is replaced one node at a
  time (drain -> replace -> key hand-over -> re-admit).  The acceptance
  bar: zero failed requests, zero blocked requests, and zero requests
  routed to a retired backend.
* **Phase C — mixed-fleet smoke.**  SNP nodes plus TDX, CCA, and
  e-vTPM backends behind one tier-aware gateway; tiered traffic
  (high-sensitivity sessions pinned to SNP/e-vTPM), one family revoked
  mid-storm.  Emits per-family admission counts, family-scoped eviction
  counters, and per-tier p99s; zero failed and zero blocked requests on
  the surviving families.
* **Phase D — million-session mesh storm.**  ~100 mixed-family
  backends behind a 4-region :class:`~repro.fleet.mesh.GatewayMesh`
  (consistent-hash session routing + verdict gossip), stormed with one
  million lite sessions.  Each backend is attested once by its home
  gateway and admitted fleet-wide by gossip; regional health monitors
  keep verdicts fresh.  Acceptance: zero failed requests and a
  wall-clock kernel events/sec floor (``--mesh-events-floor``) that
  fails the run on kernel regressions.

Everything recorded in ``BENCH_fleet.json`` is derived from simulated
time and deterministic counters — two runs with the same ``--seed`` are
byte-identical (wall-clock timings, including the measured wall
events/sec, go to stdout only; the JSON records the deterministic
events-per-sim-second figure and the configured floor).

Run directly: ``PYTHONPATH=src python benchmarks/bench_fleet.py``
(``--phases D`` runs the mesh storm alone).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.build import (
    ImageSpec,
    Package,
    PackagePin,
    PackageRegistry,
    build_revelio_image,
)
from repro.attest import VerifyFarm, get_tracer, reset_tracer
from repro.core import RevelioDeployment
from repro.crypto import ec, sigcache
from repro.fleet import (
    FleetGateway,
    FleetWorkload,
    GatewayMesh,
    HealthMonitor,
    HeterogeneousFleet,
    LiteFleet,
    MeshWorkload,
    UserPool,
    revoke_family,
)
from repro.fleet.drain import rolling_rollout
from repro.sim import EventKernel, SimRng
from repro.sim.kernel import sleep

#: Phase D topology: regions and the inter-region RTT map (seconds).
MESH_REGIONS = ("us-east", "us-west", "eu-central", "ap-south")
MESH_REGION_RTT = {
    ("us-east", "us-west"): 0.060,
    ("us-east", "eu-central"): 0.080,
    ("us-east", "ap-south"): 0.180,
    ("us-west", "eu-central"): 0.140,
    ("us-west", "ap-south"): 0.120,
    ("eu-central", "ap-south"): 0.160,
}


def _registry():
    registry = PackageRegistry()
    pins = {}
    for package in [
        Package.create(
            "nginx",
            "1.24.0",
            files={
                "/usr/sbin/nginx": b"\x7fELF-nginx" + b"n" * 2000,
                "/etc/nginx/nginx.conf": b"server { listen 443 ssl; }",
            },
        ),
        Package.create(
            "ic-boundary-node",
            "0.9.0",
            files={"/opt/ic/boundary-node": b"\x7fELF-bn" + b"b" * 4000},
        ),
        Package.create(
            "revelio-agent",
            "1.0.0",
            files={"/usr/bin/revelio-agent": b"\x7fELF-agent" + b"r" * 1000},
        ),
    ]:
        digest = registry.publish(package)
        pins[package.name] = PackagePin(package.name, package.version, digest)
    return registry, pins


def _build(version: str = "1.0.0"):
    registry, pins = _registry()
    return build_revelio_image(
        ImageSpec(
            name="boundary-node",
            version=version,
            registry=registry,
            package_pins=[
                pins[p] for p in ("nginx", "ic-boundary-node", "revelio-agent")
            ],
            service_domain="bench-fleet.example",
            services=("https",),
            data_volume_blocks=16,
        )
    )


def _world(build, backends: int, seed: int, balancer: str):
    """A gateway-fronted fleet on a fresh event kernel."""
    deployment = RevelioDeployment(
        build, num_nodes=backends, seed=f"bench-fleet-{seed}".encode()
    ).deploy()
    kernel = EventKernel(deployment.network.clock, SimRng(seed))
    deployment.network.enable_event_mode(kernel)
    gateway = FleetGateway.for_deployment(
        deployment, kernel=kernel, balancer=balancer
    )
    verdicts = gateway.admit_all()
    assert all(v.ok for v in verdicts), [v.reason for v in verdicts if not v.ok]
    return deployment, gateway, kernel


def _run_storm(
    deployment,
    gateway,
    kernel,
    seed: int,
    sessions: int,
    users: int,
    arrival_rate: float,
    expected_measurements,
    rollout=None,
    monitor: bool = True,
    extension_setup=None,
    tier_weights=None,
):
    """Open-loop storm; optionally a concurrent process (the rollout)."""
    pool = UserPool(
        deployment, kernel, size=users,
        expected_measurements=expected_measurements,
        extension_setup=extension_setup,
    )
    workload = FleetWorkload(
        kernel, gateway, pool, rng=SimRng(seed), tier_weights=tier_weights
    )
    health = None
    health_process = None
    if monitor:
        health = HealthMonitor(
            gateway, interval=10.0, timeout=2.0, reattest_every=120.0
        )
        health_process = kernel.spawn(health.process(), name="health-monitor")
    storm = kernel.spawn(
        workload.open_loop(sessions=sessions, arrival_rate=arrival_rate),
        name="storm",
    )
    rollout_process = None
    if rollout is not None:
        rollout_process = kernel.spawn(rollout, name="rollout")
    while not storm.finished or (
        rollout_process is not None and not rollout_process.finished
    ):
        kernel.run(until=kernel.clock.now + 10.0)
    if health_process is not None:
        health_process.interrupt("storm over")
    kernel.run()
    if storm.error is not None:
        raise storm.error
    if rollout_process is not None and rollout_process.error is not None:
        raise rollout_process.error
    return workload, health, rollout_process


def phase_sig_cache_ablation(args, build) -> dict:
    """Same seeded storm three ways: signature cache on, off, and off
    with every client's attestation routed through a verify farm.  The
    farm arm isolates honest batching from memoization — its verdicts
    are fresh crypto priced at batch-flush time, so a lower first-visit
    tail than plain ``cache_off`` is pure batch-amortisation win."""

    def measure(cache_on: bool, with_farm: bool = False) -> dict:
        sigcache.reset_cache()
        ec.reset_point_cache()
        reset_tracer()
        sigcache.set_enabled(cache_on)
        deployment, gateway, kernel = _world(
            build, args.backends, args.seed, args.balancer
        )
        farm = None
        extension_setup = None
        if with_farm:
            farm = VerifyFarm(
                clock=deployment.network.clock,
                latency=deployment.network.latency,
                seed=b"bench-fleet-farm",
            )

            def extension_setup(extension):
                extension.verifier.farm = farm

        try:
            workload, _, _ = _run_storm(
                deployment, gateway, kernel,
                seed=args.seed,
                sessions=args.ablation_sessions,
                users=max(8, args.ablation_sessions // 4),
                arrival_rate=args.arrival_rate,
                expected_measurements=None,  # default registration (v1 golden)
                monitor=False,
                extension_setup=extension_setup,
            )
        finally:
            if farm is not None:
                farm.uninstall()
        snapshot = workload.snapshot()
        result = {
            "sessions": args.ablation_sessions,
            "first_visit_ms": {
                key: snapshot[f"latency.first_visit.{key}"]
                for key in ("p50", "p95", "p99", "max")
            },
            "all_requests_ms": {
                key: snapshot[f"latency.all.{key}"]
                for key in ("p50", "p95", "p99")
            },
            "requests_ok": snapshot["requests_ok"],
            "requests_failed": snapshot.get("requests_failed", 0),
        }
        if farm is not None:
            result["farm"] = get_tracer().farm.snapshot()
        return result

    try:
        cache_off = measure(cache_on=False)
        cache_off_farm = measure(cache_on=False, with_farm=True)
        cache_on = measure(cache_on=True)
    finally:
        sigcache.set_enabled(True)
        sigcache.reset_cache()
        reset_tracer()
    delta = {
        key: cache_off["first_visit_ms"][key] - cache_on["first_visit_ms"][key]
        for key in ("p50", "p95", "p99")
    }
    farm_delta = {
        key: cache_off["first_visit_ms"][key]
        - cache_off_farm["first_visit_ms"][key]
        for key in ("p50", "p95", "p99")
    }
    assert farm_delta["p99"] > 0, (
        "verify farm failed to improve the sigcache-ablated first-visit "
        f"p99 (saved {farm_delta['p99']:.3f} sim ms)"
    )
    return {
        "cache_on": cache_on,
        "cache_off": cache_off,
        "cache_off_farm": cache_off_farm,
        "first_visit_tail_saved_ms": delta,
        "farm_first_visit_saved_ms": farm_delta,
    }


def phase_storm_with_rollout(args, build_v1, build_v2) -> dict:
    sigcache.reset_cache()
    ec.reset_point_cache()
    deployment, gateway, kernel = _world(
        build_v1, args.backends, args.seed, args.balancer
    )

    def delayed_rollout():
        yield sleep(args.rollout_at)
        report = yield from rolling_rollout(
            gateway, deployment, build_v2, drain_poll=0.1, concurrency=4
        )
        return report

    workload, health, rollout_process = _run_storm(
        deployment, gateway, kernel,
        seed=args.seed,
        sessions=args.sessions,
        users=args.users,
        arrival_rate=args.arrival_rate,
        # Riding through the rollout needs both goldens client-side.
        expected_measurements=[
            build_v1.expected_measurement, build_v2.expected_measurement
        ],
        rollout=delayed_rollout(),
    )
    snapshot = workload.snapshot()
    report = rollout_process.value

    failed = snapshot.get("requests_failed", 0)
    blocked = snapshot.get("requests_blocked", 0)
    after_retired = {
        ip: backend.requests_after_retired
        for ip, backend in sorted(gateway.backends.items())
        if backend.requests_after_retired
    }
    assert failed == 0, f"{failed} failed requests during the rollout storm"
    assert blocked == 0, f"{blocked} blocked requests during the rollout storm"
    assert not after_retired, f"requests hit retired backends: {after_retired}"

    return {
        "sessions": args.sessions,
        "backends": args.backends,
        "balancer": args.balancer,
        "arrival_rate_per_sec": args.arrival_rate,
        "sim_seconds": round(kernel.clock.now, 6),
        "requests_total": snapshot["requests_total"],
        "requests_ok": snapshot["requests_ok"],
        "requests_failed": failed,
        "requests_blocked": blocked,
        "latency_ms": {
            "all": {
                key: snapshot[f"latency.all.{key}"]
                for key in ("p50", "p95", "p99", "max")
            },
            "first_visit": {
                key: snapshot[f"latency.first_visit.{key}"]
                for key in ("p50", "p95", "p99")
            },
            "revisit": {
                key: snapshot[f"latency.revisit.{key}"]
                for key in ("p50", "p95", "p99")
            },
        },
        "throughput_per_sec": {
            "mean": snapshot["throughput.mean_per_sec"],
            "peak_window": snapshot["throughput.peak_window_per_sec"],
        },
        "health": {
            "probes_ok": health.probes_ok,
            "probes_failed": health.probes_failed,
            "reattestations": health.reattestations,
        },
        "rollout": {
            "started_at_sim_s": args.rollout_at,
            "sim_seconds": round(report.sim_seconds, 6),
            "replacements": len(report.replacements),
            "sessions_severed": gateway.counters.get("sessions_severed", 0),
            "records_severed": gateway.counters.get("records_severed", 0),
            "requests_after_retired": 0,
        },
        "gateway": {
            "requests_routed": gateway.counters.get("requests_routed", 0),
            "sessions_opened": gateway.counters.get("sessions_opened", 0),
            "retries": gateway.counters.get("retries", 0),
        },
    }


def phase_mixed_fleet(args, build) -> dict:
    """SNP + TDX + CCA + e-vTPM behind one tier-aware gateway; one
    family revoked mid-storm; tiered traffic."""
    sigcache.reset_cache()
    ec.reset_point_cache()
    snp_backends = max(2, args.backends // 2)
    deployment, gateway, kernel = _world(
        build, snp_backends, args.seed, args.balancer
    )
    fleet = HeterogeneousFleet(deployment)
    for index in range(args.hetero_per_family):
        fleet.add_tdx_backend(f"10.1.0.{10 + index}")
        fleet.add_cca_backend(f"10.1.0.{40 + index}")
        fleet.add_vtpm_backend(f"10.1.0.{70 + index}")
    verdicts = fleet.attach_gateway(gateway)
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    family_goldens = {
        family: policy.golden_measurements
        for family, policy in fleet.family_policies().items()
    }

    def extension_setup(extension):
        extension.verifier.contexts.update(fleet.contexts())
        extension.register_site(
            deployment.domain, family_measurements=family_goldens
        )

    def delayed_revocation():
        yield sleep(args.revoke_at)
        revoke_family(gateway, "tdx")

    workload, _, _ = _run_storm(
        deployment, gateway, kernel,
        seed=args.seed,
        sessions=args.hetero_sessions,
        users=min(400, max(8, args.hetero_sessions // 5)),
        arrival_rate=args.arrival_rate,
        expected_measurements=[build.expected_measurement],
        rollout=delayed_revocation(),
        # The monitor keeps verdicts fresh (admission requires a verdict
        # younger than verdict_ttl) — long storms stall without it.
        monitor=True,
        extension_setup=extension_setup,
        tier_weights={"high": 0.3, "bulk": 0.7},
    )
    snapshot = workload.snapshot()

    failed = snapshot.get("requests_failed", 0)
    blocked = snapshot.get("requests_blocked", 0)
    assert failed == 0, f"{failed} failed requests in the mixed-fleet storm"
    assert blocked == 0, f"{blocked} blocked requests in the mixed-fleet storm"
    evictions = gateway.counters.get(
        "family.tdx.evictions.family_not_allowed", 0
    )
    assert evictions == args.hetero_per_family, (
        f"expected {args.hetero_per_family} tdx evictions, saw {evictions}"
    )

    families = sorted(
        {"sev-snp", *(backend.family for backend in fleet.backends)}
    )
    tiers = ("bulk", "high")
    return {
        "sessions": args.hetero_sessions,
        "snp_backends": snp_backends,
        "hetero_backends_per_family": args.hetero_per_family,
        "revoked_family": "tdx",
        "revoked_at_sim_s": args.revoke_at,
        "requests_total": snapshot["requests_total"],
        "requests_ok": snapshot["requests_ok"],
        "requests_failed": failed,
        "requests_blocked": blocked,
        "admissions_by_family": {
            family: gateway.counters.get(f"admissions.{family}", 0)
            for family in families
        },
        "evictions_by_family": {
            "tdx.family_not_allowed": evictions,
        },
        "sessions_by_tier": {
            tier: gateway.counters.get(f"tier.{tier}.sessions_opened", 0)
            for tier in tiers
        },
        "latency_ms_by_tier": {
            tier: {
                key: snapshot[f"latency.tier.{tier}.{key}"]
                for key in ("p50", "p95", "p99")
            }
            for tier in tiers
        },
    }


def phase_mesh_storm(args, build) -> dict:
    """Million-session lite storm over a regioned gateway mesh."""
    sigcache.reset_cache()
    ec.reset_point_cache()
    regions = MESH_REGIONS[: max(1, min(args.mesh_regions, len(MESH_REGIONS)))]
    deployment = RevelioDeployment(
        build, num_nodes=args.mesh_snp_nodes,
        seed=f"bench-mesh-{args.seed}".encode(),
    ).deploy()
    kernel = EventKernel(deployment.network.clock, SimRng(args.seed))
    deployment.network.enable_event_mode(kernel)
    for (region_a, region_b), rtt in sorted(MESH_REGION_RTT.items()):
        if region_a in regions and region_b in regions:
            deployment.latency.region_rtt[(region_a, region_b)] = rtt

    mesh = GatewayMesh.for_deployment(deployment, kernel, regions=regions)
    lite = LiteFleet(deployment)
    lite_families = ("sev-snp", "tdx", "arm-cca", "e-vtpm")
    extra = max(0, args.mesh_backends - args.mesh_snp_nodes)
    for index in range(extra):
        lite.add_backend(
            f"10.8.{index // 200}.{1 + index % 200}",
            lite_families[index % len(lite_families)],
            region=regions[index % len(regions)],
        )
    lite.adopt_deployment_nodes()
    mesh.attach_lite_fleet(lite)

    verdicts = mesh.admit_all()
    total_backends = args.mesh_snp_nodes + extra
    assert len(verdicts) == total_backends, (
        f"expected {total_backends} admissions, saw {len(verdicts)}"
    )
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    # Let the gossiped verdicts land on the remote shards before traffic.
    kernel.run(until=kernel.clock.now + 1.0)

    monitors = mesh.monitors(interval=15.0, timeout=2.0, reattest_every=120.0)
    monitor_processes = [
        kernel.spawn(monitor.process(), name=f"mesh-health-{monitor.gateway.name}")
        for monitor in monitors
    ]
    gossip_process = kernel.spawn(mesh.gossip_process(), name="mesh-gossip")
    workload = MeshWorkload(mesh, kernel, rng=SimRng(args.seed))
    workload.metrics.attach_kernel(kernel)
    storm = kernel.spawn(
        workload.open_loop(args.mesh_sessions, args.mesh_arrival_rate),
        name="mesh-storm",
    )
    steps_before = kernel.stats.steps
    wall_started = time.perf_counter()
    while not storm.finished:
        kernel.run(until=kernel.clock.now + 60.0)
    wall = time.perf_counter() - wall_started
    storm_steps = kernel.stats.steps - steps_before
    for process in monitor_processes:
        process.interrupt("storm over")
    gossip_process.interrupt("storm over")
    kernel.run()
    if storm.error is not None:
        raise storm.error

    snapshot = workload.snapshot()
    failed = snapshot.get("requests_failed", 0)
    assert failed == 0, f"{failed} failed requests in the mesh storm"
    assert workload.sessions_failed == 0, (
        f"{workload.sessions_failed} failed sessions in the mesh storm"
    )
    assert workload.sessions_completed == args.mesh_sessions, (
        f"{workload.sessions_completed}/{args.mesh_sessions} sessions completed"
    )
    wall_events_per_sec = storm_steps / wall if wall > 0 else float("inf")
    print(f"  kernel: {storm_steps} events in {wall:.1f}s wall "
          f"= {wall_events_per_sec:,.0f} events/sec "
          f"(floor {args.mesh_events_floor:,.0f})")
    if args.mesh_events_floor > 0:
        assert wall_events_per_sec >= args.mesh_events_floor, (
            f"kernel regression: {wall_events_per_sec:,.0f} events/sec wall "
            f"< floor {args.mesh_events_floor:,.0f}"
        )

    def gateway_sum(suffix: str) -> int:
        return sum(
            gateway.counters.get(suffix, 0)
            for gateway in mesh.gateways.values()
        )

    families = sorted({"sev-snp", *lite_families})
    by_family = {family: 0 for family in families}
    by_family["sev-snp"] += args.mesh_snp_nodes
    for index in range(extra):
        by_family[lite_families[index % len(lite_families)]] += 1
    return {
        "sessions": args.mesh_sessions,
        "arrival_rate_per_sec": args.mesh_arrival_rate,
        "gateways": len(mesh.gateways),
        "regions": list(regions),
        "backends": {
            "total": total_backends,
            "deployment_snp_nodes": args.mesh_snp_nodes,
            "by_family": by_family,
        },
        "sim_seconds": round(kernel.clock.now, 6),
        "sessions_completed": workload.sessions_completed,
        "sessions_failed": workload.sessions_failed,
        "requests_total": snapshot["requests_total"],
        "requests_ok": snapshot["requests_ok"],
        "requests_failed": failed,
        "latency_ms": {
            kind: {
                key: snapshot[f"latency.{kind}.{key}"]
                for key in ("p50", "p95", "p99")
            }
            for kind in ("all", "hello", "record")
        },
        "attestation": {
            # One probe per backend at bring-up plus periodic
            # re-attestations by the home shard only; gossip admits the
            # other shards without duplicate probes.
            "attestations_ok": gateway_sum("attestations_ok"),
            "reattestations": sum(m.reattestations for m in monitors),
            "gossip_published": mesh.counters.get("gossip.published", 0),
            "gossip_deliveries": mesh.counters.get("gossip.deliveries", 0),
            "gossip_applied": gateway_sum("gossip.applied"),
            "gossip_admissions": gateway_sum("gossip.admissions"),
        },
        "kernel": {
            # Deterministic figures only: the wall-clock events/sec is
            # printed above and gated by --mesh-events-floor, never
            # persisted (same-seed reports must stay byte-identical).
            "storm_events": storm_steps,
            "events_per_sim_sec": snapshot["kernel.events_per_sim_sec"],
            "peak_heap": snapshot["kernel.peak_heap"],
            "stale_ratio": snapshot["kernel.stale_ratio"],
            "wall_events_per_sec_floor": args.mesh_events_floor,
        },
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sessions", type=int, default=10_000)
    parser.add_argument("--backends", type=int, default=8)
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--arrival-rate", type=float, default=40.0,
                        help="open-loop session arrivals per sim second")
    parser.add_argument("--ablation-sessions", type=int, default=600)
    parser.add_argument("--rollout-at", type=float, default=30.0,
                        help="sim seconds into the storm to start the rollout")
    parser.add_argument("--hetero-sessions", type=int, default=10_000)
    parser.add_argument("--hetero-per-family", type=int, default=2,
                        help="TDX/CCA/e-vTPM backends each in phase C")
    parser.add_argument("--revoke-at", type=float, default=20.0,
                        help="sim seconds into phase C to revoke the tdx family")
    parser.add_argument("--balancer", default="round_robin")
    parser.add_argument("--phases", default="ABCD",
                        help="which phases to run, e.g. 'D' or 'ABC'")
    parser.add_argument("--mesh-sessions", type=int, default=1_000_000)
    parser.add_argument("--mesh-backends", type=int, default=100,
                        help="total phase D backends (SNP nodes + lite)")
    parser.add_argument("--mesh-snp-nodes", type=int, default=8,
                        help="full deployment SNP nodes inside phase D")
    parser.add_argument("--mesh-regions", type=int, default=4,
                        help="gateway regions in phase D (max 4)")
    parser.add_argument("--mesh-arrival-rate", type=float, default=2500.0,
                        help="phase D session arrivals per sim second")
    parser.add_argument("--mesh-events-floor", type=float, default=0.0,
                        help="minimum wall-clock kernel events/sec in "
                             "phase D (0 disables the gate)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent / "BENCH_fleet.json")
    args = parser.parse_args(argv)
    phases = set(args.phases.upper())
    unknown = phases - set("ABCD")
    if unknown:
        parser.error(f"unknown phases: {sorted(unknown)}")

    started = time.perf_counter()
    build_v1 = _build("1.0.0")
    build_v2 = _build("2.0.0")
    results = {
        "benchmark": "fleet gateway storm + rolling rollout",
        "seed": args.seed,
        "phases": "".join(sorted(phases)),
    }

    if "A" in phases:
        ablation = phase_sig_cache_ablation(args, build_v1)
        print("phase A (sig-cache ablation, first-visit tail, sim ms):")
        for scenario in ("cache_off", "cache_off_farm", "cache_on"):
            tail = ablation[scenario]["first_visit_ms"]
            print(f"  {scenario:<14} p50 {tail['p50']:8.1f}   "
                  f"p95 {tail['p95']:8.1f}   p99 {tail['p99']:8.1f}")
        saved = ablation["first_visit_tail_saved_ms"]
        farm_saved = ablation["farm_first_visit_saved_ms"]
        farm_stats = ablation["cache_off_farm"]["farm"]
        print(f"  cache saves p99 {saved['p99']:.1f} sim ms; farm saves "
              f"p99 {farm_saved['p99']:.1f} sim ms with the cache ablated "
              f"({farm_stats['batches']} batches, "
              f"mean size {farm_stats['mean_batch_size']:.1f})")
        results["sig_cache_ablation"] = ablation

    if "B" in phases:
        storm = phase_storm_with_rollout(args, build_v1, build_v2)
        print(f"phase B ({storm['sessions']} sessions, "
              f"{storm['backends']} backends, rollout mid-storm):")
        print(f"  {storm['requests_ok']}/{storm['requests_total']} requests ok, "
              f"0 failed, 0 to retired backends")
        print(f"  p99 all {storm['latency_ms']['all']['p99']:.1f} sim ms, "
              f"revisit p50 {storm['latency_ms']['revisit']['p50']:.1f} sim ms")
        print(f"  rollout replaced {storm['rollout']['replacements']} nodes in "
              f"{storm['rollout']['sim_seconds']:.1f} sim s under load")
        results["storm_with_rollout"] = storm

    if "C" in phases:
        mixed = phase_mixed_fleet(args, build_v1)
        print(f"phase C ({mixed['sessions']} sessions, mixed fleet, "
              f"tdx revoked mid-storm):")
        print(f"  admissions by family: {mixed['admissions_by_family']}")
        print(f"  {mixed['requests_ok']}/{mixed['requests_total']} requests ok, "
              f"0 failed, 0 blocked; "
              f"{mixed['evictions_by_family']['tdx.family_not_allowed']} "
              f"tdx backends evicted")
        for tier in sorted(mixed["latency_ms_by_tier"]):
            tail = mixed["latency_ms_by_tier"][tier]
            print(f"  tier {tier:<5} p50 {tail['p50']:8.1f}   "
                  f"p95 {tail['p95']:8.1f}   p99 {tail['p99']:8.1f}")
        results["mixed_fleet"] = mixed

    if "D" in phases:
        print(f"phase D (mesh storm):")
        mesh_result = phase_mesh_storm(args, build_v1)
        attestation = mesh_result["attestation"]
        print(f"  {mesh_result['sessions_completed']} sessions over "
              f"{mesh_result['gateways']} gateways / "
              f"{mesh_result['backends']['total']} backends "
              f"({len(mesh_result['regions'])} regions), "
              f"{mesh_result['requests_ok']}/{mesh_result['requests_total']} "
              f"requests ok, 0 failed")
        print(f"  hello p99 {mesh_result['latency_ms']['hello']['p99']:.1f} "
              f"sim ms, record p99 "
              f"{mesh_result['latency_ms']['record']['p99']:.1f} sim ms")
        print(f"  attestations {attestation['attestations_ok']} "
              f"(one home probe per backend + "
              f"{attestation['reattestations']} re-attestations); gossip "
              f"applied {attestation['gossip_applied']} / admitted "
              f"{attestation['gossip_admissions']} remotely")
        results["mesh_storm"] = mesh_result
    args.output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output} "
          f"(wall {time.perf_counter() - started:.1f}s)")
    return results


if __name__ == "__main__":
    main()
