"""Figure 5: dm-crypt I/O latency.

Paper setup (section 6.3.1): dd with 4 KiB blocks over an encrypted
10 GB volume (aes-xts-plain64, pbkdf2/1000), request sizes up to
256 MB.  Reported overheads vs the plain device:

    reads:  min 1.99 %, average 26.32 %
    writes: min 0.35 %, average 12.03 %

Two series are produced:

1. **raw** — wall-clock of our dm-crypt target vs the raw in-memory
   device.  Because the cipher is pure Python/numpy (no AES-NI) and the
   baseline is RAM (no disk), the ratio is inflated by ~3 orders of
   magnitude; only its *shape* (per-request fixed costs amortising into
   an asymptotic ratio) is meaningful.

2. **hardware-calibrated** — the measured encryption *compute* is
   rescaled by the ratio of our cipher throughput to an AES-NI-class
   throughput, and the baseline is a modelled NVMe (2 GB/s + 20 us per
   request).  This places the overheads in the paper's regime so the
   min/avg band can be compared like for like.  The calibration is a
   declared translation, not a measurement of AMD hardware — see
   EXPERIMENTS.md.
"""

import time

import pytest

from repro.bench import Reporter, bench_scale
from repro.crypto.drbg import HmacDrbg
from repro.storage.blockdev import RamBlockDevice
from repro.storage.dm_crypt import luks_format

BLOCK_SIZE = 4096
REQUEST_SIZES = [4096 * (4**i) for i in range(6)]  # 4 KiB .. 4 MiB
VOLUME_BLOCKS = 4096  # 16 MiB volume (paper: 10 GB, scaled)

PAPER_READ = {"min": 1.99, "avg": 26.32}
PAPER_WRITE = {"min": 0.35, "avg": 12.03}

#: The modelled storage + hardware cipher the calibrated series maps to.
DISK_BANDWIDTH = 2e9  # bytes/s sequential
DISK_FIXED = 20e-6  # per-request latency
AESNI_BANDWIDTH = 1.5e9  # bytes/s AES-XTS with AES-NI


@pytest.fixture(scope="module")
def devices():
    rng = HmacDrbg(b"fig5")
    raw = RamBlockDevice(VOLUME_BLOCKS + 2, BLOCK_SIZE)
    crypt = luks_format(raw, rng, passphrase=b"bench")
    plain = RamBlockDevice(VOLUME_BLOCKS, BLOCK_SIZE)
    payload = rng.generate(max(REQUEST_SIZES))
    for first in range(0, VOLUME_BLOCKS, 256):
        count = min(256, VOLUME_BLOCKS - first)
        chunk = payload[: count * BLOCK_SIZE].ljust(count * BLOCK_SIZE, b"\x00")
        crypt.write_blocks(first, chunk)
        for index in range(count):
            plain.write_block(
                first + index, chunk[index * BLOCK_SIZE : (index + 1) * BLOCK_SIZE]
            )
    return raw, crypt, plain, payload


@pytest.fixture(scope="module")
def cipher_calibration(devices):
    """Our cipher's measured throughput -> AES-NI translation factor."""
    _, crypt, _, payload = devices
    size = 2 * 1024 * 1024
    started = time.perf_counter()
    crypt.write_blocks(0, payload[:size])
    elapsed = time.perf_counter() - started
    our_bandwidth = size / elapsed
    return AESNI_BANDWIDTH / our_bandwidth


def _time(operation, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


def _sweep(devices, mode):
    """Per request size: (plain_seconds, crypt_seconds)."""
    _, crypt, plain, payload = devices
    points = []
    for size in REQUEST_SIZES:
        blocks = size // BLOCK_SIZE
        if mode == "read":
            crypt_seconds = _time(lambda: crypt.read_blocks(0, blocks))
            plain_seconds = _time(
                lambda: [plain.read_block(i) for i in range(blocks)]
            )
        else:
            data = payload[:size]
            crypt_seconds = _time(lambda: crypt.write_blocks(0, data))

            def plain_write():
                for index in range(blocks):
                    plain.write_block(
                        index, data[index * BLOCK_SIZE : (index + 1) * BLOCK_SIZE]
                    )

            plain_seconds = _time(plain_write)
        points.append((size, plain_seconds, crypt_seconds))
    return points


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter(
        "fig5", f"dm-crypt I/O latency sweep (scale={bench_scale():.4f})"
    )
    yield reporter
    reporter.finish()


def _report_series(reporter, label, points, paper, calibration):
    reporter.line(f"\n  {label} (paper: min {paper['min']}%, avg {paper['avg']}%)")
    reporter.header(
        ["  size", "raw ovh %", "calibrated ovh %"], [12, 14, 18]
    )
    raw_overheads = []
    calibrated_overheads = []
    for size, plain_seconds, crypt_seconds in points:
        raw = 100.0 * (crypt_seconds - plain_seconds) / plain_seconds
        disk_seconds = DISK_FIXED + size / DISK_BANDWIDTH
        crypt_compute_hw = (crypt_seconds - plain_seconds) / calibration
        calibrated = 100.0 * crypt_compute_hw / disk_seconds
        raw_overheads.append(raw)
        calibrated_overheads.append(calibrated)
        reporter.row(
            [f"  {size // 1024} KiB", f"{raw:.0f}", f"{calibrated:.2f}"],
            [12, 14, 18],
        )
    reporter.line(
        f"  calibrated: min {min(calibrated_overheads):.2f}% "
        f"avg {sum(calibrated_overheads) / len(calibrated_overheads):.2f}% "
        f"(paper min {paper['min']}% avg {paper['avg']}%)"
    )
    return calibrated_overheads


_SERIES = {}


def test_fig5_read_latency(benchmark, devices, reporter, cipher_calibration):
    points = _sweep(devices, "read")
    overheads = _report_series(
        reporter, "sequential reads", points, PAPER_READ, cipher_calibration
    )
    _SERIES["read"] = overheads
    _, crypt, _, _ = devices
    benchmark(lambda: crypt.read_blocks(0, 256))  # 1 MiB representative read
    # Shape: calibrated overhead sits in the paper's tens-of-percent
    # band (not ~0, not thousands), and large requests pay more than
    # the smallest one, where the fixed disk latency dominates.
    assert 1.0 < max(overheads) < 500.0
    assert overheads[-1] > overheads[0] * 0.5


def test_fig5_write_latency(benchmark, devices, reporter, cipher_calibration):
    points = _sweep(devices, "write")
    overheads = _report_series(
        reporter, "sequential writes", points, PAPER_WRITE, cipher_calibration
    )
    _SERIES["write"] = overheads
    _, crypt, _, payload = devices
    benchmark(lambda: crypt.write_blocks(0, payload[: 256 * BLOCK_SIZE]))
    assert 1.0 < max(overheads) < 500.0
    # Cross-series shape, as in the paper: writes cost less than reads
    # (avg 12.03 % vs 26.32 %), and both series bottom out at the
    # smallest request where fixed I/O latency dominates.
    if "read" in _SERIES:
        read = _SERIES["read"]
        assert sum(overheads) / len(overheads) < sum(read) / len(read)
        assert min(read) == read[0]
        assert min(overheads) == overheads[0]


def test_fig5_round_trip_integrity(devices):
    """Sanity: what we read back through dm-crypt is what we wrote."""
    _, crypt, _, payload = devices
    data = payload[: 64 * BLOCK_SIZE]
    crypt.write_blocks(128, data)
    assert crypt.read_blocks(128, 64) == data
