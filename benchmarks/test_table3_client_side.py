"""Table 3: browser-based remote attestation and validation.

Paper (section 6.4; Apple M2 client over WiFi, Firefox + extension):

    network latency                      5.2 ms
    plain HTTP GET                     100.9 ms
    HTTP GET and remote attestation    778.9 ms   (KDS fetch: 427.3 ms)
    HTTP GET and conn. validation      115.0 ms

We reproduce the scenario on the latency-calibrated simulated network:
a fresh browser session attests on first access (dominated by the KDS
round trip), warm accesses pay only the per-request connection
monitoring, and VCEK caching removes the KDS trip from later sessions.
"""

import pytest

from repro.bench import Reporter
from repro.core import RevelioDeployment

PAPER = {
    "network_latency": 5.2,
    "plain_get": 100.9,
    "get_with_attestation": 778.9,
    "kds_fetch": 427.3,
    "get_with_monitoring": 115.0,
}


@pytest.fixture(scope="module")
def deployment(bn_build):
    return RevelioDeployment(bn_build, num_nodes=1, seed=b"t3").deploy()


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter("table3", "Browser-based remote attestation and validation")
    yield reporter
    reporter.finish()


def _sim_ms(deployment, operation):
    start = deployment.network.clock.now
    operation()
    return (deployment.network.clock.now - start) * 1000


def test_table3_scenario(benchmark, deployment, reporter):
    url = f"https://{deployment.domain}/"

    # Row 1: bare network round trip.
    rtt_ms = deployment.latency.base_rtt * 1000

    # Row 2: plain access without the extension.
    plain_browser, _ = deployment.make_user(
        "t3-plain", "10.2.3.1", with_extension=False
    )
    plain_browser.navigate(url)  # absorb the TLS handshake once
    plain_ms = _sim_ms(deployment, lambda: plain_browser.navigate(url))

    # Row 3: fresh session with the extension, cold VCEK cache.
    attested_browser, extension = deployment.make_user("t3-att", "10.2.3.2")
    attest_ms = _sim_ms(deployment, lambda: attested_browser.navigate(url))
    kds_ms = (deployment.latency.kds_rtt + deployment.latency.kds_processing) * 1000

    # Row 4: already-attested session: per-request monitoring only.
    monitored_ms = _sim_ms(deployment, lambda: attested_browser.navigate(url))

    reporter.line("\n  (simulated network calibrated to the paper's testbed)")
    reporter.compare("network latency", PAPER["network_latency"], rtt_ms)
    reporter.compare("plain HTTP GET", PAPER["plain_get"], plain_ms)
    reporter.compare(
        "GET + remote attestation", PAPER["get_with_attestation"], attest_ms,
        note=f"(KDS fetch {kds_ms:.1f} ms; paper {PAPER['kds_fetch']} ms)",
    )
    reporter.compare(
        "GET + connection validation", PAPER["get_with_monitoring"], monitored_ms
    )

    benchmark(lambda: attested_browser.navigate(url))

    # Shape assertions:
    assert rtt_ms < plain_ms < monitored_ms < attest_ms
    # The KDS round trip dominates fresh attestation (>50% of total).
    assert kds_ms > 0.5 * attest_ms
    # Monitoring overhead is small relative to the page access itself.
    assert monitored_ms - plain_ms < 0.5 * plain_ms


def test_table3_vcek_caching(benchmark, deployment, reporter):
    """The paper's caching remark: later sessions skip the KDS trip."""
    url = f"https://{deployment.domain}/"
    browser, extension = deployment.make_user("t3-cache", "10.2.3.3")
    cold_ms = _sim_ms(deployment, lambda: browser.navigate(url))
    browser.new_session()  # fresh context, persistent VCEK cache
    warm_ms = _sim_ms(deployment, lambda: browser.navigate(url))
    reporter.line(
        f"\n  fresh attestation: cold VCEK {cold_ms:.1f} ms vs "
        f"cached VCEK {warm_ms:.1f} ms "
        f"(saves the {deployment.latency.kds_rtt * 1000:.0f} ms KDS trip)"
    )
    benchmark(lambda: (browser.new_session(), browser.navigate(url)))
    assert cold_ms - warm_ms > 0.8 * deployment.latency.kds_rtt * 1000
    assert extension.kds.cache_hits >= 1


def test_table3_monitoring_per_request_cost(benchmark, deployment, reporter):
    """Monitored vs unmonitored steady-state access (115.0 vs 100.9)."""
    url = f"https://{deployment.domain}/"
    monitored, _ = deployment.make_user("t3-mon", "10.2.3.4")
    unmonitored, _ = deployment.make_user(
        "t3-unmon", "10.2.3.5", with_extension=False
    )
    monitored.navigate(url)
    unmonitored.navigate(url)

    runs = 20
    monitored_ms = _sim_ms(
        deployment, lambda: [monitored.navigate(url) for _ in range(runs)]
    ) / runs
    unmonitored_ms = _sim_ms(
        deployment, lambda: [unmonitored.navigate(url) for _ in range(runs)]
    ) / runs
    delta = monitored_ms - unmonitored_ms
    paper_delta = PAPER["get_with_monitoring"] - PAPER["plain_get"]
    reporter.line(
        f"\n  per-request monitoring cost: {delta:.1f} ms "
        f"(paper: {paper_delta:.1f} ms)"
    )
    benchmark(lambda: monitored.navigate(url))
    assert 0 < delta < 3 * paper_delta
