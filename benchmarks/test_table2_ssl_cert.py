"""Table 2: SSL certificate generation and distribution.

Paper (section 6.3.2, per node, measured at the SP node):

    attestation evidence retrieval      17 ms
    attestation evidence validation     13 ms
    SSL certificate generation        2996 ms
    SSL certificate distribution        15 ms

We run the Fig. 4 provisioning flow against a single-node fleet on the
latency-calibrated simulated network and report each phase: retrieval
and distribution are network round trips (simulated clock), validation
is real verifier compute (measured wall clock; the SP contacts the KDS
beforehand as in the paper, so validation itself is KDS-warm), and
certificate generation is the ACME DNS-01 issuance.  The shape to
reproduce: generation dominates by two orders of magnitude; everything
else is tens of milliseconds.
"""

import pytest

from repro.bench import Reporter
from repro.build import build_revelio_image
from repro.core import RevelioDeployment

PAPER = {
    "evidence_retrieval": 17.0,
    "evidence_validation": 13.0,
    "certificate_generation": 2996.0,
    "certificate_distribution": 15.0,
}


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter("table2", "SSL certificate generation and distribution")
    yield reporter
    reporter.finish()


def _provision_once(bn_build, seed, warm_kds=True):
    deployment = RevelioDeployment(bn_build, num_nodes=1, seed=seed)
    deployment.launch_fleet()
    deployment.create_sp_node()
    if warm_kds:
        # The SP has talked to the KDS before (normal operation): warm
        # the VCEK cache so validation measures verification compute,
        # like the paper's 13 ms.
        node = deployment.nodes[0]
        deployment.sp.kds.get_vcek(
            node.vm.guest.processor.chip_id,
            node.vm.guest.processor.current_tcb,
        )
    return deployment.provision_certificates()


def test_table2_phases(benchmark, bn_build, reporter):
    result = benchmark.pedantic(
        lambda: _provision_once(bn_build, b"t2"), rounds=3, iterations=1
    )
    reporter.line("\n  per-phase cost (1-node fleet, KDS-warm SP):")
    measured_ms = {}
    for phase, paper_ms in PAPER.items():
        timing = result.timings[phase]
        if phase == "evidence_validation":
            # compute-bound: wall clock of the verifier
            measured = timing.real_seconds * 1000
            source = "real compute"
        else:
            # network/CA-bound: simulated clock
            measured = timing.simulated_seconds * 1000
            source = "simulated net"
        measured_ms[phase] = measured
        reporter.compare(phase, paper_ms, measured, note=f"({source})")

    # Shape: certificate generation dominates everything else by >10x.
    others = [v for k, v in measured_ms.items() if k != "certificate_generation"]
    assert measured_ms["certificate_generation"] > 10 * max(others)
    # Retrieval/validation/distribution all stay in the tens of ms.
    assert all(value < 200.0 for value in others)


def test_table2_cold_kds_validation(benchmark, bn_build, reporter):
    """Without the VCEK cache the validation phase absorbs a full KDS
    round trip — the cost the paper's caching remark is about."""

    def cold():
        deployment = RevelioDeployment(bn_build, num_nodes=1, seed=b"t2-cold")
        deployment.launch_fleet()
        deployment.create_sp_node()
        return deployment.provision_certificates()

    result = benchmark.pedantic(cold, rounds=1, iterations=1)
    timing = result.timings["evidence_validation"]
    total_ms = (timing.simulated_seconds + timing.real_seconds) * 1000
    reporter.line(
        f"\n  validation with cold KDS cache: {total_ms:.1f} ms "
        f"(vs ~13 ms warm; KDS round trip dominates)"
    )
    assert timing.simulated_seconds * 1000 > 300.0


def test_table2_renewal_amortisation(benchmark, bn_build, reporter):
    """The paper notes issuance happens ~every 90 days; show the cost is
    a one-off against steady-state request service."""
    deployment = RevelioDeployment(bn_build, num_nodes=1, seed=b"t2-amort")
    deployment.deploy()
    browser, _ = deployment.make_user()
    browser.navigate(f"https://{deployment.domain}/")

    clock = deployment.network.clock
    start = clock.now
    for _ in range(50):
        browser.navigate(f"https://{deployment.domain}/")
    per_request_ms = (clock.now - start) / 50 * 1000
    issuance_ms = (
        deployment.provisioning.timings["certificate_generation"].simulated_seconds
        * 1000
    )
    reporter.line(
        f"\n  steady-state request: {per_request_ms:.1f} ms vs one-off "
        f"issuance {issuance_ms:.0f} ms (renewed every 90 days)"
    )
    benchmark(lambda: browser.navigate(f"https://{deployment.domain}/"))
    assert per_request_ms < issuance_ms
