"""Ablations over Revelio's design choices (DESIGN.md's ablation index).

1. **Measured envelope coverage** — what each layer of the trust chain
   adds to boot time (firmware-only vs +verity vs full Revelio init).
2. **TLS key sharing vs per-node certificates** — the paper's §3.4.6
   rationale: under ACME rate limits, per-node issuance stops scaling.
3. **VCEK caching** — verifier-side cost across repeated attestations.
4. **dm-verity geometry** — hash-block-size (arity) sweep: wider trees
   are shallower and verify faster per read.
5. **Fleet size** — provisioning scales linearly in nodes with a single
   certificate issuance (requirement D3).
"""

import time

import pytest

from repro.bench import Reporter
from repro.build import build_revelio_image
from repro.core import RevelioDeployment
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import ZERO_LATENCY
from repro.pki.acme import RateLimitError


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter("ablations", "Design-choice ablations")
    yield reporter
    reporter.finish()


def test_ablation_measured_envelope(benchmark, bench_registry, reporter):
    """Cost of each trust-chain extension at boot."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))
    from _common import boundary_node_spec

    from repro.amd.secure_processor import AmdKeyInfrastructure
    from repro.virt.hypervisor import Hypervisor

    registry, pins = bench_registry
    variants = {
        "firmware-only (no Revelio init)": (),
        "+ verity rootfs (F2 coverage)": ("verity-rootfs",),
        "+ lockdown + sealing + identity (full)": (
            "verity-rootfs", "network-lockdown", "dm-crypt-data",
            "identity-creation", "start-services",
        ),
    }
    reporter.line("\n  boot-time cost of extending the measured envelope:")
    results = {}

    def boot_all():
        for label, steps in variants.items():
            build = build_revelio_image(
                boundary_node_spec(registry, pins, init_steps=steps,
                                   base_boot_services=())
            )
            amd = AmdKeyInfrastructure(HmacDrbg(b"abl1"))
            hv = Hypervisor(amd.provision_chip("abl"), HmacDrbg(b"abl-hv"))
            vm = hv.launch(build.image)
            started = time.perf_counter()
            vm.boot()
            results[label] = time.perf_counter() - started
        return results

    results = benchmark.pedantic(boot_all, rounds=1, iterations=1)
    for label, seconds in results.items():
        reporter.line(f"    {label:<44s} {seconds * 1000:8.1f} ms")
    ordered = list(results.values())
    assert ordered[0] < ordered[1] <= ordered[2] * 1.05  # coverage costs time


def test_ablation_key_sharing_vs_per_node_certs(benchmark, bn_build, reporter):
    """§3.4.6: with Let's Encrypt-style limits (5/week), per-node
    certificates cap the fleet; a shared certificate does not."""
    fleet_size = 8

    deployment = RevelioDeployment(
        bn_build, num_nodes=fleet_size, latency=ZERO_LATENCY, seed=b"abl2"
    )
    deployment.launch_fleet()
    deployment.create_sp_node()
    result = benchmark.pedantic(
        lambda: deployment.provision_certificates(), rounds=1, iterations=1
    )
    shared_issuances = len(deployment.acme.issued)
    reporter.line(
        f"\n  shared certificate: fleet of {fleet_size} nodes provisioned "
        f"with {shared_issuances} ACME issuance(s)"
    )
    assert shared_issuances == 1
    assert all(d.node.serving for d in deployment.nodes)

    # Per-node strategy: each node gets its own certificate.
    from repro.crypto.x509 import CertificateSigningRequest, Name
    from repro.crypto.keys import PrivateKey
    from repro.pki.certbot import CertbotClient

    rng = HmacDrbg(b"abl2-per-node")
    certbot = CertbotClient(deployment.acme, deployment.network.dns)
    issued = 0
    hit_limit_at = None
    for index in range(fleet_size):
        key = PrivateKey.generate_ecdsa(rng)
        csr = CertificateSigningRequest.create(
            Name("per-node.example"), key, san=("per-node.example",)
        )
        try:
            certbot.obtain_certificate("per-node.example", csr)
            issued += 1
        except RateLimitError:
            hit_limit_at = index + 1
            break
    reporter.line(
        f"  per-node certificates: rate limit hit at node "
        f"{hit_limit_at} of {fleet_size} (only {issued} issued)"
    )
    assert hit_limit_at is not None and hit_limit_at <= fleet_size
    assert issued < fleet_size


def test_ablation_vcek_caching(benchmark, bn_build, reporter):
    """Verifier-side: N attestations with and without the VCEK cache."""
    deployment = RevelioDeployment(bn_build, num_nodes=1, seed=b"abl3").deploy()
    url = f"https://{deployment.domain}/"
    runs = 5

    user_counter = iter(range(1, 200))

    def sessions(kds_cache):
        index = next(user_counter)
        browser, _ = deployment.make_user(
            f"abl3-{index}", f"10.2.5.{index}", kds_cache=kds_cache
        )
        start = deployment.network.clock.now
        for _ in range(runs):
            browser.new_session()
            assert not browser.navigate(url).blocked
        return (deployment.network.clock.now - start) / runs * 1000

    cached_ms = sessions(True)
    uncached_ms = sessions(False)
    reporter.line(
        f"\n  avg fresh-session attestation over {runs} sessions: "
        f"cached VCEK {cached_ms:.0f} ms vs uncached {uncached_ms:.0f} ms"
    )
    benchmark.pedantic(lambda: sessions(True), rounds=1, iterations=1)
    assert uncached_ms > cached_ms + 0.8 * deployment.latency.kds_rtt * 1000


def test_ablation_verity_size_scaling(benchmark, reporter):
    """Boot-time verification scales linearly in rootfs size — why the
    paper's 4 GB rootfs costs 4.7 s and why Table 1's verify row
    dominates.  Throughput should be roughly constant across sizes."""
    from repro.crypto.drbg import HmacDrbg
    from repro.storage.blockdev import RamBlockDevice
    from repro.storage.dm_verity import verity_format, verity_open

    reporter.line("\n  dm-verity full verification vs rootfs size:")
    throughputs = {}
    verity = None
    for mib in (2, 8, 32):
        num_blocks = mib * 256  # 4 KiB blocks
        data = HmacDrbg(b"abl-size-%d" % mib).generate(num_blocks * 4096)
        device = RamBlockDevice(num_blocks, 4096, initial=data)
        result = verity_format(device)
        verity = verity_open(device, result.hash_device, result.root_hash)
        started = time.perf_counter()
        verity.verify_all()
        seconds = time.perf_counter() - started
        throughputs[mib] = mib / seconds
        reporter.line(
            f"    {mib:3d} MiB: {seconds * 1000:8.1f} ms "
            f"({mib / seconds:6.1f} MiB/s)"
        )
    benchmark.pedantic(lambda: verity.verify_all(), rounds=1, iterations=1)
    # Linear scaling: throughput within 3x across a 16x size range.
    assert max(throughputs.values()) < 3 * min(throughputs.values())


def test_ablation_verity_geometry(benchmark, reporter):
    """Hash-block-size sweep: smaller blocks -> deeper trees -> slower
    reads but finer-grained hashing; 4 KiB (the paper's choice) wins."""
    from repro.crypto.drbg import HmacDrbg
    from repro.storage.blockdev import RamBlockDevice
    from repro.storage.dm_verity import verity_format, verity_open

    data = HmacDrbg(b"abl4").generate(4 * 1024 * 1024)
    reporter.line("\n  dm-verity block-size sweep (4 MiB device, full scan):")
    timings = {}
    for block_size in (512, 1024, 4096):
        device = RamBlockDevice(len(data) // block_size, block_size, initial=data)
        result = verity_format(device)
        verity = verity_open(device, result.hash_device, result.root_hash)
        levels = len(result.superblock.level_block_counts())
        started = time.perf_counter()
        verity.verify_all()
        seconds = time.perf_counter() - started
        timings[block_size] = seconds
        reporter.line(
            f"    block size {block_size:5d} B ({levels} levels): "
            f"{seconds * 1000:8.1f} ms"
        )
    benchmark.pedantic(
        lambda: verity.verify_all(), rounds=1, iterations=1
    )
    assert timings[4096] < timings[512]


def test_ablation_ra_tls_vs_well_known(benchmark, bench_registry, reporter):
    """Evidence transport ablation: RA-TLS (report inside the TLS cert,
    1 connection) vs the paper's well-known URL (extra HTTPS fetch)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))
    from _common import boundary_node_spec

    from repro.build import NetworkPolicy
    from repro.core.ra_tls import RA_TLS_PORT, ra_tls_connect, serve_ra_tls
    from repro.crypto.drbg import HmacDrbg

    registry, pins = bench_registry
    build = build_revelio_image(
        boundary_node_spec(
            registry, pins,
            network_policy=NetworkPolicy(
                allowed_inbound_ports=(443, 8080, RA_TLS_PORT)
            ),
        )
    )
    deployment = RevelioDeployment(build, num_nodes=1, seed=b"abl6").deploy()
    serve_ra_tls(deployment.nodes[0].node)

    # Well-known URL path (fresh session, warm VCEK for fairness).
    browser, _ = deployment.make_user("abl6-wk", "10.2.6.1")
    url = f"https://{deployment.domain}/"
    browser.navigate(url)  # warm the VCEK cache
    browser.new_session()
    start = deployment.network.clock.now
    browser.navigate(url)
    well_known_ms = (deployment.network.clock.now - start) * 1000

    # RA-TLS path: one handshake carries the evidence (same warm KDS).
    client = deployment.network.add_host("abl6-ra", "10.2.6.2")
    kds = deployment._new_kds_client()
    node = deployment.nodes[0]
    kds.get_vcek(node.vm.guest.processor.chip_id,
                 node.vm.guest.processor.current_tcb)
    start = deployment.network.clock.now

    def ra_tls_access():
        connection = ra_tls_connect(
            client, deployment.node_ip(0), RA_TLS_PORT,
            f"{node.vm.name}.ra-tls", kds,
            [build.expected_measurement], HmacDrbg(b"abl6"),
        )
        from repro.net.http import HttpRequest

        connection.request(HttpRequest("GET", "/").encode())
        connection.close()

    ra_tls_access()
    ra_tls_ms = (deployment.network.clock.now - start) * 1000
    reporter.line(
        f"\n  attested access: well-known URL {well_known_ms:.1f} ms vs "
        f"RA-TLS {ra_tls_ms:.1f} ms (evidence rides the handshake)"
    )
    benchmark.pedantic(ra_tls_access, rounds=3, iterations=1)
    assert ra_tls_ms < well_known_ms


def test_ablation_fleet_scaling(benchmark, bn_build, reporter):
    """Provisioning cost vs fleet size (one issuance regardless)."""
    reporter.line("\n  provisioning wall time vs fleet size:")
    timings = {}

    def run_all():
        for fleet_size in (1, 2, 4):
            deployment = RevelioDeployment(
                bn_build, num_nodes=fleet_size, latency=ZERO_LATENCY,
                seed=b"abl5-%d" % fleet_size,
            )
            deployment.launch_fleet()
            deployment.create_sp_node()
            started = time.perf_counter()
            deployment.provision_certificates()
            timings[fleet_size] = time.perf_counter() - started
            assert len(deployment.acme.issued) == 1
        return timings

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for fleet_size, seconds in timings.items():
        reporter.line(f"    {fleet_size} node(s): {seconds * 1000:8.1f} ms")
    # Roughly linear, certainly not quadratic.
    assert timings[4] < 8 * timings[1] + 0.5
