"""The discrete-event kernel.

Processes are plain generators that yield *commands*:

``yield sleep(seconds)``
    Suspend for virtual time.

``yield wait(event_or_process)``
    Suspend until a :class:`SimEvent` fires (resumes with its value) or
    another :class:`SimProcess` finishes (resumes with its return
    value).  Waiting on something already finished resumes immediately.

``yield spawn(generator, name=...)``
    Start a concurrent child process; the parent resumes immediately
    with the child's :class:`SimProcess` handle (so it can later
    ``wait`` on it or ``interrupt`` it).

The kernel owns a single event heap keyed on ``(virtual time, sequence
number)`` over the shared :class:`repro.net.latency.SimClock`, which
makes every run fully deterministic: same seed, same interleaving.
Unhandled exceptions in a process propagate out of :meth:`EventKernel.run`
unless another process is waiting on it, in which case the exception is
re-raised in the waiter (structured error propagation).
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple


class sleep:  # noqa: N801 - command, reads as a verb at yield sites
    """Command: suspend the yielding process for ``seconds`` of virtual time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("cannot sleep for negative time")
        self.seconds = float(seconds)


class wait:  # noqa: N801
    """Command: suspend until an event fires or a process finishes."""

    __slots__ = ("target",)

    def __init__(self, target: "SimEvent | SimProcess"):
        self.target = target


class spawn:  # noqa: N801
    """Command: start a child process; parent resumes with its handle."""

    __slots__ = ("generator", "name")

    def __init__(self, generator: Generator, name: Optional[str] = None):
        self.generator = generator
        self.name = name


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event processes can ``wait`` on."""

    def __init__(self, kernel: "EventKernel", name: str = "event"):
        self._kernel = kernel
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["SimProcess"] = []

    def succeed(self, value: Any = None) -> None:
        """Fire the event, resuming every waiter with ``value``."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._waiting_on = None
            self._kernel._schedule(process, send=value)

    def _remove_waiter(self, process: "SimProcess") -> None:
        if process in self._waiters:
            self._waiters.remove(process)


class SimProcess:
    """A running generator plus its completion state."""

    def __init__(self, kernel: "EventKernel", generator: Generator, name: str):
        self._kernel = kernel
        self._generator = generator
        self.name = name
        self.finished = False
        self.value: Any = None          # StopIteration value on success
        self.error: Optional[BaseException] = None
        self._completion = SimEvent(kernel, name=f"{name}.completion")
        self._waiting_on: Optional[SimEvent] = None
        self._resume_token = 0          # invalidates stale heap entries

    @property
    def alive(self) -> bool:
        return not self.finished

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self._kernel._schedule(self, throw=Interrupt(cause))

    def _finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.value = value
        self.error = error
        self._resume_token += 1  # drop any stale scheduled resume
        if error is None:
            self._completion.succeed(value)
        else:
            # Re-raise in every waiter; with no waiters the kernel
            # propagates the error out of run().
            self.error_consumed = bool(self._completion._waiters)
            waiters, self._completion._waiters = self._completion._waiters, []
            self._completion.triggered = True
            for process in waiters:
                process._waiting_on = None
                self._kernel._schedule(process, throw=error)


class EventKernel:
    """Deterministic event loop over a :class:`SimClock`."""

    def __init__(self, clock, rng=None):
        self.clock = clock
        self.rng = rng
        self._heap: List[Tuple[float, int, SimProcess, int, str, Any]] = []
        self._sequence = 0
        self.steps = 0

    # -- scheduling -------------------------------------------------

    def spawn(self, generator: Generator, name: Optional[str] = None) -> SimProcess:
        """Register a top-level process; it starts when ``run`` reaches now."""
        process = SimProcess(self, generator, name or f"proc-{self._sequence}")
        self._schedule(process, send=None)
        return process

    def event(self, name: str = "event") -> SimEvent:
        return SimEvent(self, name=name)

    def _schedule(
        self,
        process: SimProcess,
        delay: float = 0.0,
        send: Any = None,
        throw: Optional[BaseException] = None,
    ) -> None:
        process._resume_token += 1
        self._sequence += 1
        mode, payload = ("throw", throw) if throw is not None else ("send", send)
        heapq.heappush(
            self._heap,
            (self.clock.now + delay, self._sequence, process,
             process._resume_token, mode, payload),
        )

    # -- execution --------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order; returns the final virtual time.

        Stops when the heap drains or the next event lies beyond
        ``until`` (the clock is then advanced exactly to ``until``).
        """
        while self._heap:
            when, _seq, process, token, mode, payload = self._heap[0]
            if until is not None and when > until:
                # A synchronous step (e.g. the rollout's provisioning)
                # may already have pushed the clock past the horizon.
                if until > self.clock.now:
                    self.clock.advance_to(until)
                return self.clock.now
            heapq.heappop(self._heap)
            if process.finished or token != process._resume_token:
                continue  # stale entry (interrupted or re-scheduled)
            if when > self.clock.now:
                self.clock.advance_to(when)
            self._step(process, mode, payload)
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)
        return self.clock.now

    def _step(self, process: SimProcess, mode: str, payload: Any) -> None:
        self.steps += 1
        try:
            if mode == "throw":
                command = process._generator.throw(payload)
            else:
                command = process._generator.send(payload)
        except StopIteration as stop:
            process._finish(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - structured propagation
            process._finish(error=exc)
            if not getattr(process, "error_consumed", False):
                raise
            return
        self._dispatch(process, command)

    def _dispatch(self, process: SimProcess, command: Any) -> None:
        if isinstance(command, sleep):
            self._schedule(process, delay=command.seconds)
        elif isinstance(command, wait):
            target = command.target
            event = target._completion if isinstance(target, SimProcess) else target
            if isinstance(target, SimProcess) and target.finished:
                if target.error is not None:
                    target.error_consumed = True
                    self._schedule(process, throw=target.error)
                else:
                    self._schedule(process, send=target.value)
            elif event.triggered:
                self._schedule(process, send=event.value)
            else:
                process._waiting_on = event
                event._waiters.append(process)
        elif isinstance(command, spawn):
            child = SimProcess(
                self, command.generator, command.name or f"proc-{self._sequence}"
            )
            self._schedule(child, send=None)
            self._schedule(process, send=child)
        else:
            raise TypeError(
                f"process {process.name!r} yielded {command!r}; expected "
                "sleep/wait/spawn"
            )


def run_until_complete(kernel: EventKernel, generator: Generator,
                       name: str = "main") -> Any:
    """Spawn ``generator`` and run the kernel until it finishes."""
    process = kernel.spawn(generator, name=name)
    kernel.run()
    if not process.finished:
        raise RuntimeError(f"deadlock: {name!r} never finished (heap drained)")
    if process.error is not None:
        raise process.error
    return process.value
