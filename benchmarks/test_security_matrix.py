"""Section 6.1 security matrix: every attack, its detector, and the
cost of detection.

Not a table in the paper, but its security analysis is the evaluation's
first half.  The boot-time attack matrix itself now lives in the
campaign catalog (``repro.scenarios``, campaign ``launch-61``) where
containment, recovery, and benign twins are asserted uniformly — the
matrix test here is a thin parity wrapper that runs that campaign and
re-derives the bench's historical (attack, detected) outcome shape.
The cost-of-detection benchmarks (report verification throughput,
fresh-session extension validation) are unchanged.
"""

import pytest

from repro.amd.verify import verify_attestation_report
from repro.bench import Reporter
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from repro.scenarios import CampaignRunner, get_campaign


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter("security_matrix", "Section 6.1 attacks and detection costs")
    yield reporter
    reporter.finish()


@pytest.fixture(scope="module")
def deployment(bn_build):
    return RevelioDeployment(
        bn_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"sec"
    ).deploy()


#: Campaign scenario -> the bench's historical attack label.
_LAUNCH_PARITY = {
    "kernel-substitution-honest-table": "kernel substitution (honest table)",
    "kernel-substitution-matching-hashes": "kernel substitution (matching hashes)",
    "malicious-firmware": "malicious OVMF",
    "rootfs-bitflip": "rootfs bit flip",
}


def test_attack_detection_matrix(benchmark, bn_build, reporter):
    """Run the boot-time matrix once via the launch-61 campaign and
    assert the same outcomes the hand-rolled matrix used to."""

    def run_matrix():
        report = CampaignRunner(
            bn_build, get_campaign("launch-61"), seed=0
        ).run()
        outcomes = []
        for entry in report.scenarios:
            label = _LAUNCH_PARITY[entry["name"]]
            detected = (
                entry["landed"] and entry["contained"] and entry["recovered"]
            )
            outcomes.append((label, detected, entry["expect"]))
        return report, outcomes

    report, outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    reporter.line("\n  attack -> detected (stable reason code):")
    for attack, detected, expect in outcomes:
        status = "DETECTED" if detected else "MISSED"
        reporter.line(f"    {attack:<42s} {status}  {expect}")
    assert report.ok, report.violations
    assert sorted(label for label, _, _ in outcomes) == sorted(
        _LAUNCH_PARITY.values()
    )
    assert all(detected for _, detected, _ in outcomes)


def test_report_verification_throughput(benchmark, deployment, reporter):
    """How many full report verifications per second a verifier manages
    (chain + ECDSA P-384 + field checks)."""
    node = deployment.nodes[0]
    report = node.node.tls_report
    kds = deployment._new_kds_client()
    vcek = kds.get_vcek(report.chip_id, report.reported_tcb)
    chain = kds.cert_chain()
    anchor = kds.trust_anchor

    def verify():
        return verify_attestation_report(
            report, vcek, chain, [anchor], now=0,
            expected_measurement=deployment.build.expected_measurement,
        )

    result = benchmark(verify)
    assert result.checked_measurement
    reporter.line(
        "\n  one full report verification (see pytest-benchmark table for ops/s)"
    )


def test_extension_validation_cost(benchmark, deployment, reporter):
    """Real compute of a complete extension attestation (fresh session,
    warm VCEK): the client-side work behind Table 3's row 3."""
    browser, extension = deployment.make_user("sec-user", "10.2.4.1")
    url = f"https://{deployment.domain}/"
    browser.navigate(url)  # warm caches

    def fresh_attestation():
        browser.new_session()
        return browser.navigate(url)

    result = benchmark(fresh_attestation)
    assert not result.blocked
    reporter.line("  one fresh-session extension validation benchmarked")
