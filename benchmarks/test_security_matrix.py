"""Section 6.1 security matrix: every attack, its detector, and the
cost of detection.

Not a table in the paper, but its security analysis is the evaluation's
first half — this bench executes each attack end to end, asserts it is
caught, and measures how expensive the catching machinery is (report
verification throughput, boot-time verification, verity scan).
"""

import time

import pytest

from repro.amd.verify import AttestationError, verify_attestation_report
from repro.bench import Reporter
from repro.core import RevelioDeployment
from repro.net.latency import ZERO_LATENCY
from repro.virt.firmware import build_firmware
from repro.virt.hypervisor import LaunchAttack
from repro.virt.image import KernelBlob
from repro.virt.vm import BootFailure


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter("security_matrix", "Section 6.1 attacks and detection costs")
    yield reporter
    reporter.finish()


@pytest.fixture(scope="module")
def deployment(bn_build):
    return RevelioDeployment(
        bn_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"sec"
    ).deploy()


def test_attack_detection_matrix(benchmark, bn_build, reporter):
    """Run the full matrix once (timed as a whole)."""

    def run_matrix():
        outcomes = []

        # 6.1.1a: substituted kernel, honest hash table.
        deployment = RevelioDeployment(
            bn_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"sm1"
        )
        started = time.perf_counter()
        try:
            deployment.launch_fleet(
                attack_for=lambda i: LaunchAttack(
                    replace_kernel=KernelBlob("evil", "6").encode(),
                    inject_expected_hashes=True,
                )
            )
            outcomes.append(("kernel substitution (honest table)", False, 0))
        except BootFailure:
            outcomes.append(
                ("kernel substitution (honest table)", True,
                 time.perf_counter() - started)
            )

        # 6.1.1b: substituted kernel with matching hashes -> attestation.
        deployment = RevelioDeployment(
            bn_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"sm2"
        )
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                replace_kernel=KernelBlob("evil", "6").encode()
            )
        )
        deployment.create_sp_node()
        started = time.perf_counter()
        try:
            deployment.sp.provision_fleet([deployment.node_ip(0)])
            outcomes.append(("kernel substitution (matching hashes)", False, 0))
        except AttestationError:
            outcomes.append(
                ("kernel substitution (matching hashes)", True,
                 time.perf_counter() - started)
            )

        # 6.1.1c: malicious firmware.
        deployment = RevelioDeployment(
            bn_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"sm3"
        )
        deployment.launch_fleet(
            attack_for=lambda i: LaunchAttack(
                replace_firmware_template=build_firmware(verify_hashes=False)
            )
        )
        deployment.create_sp_node()
        started = time.perf_counter()
        try:
            deployment.sp.provision_fleet([deployment.node_ip(0)])
            outcomes.append(("malicious OVMF", False, 0))
        except AttestationError:
            outcomes.append(("malicious OVMF", True, time.perf_counter() - started))

        # 6.1.2: rootfs bit flip.
        deployment = RevelioDeployment(
            bn_build, num_nodes=1, latency=ZERO_LATENCY, seed=b"sm4"
        )
        started = time.perf_counter()
        try:
            deployment.launch_fleet(
                attack_for=lambda i: LaunchAttack(
                    tamper_disk=lambda disk: disk.corrupt(4096 * 5 + 3)
                )
            )
            outcomes.append(("rootfs bit flip", False, 0))
        except BootFailure:
            outcomes.append(("rootfs bit flip", True, time.perf_counter() - started))

        return outcomes

    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    reporter.line("\n  attack -> detected (time to detection):")
    for attack, detected, seconds in outcomes:
        status = "DETECTED" if detected else "MISSED"
        reporter.line(f"    {attack:<42s} {status}  {seconds * 1000:8.1f} ms")
    assert all(detected for _, detected, _ in outcomes)


def test_report_verification_throughput(benchmark, deployment, reporter):
    """How many full report verifications per second a verifier manages
    (chain + ECDSA P-384 + field checks)."""
    node = deployment.nodes[0]
    report = node.node.tls_report
    kds = deployment._new_kds_client()
    vcek = kds.get_vcek(report.chip_id, report.reported_tcb)
    chain = kds.cert_chain()
    anchor = kds.trust_anchor

    def verify():
        return verify_attestation_report(
            report, vcek, chain, [anchor], now=0,
            expected_measurement=deployment.build.expected_measurement,
        )

    result = benchmark(verify)
    assert result.checked_measurement
    reporter.line(
        "\n  one full report verification (see pytest-benchmark table for ops/s)"
    )


def test_extension_validation_cost(benchmark, deployment, reporter):
    """Real compute of a complete extension attestation (fresh session,
    warm VCEK): the client-side work behind Table 3's row 3."""
    browser, extension = deployment.make_user("sec-user", "10.2.4.1")
    url = f"https://{deployment.domain}/"
    browser.navigate(url)  # warm caches

    def fresh_attestation():
        browser.new_session()
        return browser.navigate(url)

    result = benchmark(fresh_attestation)
    assert not result.blocked
    reporter.line("  one fresh-session extension validation benchmarked")
