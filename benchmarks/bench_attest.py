"""Cold vs cached attestation through the unified pipeline.

Runs the full engine (KDS fetch -> chain -> signature -> policy checks)
with VCEK caching disabled and enabled, recording both the simulated
network cost per verification (the paper's 427.3 ms KDS figure) and the
real wall-clock verification throughput.  Writes ``BENCH_attest.json``
next to this script.

Run directly: ``PYTHONPATH=src python benchmarks/bench_attest.py``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.amd.kds import KeyDistributionServer
from repro.amd.policy import REVELIO_POLICY
from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.attest import AttestationTracer, AttestationVerifier, VerificationPolicy
from repro.core.kds_client import KdsClient
from repro.crypto import ec, sigcache
from repro.crypto.drbg import HmacDrbg
from repro.net.latency import LatencyModel, SimClock

ROUNDS = 20
REPORT_DATA = b"\x42" * 64
NOW = 1_000_000


def _world():
    amd = AmdKeyInfrastructure(HmacDrbg(b"bench-attest"))
    kds_server = KeyDistributionServer(amd)
    chip = amd.provision_chip("bench-chip")
    guest = chip.launch_vm(b"revelio-fw", REVELIO_POLICY)
    return kds_server, chip, guest


def _measure(cache_enabled: bool) -> dict:
    # Fresh crypto caches so cold/cached scenarios don't leak into each
    # other; within a scenario the caches fill naturally, which is the
    # effect being measured.
    sigcache.reset_cache()
    ec.reset_point_cache()
    kds_server, chip, guest = _world()
    clock = SimClock()
    client = KdsClient(
        kds_server,
        clock,
        LatencyModel(kds_rtt=0.400, kds_processing=0.0273),
        cache_enabled=cache_enabled,
    )
    tracer = AttestationTracer()
    verifier = AttestationVerifier(
        client,
        tracer=tracer,
        site="bench:cached" if cache_enabled else "bench:cold",
    )
    policy = VerificationPolicy(
        golden_measurements=(guest.measurement,),
        expected_report_data=REPORT_DATA,
        allowed_chip_ids=(chip.chip_id,),
    )
    report = guest.get_report(REPORT_DATA)
    if cache_enabled:
        verifier.verify(report, now=NOW, policy=policy)  # warm the cache

    sim_before = clock.now
    started = time.perf_counter()
    for _ in range(ROUNDS):
        outcome = verifier.verify(report, now=NOW, policy=policy)
        assert outcome.ok, outcome.reason
    wall_seconds = time.perf_counter() - started
    sim_seconds = clock.now - sim_before

    counters = tracer.counters
    return {
        "rounds": ROUNDS,
        "sim_ms_per_verification": sim_seconds / ROUNDS * 1000.0,
        "sim_ms_total": sim_seconds * 1000.0,
        "wall_verifications_per_sec": ROUNDS / wall_seconds,
        "kds_fetches": counters.kds_fetches,
        "kds_cache_hit_rate": counters.kds_cache_hit_rate(),
        "sig_cache_hit_rate": counters.sig_cache_hit_rate(),
        "step_latency_ms_mean": counters.snapshot()["step_latency_ms_mean"],
    }


def main() -> dict:
    cold = _measure(cache_enabled=False)
    cached = _measure(cache_enabled=True)
    assert cached["sim_ms_per_verification"] < cold["sim_ms_per_verification"], (
        "cached verification must be strictly cheaper in simulated time"
    )
    results = {
        "benchmark": "attest-pipeline cold vs cached",
        "paper_kds_round_trip_ms": 427.3,
        "cold": cold,
        "cached": cached,
        "cached_saves_sim_ms": (
            cold["sim_ms_per_verification"] - cached["sim_ms_per_verification"]
        ),
    }
    output = Path(__file__).resolve().parent / "BENCH_attest.json"
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"cold:   {cold['sim_ms_per_verification']:8.1f} sim ms/verification "
          f"({cold['wall_verifications_per_sec']:.0f}/s wall)")
    print(f"cached: {cached['sim_ms_per_verification']:8.1f} sim ms/verification "
          f"({cached['wall_verifications_per_sec']:.0f}/s wall)")
    print(f"wrote {output}")
    return results


if __name__ == "__main__":
    main()
