"""Figure 6: dm-verity read latency.

Paper setup (section 6.3.1): reading the files under the Boundary
Node's integrity-protected 4 GB rootfs (sha256, 4 KiB data and hash
blocks), largest file 94.8 MB; reads show an average 9.35x slowdown
over the unprotected device.

We build a rootfs with a paper-shaped file size distribution (scaled),
mount it once through dm-verity and once directly, and compare per-file
read latency.  Shape to reproduce: a roughly constant multiplicative
slowdown across file sizes (every 4 KiB block pays the same hash-path
verification), i.e. an order-of-magnitude, not a few percent.
"""

import time

import pytest

from repro.bench import Reporter, bench_scale
from repro.storage.dm_verity import verity_format, verity_open
from repro.storage.filesystem import FileSystem, build_image, image_to_device

PAPER_AVG_SLOWDOWN = 9.35

#: Paper-shaped file sizes (bytes), scaled from the BN rootfs contents;
#: the largest models the 94.8 MB file at bench scale.
FILE_SIZES = [4096, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024, 3 * 1024 * 1024]


@pytest.fixture(scope="module")
def mounts():
    files = {
        f"/data/file-{index}": bytes((index + i) % 256 for i in range(size))
        for index, size in enumerate(FILE_SIZES)
    }
    image = build_image(files)
    plain_device = image_to_device(image)
    protected_device = image_to_device(image)
    result = verity_format(protected_device, salt=b"fig6")
    verity = verity_open(protected_device, result.hash_device, result.root_hash)
    return FileSystem(plain_device), FileSystem(verity), files


def _time(operation, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter(
        "fig6", f"dm-verity read latency (scale={bench_scale():.4f})"
    )
    yield reporter
    reporter.finish()


def test_fig6_read_slowdown(benchmark, mounts, reporter):
    plain_fs, verity_fs, files = mounts
    reporter.line(f"\n  paper: average slowdown {PAPER_AVG_SLOWDOWN}x")
    reporter.header(
        ["  file size", "plain ms", "verity ms", "slowdown"], [12, 12, 12, 10]
    )
    slowdowns = []
    for path in sorted(files):
        plain_seconds = _time(lambda: plain_fs.read_file(path))
        verity_seconds = _time(lambda: verity_fs.read_file(path))
        slowdown = verity_seconds / plain_seconds
        slowdowns.append(slowdown)
        reporter.row(
            [f"  {len(files[path]) // 1024} KiB", f"{plain_seconds * 1000:.3f}",
             f"{verity_seconds * 1000:.3f}", f"{slowdown:.2f}x"],
            [12, 12, 12, 10],
        )
    average = sum(slowdowns) / len(slowdowns)
    reporter.line(f"  measured average slowdown: {average:.2f}x")

    largest = max(files, key=lambda p: len(files[p]))
    benchmark(lambda: verity_fs.read_file(largest))

    # Shape: a multiplicative slowdown well above 2x on larger files —
    # the paper's point is that verify-on-read costs ~an order of
    # magnitude, not a few percent.
    big_file_slowdowns = slowdowns[-3:]
    assert min(big_file_slowdowns) > 2.0


def test_fig6_reads_still_correct(mounts):
    """Verity-mounted reads return identical bytes, just slower."""
    plain_fs, verity_fs, files = mounts
    for path in files:
        assert verity_fs.read_file(path) == plain_fs.read_file(path)


def test_fig6_hash_path_depth_effect(benchmark, reporter):
    """Deeper trees (more levels) cost more per read — the mechanism
    behind the slowdown."""
    import math

    from repro.storage.blockdev import RamBlockDevice

    reporter.line("\n  hash-tree depth vs per-block read cost:")
    for num_blocks in (64, 8192):
        device = RamBlockDevice(num_blocks, 4096,
                                initial=bytes(num_blocks * 4096))
        result = verity_format(device)
        verity = verity_open(device, result.hash_device, result.root_hash)
        levels = len(result.superblock.level_block_counts())
        seconds = _time(lambda: [verity.read_block(i) for i in range(64)])
        reporter.line(
            f"    {num_blocks:6d} blocks ({levels} levels): "
            f"{seconds / 64 * 1e6:7.1f} us/block"
        )
    benchmark(lambda: verity.read_block(0))
