"""The full adversary-campaign matrix: attacks x axes, one report.

Runs the built-in ``storm-core`` campaign (every live-fleet attack
fired into a seeded session storm — see
:mod:`repro.scenarios.catalog`) across the full matrix of operational
axes:

* **signature cache** cold vs warm (the PR-3 verdict cache),
* **rolling rollout** in progress vs stable fleet (the PR-4 drain
  machinery replacing every SNP node mid-campaign),
* **verify farm** shared vs per-verifier crypto (the PR-8 batch
  verification seam),

plus the ``pipeline-tail`` campaign (the long tail of per-family
pipeline reason codes) and the ``launch-61`` boot-time matrix once
each.  Every cell asserts the full containment contract: each attack
lands on its expected stable reason code, is contained, reverts
cleanly, its benign twin passes, and benign-traffic SLOs hold (zero
failed, zero blocked, p99 within 2x of an attack-free same-seed
baseline).

Everything recorded in ``BENCH_scenarios.json`` is derived from
simulated time and deterministic counters — two runs with the same
``--seed`` are byte-identical (wall-clock timings go to stdout only).

Run directly: ``PYTHONPATH=src python benchmarks/bench_scenarios.py``
(``--cells cold-stable-solo,warm-stable-solo --sessions 120`` is the
CI smoke configuration).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

from bench_fleet import _build
from repro.scenarios import CampaignRunner, get_campaign, registered_injectors


def _cell_key(cache_on: bool, rollout: bool, farm: bool) -> str:
    return "-".join([
        "warm" if cache_on else "cold",
        "roll" if rollout else "stable",
        "farm" if farm else "solo",
    ])


ALL_CELLS = [
    _cell_key(cache_on, rollout, farm)
    for cache_on in (False, True)
    for rollout in (False, True)
    for farm in (False, True)
]


def _summarise(report) -> dict:
    scenarios = report.scenarios
    return {
        "ok": report.ok,
        "violations": report.violations,
        "axes": report.axes,
        "slo": report.slo,
        "codes_reached": report.codes_reached,
        "attacks": {
            "total": len(scenarios),
            "landed": sum(1 for s in scenarios if s["landed"]),
            "contained": sum(1 for s in scenarios if s["contained"]),
            "recovered": sum(1 for s in scenarios if s["recovered"]),
            "benign_ok": sum(
                1 for s in scenarios
                if s["benign"] is not None and s["benign"]["ok"]
            ),
        },
    }


def run_matrix(args) -> dict:
    build = _build()
    build_v2 = _build("2.0.0")
    storm = get_campaign("storm-core")
    if args.sessions:
        storm = dataclasses.replace(storm, sessions=args.sessions)
    selected = args.cells.split(",") if args.cells else ALL_CELLS
    unknown = sorted(set(selected) - set(ALL_CELLS))
    if unknown:
        raise SystemExit(f"unknown cells {unknown}; available: {ALL_CELLS}")

    cells = {}
    for key in ALL_CELLS:
        if key not in selected:
            continue
        cache_on = key.startswith("warm")
        rollout = "-roll-" in key
        farm = key.endswith("-farm")
        started = time.perf_counter()
        report = CampaignRunner(
            build, storm, seed=args.seed,
            sigcache_on=cache_on, rollout=rollout, farm=farm,
            build_v2=build_v2 if rollout else None,
        ).run()
        print(
            f"  storm-core [{key}]: "
            f"{'OK' if report.ok else 'FAIL'} "
            f"({len(report.scenarios)} attacks, "
            f"p99 {report.slo['p99_ms']:.1f} ms vs "
            f"baseline {report.slo['baseline_p99_ms']:.1f} ms, "
            f"{time.perf_counter() - started:.1f}s wall)"
        )
        cells[key] = _summarise(report)

    started = time.perf_counter()
    pipeline = CampaignRunner(
        None, get_campaign("pipeline-tail"), seed=args.seed
    ).run()
    print(
        f"  pipeline-tail: {'OK' if pipeline.ok else 'FAIL'} "
        f"({time.perf_counter() - started:.1f}s wall)"
    )
    started = time.perf_counter()
    launch = CampaignRunner(
        build, get_campaign("launch-61"), seed=args.seed
    ).run()
    print(
        f"  launch-61: {'OK' if launch.ok else 'FAIL'} "
        f"({time.perf_counter() - started:.1f}s wall)"
    )

    all_codes = sorted(
        set().union(
            *(cell["codes_reached"] for cell in cells.values()),
            pipeline.codes_reached,
            launch.codes_reached,
        )
    )
    return {
        "bench": "scenarios",
        "description": (
            "Adversary campaigns under live fleet traffic: "
            "attacks x sigcache x rollout x verify-farm"
        ),
        "seed": args.seed,
        "storm_sessions": storm.sessions,
        "injectors": list(registered_injectors()),
        "storm_matrix": {key: cells[key] for key in sorted(cells)},
        "pipeline_tail": _summarise(pipeline),
        "launch_61": _summarise(launch),
        "codes_reached_total": all_codes,
        "ok": (
            all(cell["ok"] for cell in cells.values())
            and pipeline.ok
            and launch.ok
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sessions", type=int, default=0,
        help="override storm-core session count (0 = campaign default)",
    )
    parser.add_argument(
        "--cells", default="",
        help=f"comma-separated storm cells to run (default: all of "
             f"{','.join(ALL_CELLS)})",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).parent / "BENCH_scenarios.json")
    )
    args = parser.parse_args()

    started = time.perf_counter()
    result = run_matrix(args)
    wall = time.perf_counter() - started
    payload = json.dumps(result, indent=2, sort_keys=True) + "\n"
    Path(args.out).write_text(payload)
    print(
        f"wrote {args.out} ({len(result['storm_matrix'])} storm cells, "
        f"{len(result['codes_reached_total'])} reason codes, "
        f"{wall:.1f}s wall)"
    )
    if not result["ok"]:
        print("MATRIX FAILED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
