"""Signed delta updates: build-cache reuse, delta size, fleet rollout.

Three phases over the :mod:`repro.build` update stack and the
:mod:`repro.fleet` provisioner:

* **Phase A — incremental rebuilds.**  The same spec built cold, then
  rebuilt against the content-addressed :class:`BuildCache` (every
  stage must hit and the image must be byte-identical), then rebuilt
  with exactly one package bumped (only the stages whose inputs moved
  recompute).  The registry's payload-dedup figures ride along.
* **Phase B — delta vs full-image push.**  The block-level delta for
  the one-package change: payload bytes, encoded-blob bytes, signed
  manifest overhead, and the shipped/full ratio, gated at
  ``--delta-ratio-max`` (default 0.25).
* **Phase C — fleet rollout.**  A 1000-node mixed-family fleet (SNP
  deployment nodes + lite backends) behind a regioned
  :class:`~repro.fleet.mesh.GatewayMesh`, updated region-serially by
  :class:`~repro.fleet.provision.FleetProvisioner` while a lite
  session storm runs.  Acceptance: every node delivered, verified,
  applied, re-attested, and admitted; **zero requests routed to a
  non-re-attested node**; shipped bytes a small fraction of a
  full-image push.

Everything recorded in ``BENCH_update.json`` derives from simulated
time and deterministic counters — two runs with the same ``--seed``
are byte-identical (wall-clock timings go to stdout only).

Run directly: ``PYTHONPATH=src python benchmarks/bench_update.py``
(``--nodes 30`` for a quick smoke run).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.attest import reset_tracer
from repro.attest.trace import get_tracer
from repro.build import (
    BuildCache,
    ImageSpec,
    Package,
    PackagePin,
    PackageRegistry,
    build_revelio_image,
    compute_delta,
)
from repro.build.channel import UpdateChannel
from repro.core import RevelioDeployment
from repro.crypto import ec, sigcache
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import PrivateKey
from repro.fleet import FleetProvisioner, GatewayMesh, LiteFleet, MeshWorkload
from repro.sim import EventKernel, SimRng
from repro.sim.kernel import sleep

REGIONS = ("us-east", "us-west", "eu-central", "ap-south")
REGION_RTT = {
    ("us-east", "us-west"): 0.060,
    ("us-east", "eu-central"): 0.080,
    ("us-east", "ap-south"): 0.180,
    ("us-west", "eu-central"): 0.140,
    ("us-west", "ap-south"): 0.150,
    ("eu-central", "ap-south"): 0.110,
}
LITE_FAMILIES = ("sev-snp", "tdx", "arm-cca", "e-vtpm")


def _registry(agent_version: str = "1.0.0"):
    """The bench fleet's package set; only the agent varies between
    image versions (the "one-package change")."""
    registry = PackageRegistry()
    pins = {}
    for package in [
        Package.create(
            "nginx",
            "1.24.0",
            files={
                "/usr/sbin/nginx": b"\x7fELF-nginx" + b"n" * 2000,
                "/etc/nginx/nginx.conf": b"server { listen 443 ssl; }",
            },
        ),
        Package.create(
            "ic-boundary-node",
            "0.9.0",
            files={"/opt/ic/boundary-node": b"\x7fELF-bn" + b"b" * 4000},
        ),
        Package.create(
            "revelio-agent",
            agent_version,
            files={
                "/usr/bin/revelio-agent": (
                    b"\x7fELF-agent-" + agent_version.encode() + b"r" * 1000
                )
            },
        ),
    ]:
        digest = registry.publish(package)
        pins[package.name] = PackagePin(package.name, package.version, digest)
    return registry, pins


def _spec(registry, pins, version: str) -> ImageSpec:
    return ImageSpec(
        name="boundary-node",
        version=version,
        registry=registry,
        package_pins=[
            pins[p] for p in ("nginx", "ic-boundary-node", "revelio-agent")
        ],
        service_domain="bench-update.example",
        services=("https",),
        data_volume_blocks=16,
    )


def phase_build_cache(args) -> tuple:
    """Cold build, cached rebuild, one-package incremental rebuild."""
    registry, pins = _registry()
    cache = BuildCache()

    wall_started = time.perf_counter()
    base = build_revelio_image(_spec(registry, pins, "1.0.0"), cache=cache)
    cold_wall = time.perf_counter() - wall_started
    cold_misses = dict(cache.misses)

    cache.reset_stats()
    wall_started = time.perf_counter()
    rebuild = build_revelio_image(_spec(registry, pins, "1.0.0"), cache=cache)
    warm_wall = time.perf_counter() - wall_started
    assert rebuild.image.encode() == base.image.encode(), (
        "cached rebuild is not byte-identical to the cold build"
    )
    warm = cache.stats()

    # Bump exactly one package and rebuild incrementally.
    bumped_registry, bumped_pins = _registry("2.0.0")
    for name in ("nginx", "ic-boundary-node"):
        assert bumped_pins[name] == pins[name], "only the agent may change"
    cache.reset_stats()
    target = build_revelio_image(
        _spec(bumped_registry, bumped_pins, "2.0.0"), cache=cache
    )
    incremental = cache.stats()
    speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")
    print(f"  cold build {cold_wall * 1e3:.1f}ms wall, cached rebuild "
          f"{warm_wall * 1e3:.1f}ms wall ({speedup:.1f}x; wall figures "
          f"not persisted)")
    result = {
        "cold_misses": cold_misses,
        "warm_rebuild": {
            "hits": warm["hits"],
            "misses": warm["misses"],
            "hit_ratio": warm["hit_ratio"],
            "byte_identical": True,
        },
        "one_package_change": {
            "hits": incremental["hits"],
            "misses": incremental["misses"],
        },
        "registry_dedup": registry.dedup_stats(),
    }
    assert warm["misses"] == {}, f"warm rebuild missed: {warm['misses']}"
    return result, base, target


def phase_delta(args, base, target) -> dict:
    """The one-package delta, and what publishing it costs on the wire."""
    delta = compute_delta(base.image, target.image)
    blob = delta.encode()
    key = PrivateKey.generate_ecdsa(HmacDrbg(b"bench-update-channel"), "P-256")
    channel = UpdateChannel(key, image_name=base.image.name)
    signed = channel.publish(
        delta, base.expected_measurement, target.expected_measurement
    )
    full_bytes = len(target.image.disk_image)
    ratio = len(blob) / full_bytes
    assert ratio <= args.delta_ratio_max, (
        f"encoded delta is {ratio:.1%} of the full image "
        f"(max {args.delta_ratio_max:.1%})"
    )
    print(f"  delta {len(blob)} bytes vs full image {full_bytes} bytes "
          f"({ratio:.1%}), {len(delta.changed_blocks)} changed blocks")
    return {
        "full_image_bytes": full_bytes,
        "delta_payload_bytes": delta.delta_bytes(),
        "encoded_blob_bytes": len(blob),
        "signed_manifest_bytes": len(signed.encode()),
        "changed_blocks": len(delta.changed_blocks),
        "changed_components": len(delta.components),
        "delta_ratio": ratio,
        "delta_ratio_max": args.delta_ratio_max,
    }


def phase_fleet_rollout(args, base, target) -> dict:
    """Provision the whole mixed-family fleet under live traffic."""
    sigcache.reset_cache()
    ec.reset_point_cache()
    reset_tracer()
    regions = REGIONS[: max(1, min(args.regions, len(REGIONS)))]
    deployment = RevelioDeployment(
        base, num_nodes=args.snp_nodes,
        seed=f"bench-update-{args.seed}".encode(),
    ).deploy()
    kernel = EventKernel(deployment.network.clock, SimRng(args.seed))
    deployment.network.enable_event_mode(kernel)
    for (region_a, region_b), rtt in sorted(REGION_RTT.items()):
        if region_a in regions and region_b in regions:
            deployment.latency.region_rtt[(region_a, region_b)] = rtt

    mesh = GatewayMesh.for_deployment(deployment, kernel, regions=regions)
    lite = LiteFleet(deployment)
    extra = max(0, args.nodes - args.snp_nodes)
    for index in range(extra):
        lite.add_backend(
            f"10.8.{index // 200}.{1 + index % 200}",
            LITE_FAMILIES[index % len(LITE_FAMILIES)],
            region=regions[index % len(regions)],
        )
    lite.adopt_deployment_nodes()
    mesh.attach_lite_fleet(lite)
    verdicts = mesh.admit_all()
    assert all(v.ok for v in verdicts), [
        (v.ip_address, v.reason) for v in verdicts if not v.ok
    ]
    kernel.run(until=kernel.clock.now + 1.0)

    key = PrivateKey.generate_ecdsa(
        HmacDrbg(f"bench-update-provision-{args.seed}".encode()), "P-256"
    )
    provisioner = FleetProvisioner(mesh, deployment, key, lite_fleet=lite)
    workload = MeshWorkload(mesh, kernel, rng=SimRng(args.seed))
    storm = kernel.spawn(
        workload.open_loop(args.sessions, args.arrival_rate), name="storm"
    )

    def delayed_provision():
        yield sleep(args.provision_at)
        report = yield from provisioner.provision(target)
        return report

    rollout = kernel.spawn(delayed_provision(), name="provision")
    steps_before = kernel.stats.steps
    wall_started = time.perf_counter()
    while not storm.finished or not rollout.finished:
        kernel.run(until=kernel.clock.now + 60.0)
    wall = time.perf_counter() - wall_started
    rollout_steps = kernel.stats.steps - steps_before
    kernel.run()
    if storm.error is not None:
        raise storm.error
    if rollout.error is not None:
        raise rollout.error

    report = rollout.value
    snapshot = workload.snapshot()
    total = args.nodes
    assert report.phase_counters() == {
        "discovered": total,
        "delivered": total,
        "verified": total,
        "applied": total,
        "apply_cache_hits": total - 1,
        "reattested": total,
        "admitted": total,
    }, report.phase_counters()
    assert report.requests_to_unattested == 0, (
        f"{report.requests_to_unattested} requests reached a "
        f"non-re-attested node"
    )
    assert workload.sessions_failed == 0
    assert snapshot.get("requests_failed", 0) == 0
    assert deployment.build is target

    wall_events = rollout_steps / wall if wall > 0 else float("inf")
    print(f"  {total} nodes updated in {report.sim_seconds:.1f} sim s "
          f"({wall:.1f}s wall, {wall_events:,.0f} events/sec; wall figures "
          f"not persisted)")
    print(f"  shipped {report.delta_bytes_shipped:,} delta bytes vs "
          f"{report.full_bytes_equivalent:,} full-image bytes "
          f"({report.delta_ratio:.1%}); "
          f"{report.requests_to_unattested} requests to unattested nodes")
    update_counters = get_tracer().update.snapshot()
    return {
        "nodes": {
            "total": total,
            "snp": args.snp_nodes,
            "lite": extra,
        },
        "regions": [
            {
                "region": entry["region"],
                "replaced": len(entry["replacements"]),
                "sim_seconds": entry["sim_seconds"],
            }
            for entry in report.regions
        ],
        "epoch": report.epoch,
        "phases": report.phase_counters(),
        "delta_bytes_shipped": report.delta_bytes_shipped,
        "full_bytes_equivalent": report.full_bytes_equivalent,
        "delta_ratio": report.delta_ratio,
        "requests_to_unattested": report.requests_to_unattested,
        "rollout_sim_seconds": report.sim_seconds,
        "storm": {
            "sessions": args.sessions,
            "sessions_completed": workload.sessions_completed,
            "sessions_failed": workload.sessions_failed,
            "requests_ok": snapshot.get("requests_ok", 0),
            "requests_failed": snapshot.get("requests_failed", 0),
        },
        "update_counters": update_counters,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--nodes", type=int, default=1000,
                        help="total fleet size in phase C (SNP + lite)")
    parser.add_argument("--snp-nodes", type=int, default=4,
                        help="full deployment SNP nodes inside phase C")
    parser.add_argument("--regions", type=int, default=4,
                        help="gateway regions in phase C (max 4)")
    parser.add_argument("--sessions", type=int, default=2000,
                        help="lite sessions stormed during the rollout")
    parser.add_argument("--arrival-rate", type=float, default=20.0,
                        help="open-loop session arrivals per sim second")
    parser.add_argument("--provision-at", type=float, default=5.0,
                        help="sim seconds into the storm to start provisioning")
    parser.add_argument("--delta-ratio-max", type=float, default=0.25,
                        help="fail if the encoded delta exceeds this "
                             "fraction of the full image")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent
                        / "BENCH_update.json")
    args = parser.parse_args(argv)
    if args.snp_nodes > args.nodes:
        parser.error("--snp-nodes cannot exceed --nodes")

    started = time.perf_counter()
    results = {
        "benchmark": "signed delta updates + fleet provisioning",
        "seed": args.seed,
    }
    print("phase A (incremental rebuilds):")
    cache_result, base, target = phase_build_cache(args)
    results["build_cache"] = cache_result
    print("phase B (delta vs full image):")
    results["delta"] = phase_delta(args, base, target)
    print(f"phase C (fleet rollout, {args.nodes} nodes):")
    results["fleet_rollout"] = phase_fleet_rollout(args, base, target)

    args.output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output} "
          f"(wall {time.perf_counter() - started:.1f}s)")
    return results


if __name__ == "__main__":
    main()
