"""Event-kernel fast-path microbenchmark: current kernel vs PR-4's.

Runs the same three workloads on the vendored pre-refactor kernel
(``benchmarks/kernel_pr4.py``, the exact PR-4 ``repro.sim.kernel``) and
on the current one, and reports wall-clock events/sec for each:

* **sleep-heavy** — 1 000 processes each sleeping 200 times; exercises
  the ``heapreplace`` resume-and-resleep fast path and the flattened
  dispatch loop.
* **fanout** — repeated rounds of one event waking 200 waiters;
  exercises event wake scheduling.
* **interrupt storm** — 10 000 processes parked on one event,
  interrupted in *reverse* arrival order; the PR-4 kernel unlinks each
  waiter with ``list.remove`` (O(n) per interrupt, quadratic for the
  storm), the current kernel with an ordered-dict pop (O(1)).

Both kernels step the identical discrete-event schedule (the per-
workload step counts are asserted equal), so the events/sec ratio is a
pure kernel-overhead comparison.  The combined speedup (total steps /
total wall, new over old) must clear ``BENCH_KERNEL_MIN_SPEEDUP``
(default 3.0) or the run fails — this is the PR-7 acceptance gate.

Wall-clock numbers are machine-dependent and land in
``BENCH_kernel.json`` (this file is a microbenchmark report, not a
deterministic artifact like ``BENCH_fleet.json``).

Run directly: ``PYTHONPATH=src python benchmarks/bench_kernel.py``
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import kernel_pr4
from repro.net.latency import SimClock
from repro.sim import kernel as kernel_new
from repro.sim.rng import SimRng


def _workload_sleep_heavy(api, kernel, processes=1000, iterations=200):
    def sleeper(index):
        for step in range(iterations):
            yield api.sleep(0.001 * (1 + (index + step) % 7))

    for index in range(processes):
        kernel.spawn(sleeper(index), name=f"sleeper-{index}")
    kernel.run()


def _workload_fanout(api, kernel, rounds=50, waiters=200):
    def waiter(event):
        yield api.wait(event)

    def driver():
        for round_index in range(rounds):
            event = kernel.event(f"round-{round_index}")
            for _ in range(waiters):
                yield api.spawn(waiter(event))
            yield api.sleep(0.01)
            event.succeed(round_index)
            yield api.sleep(0.01)

    kernel.spawn(driver(), name="driver")
    kernel.run()


def _workload_interrupt_storm(api, kernel, waiters=10_000):
    event = kernel.event("storm")
    parked = []

    def waiter():
        try:
            yield api.wait(event)
        except api.Interrupt:
            return

    def driver():
        yield api.sleep(0.001)
        # Reverse arrival order: the PR-4 list.remove scan walks the
        # whole waiter list for every interrupt.
        for process in reversed(parked):
            process.interrupt("storm")
        yield api.sleep(0.001)

    for index in range(waiters):
        parked.append(kernel.spawn(waiter(), name=f"waiter-{index}"))
    kernel.spawn(driver(), name="driver")
    kernel.run()


WORKLOADS = [
    ("sleep_heavy", _workload_sleep_heavy),
    ("fanout", _workload_fanout),
    ("interrupt_storm", _workload_interrupt_storm),
]


def _run_once(api, name, workload) -> dict:
    kernel = api.EventKernel(SimClock(), SimRng(7))
    started = time.perf_counter()
    workload(api, kernel)
    wall = time.perf_counter() - started
    return {"steps": kernel.steps, "wall_s": wall}


def _measure(api, repeats: int) -> dict:
    """Best-of-N wall per workload (the min is the least noisy)."""
    results = {}
    for name, workload in WORKLOADS:
        runs = [_run_once(api, name, workload) for _ in range(repeats)]
        steps = runs[0]["steps"]
        assert all(run["steps"] == steps for run in runs)
        results[name] = {
            "steps": steps,
            "wall_s": min(run["wall_s"] for run in runs),
        }
    return results


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float,
        default=float(os.environ.get("BENCH_KERNEL_MIN_SPEEDUP", "3.0")),
        help="combined events/sec ratio (new/old) the run must clear",
    )
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent / "BENCH_kernel.json")
    args = parser.parse_args(argv)

    old = _measure(kernel_pr4, args.repeats)
    new = _measure(kernel_new, args.repeats)

    workloads = {}
    total_steps = total_old_wall = total_new_wall = 0.0
    print(f"{'workload':<18} {'steps':>9} {'old ev/s':>12} {'new ev/s':>12} "
          f"{'speedup':>8}")
    for name, _ in WORKLOADS:
        steps = old[name]["steps"]
        assert steps == new[name]["steps"], (
            f"{name}: kernels disagree on the schedule "
            f"({steps} vs {new[name]['steps']} steps)"
        )
        old_rate = steps / old[name]["wall_s"]
        new_rate = steps / new[name]["wall_s"]
        speedup = new_rate / old_rate
        total_steps += steps
        total_old_wall += old[name]["wall_s"]
        total_new_wall += new[name]["wall_s"]
        workloads[name] = {
            "steps": steps,
            "old_events_per_sec": round(old_rate),
            "new_events_per_sec": round(new_rate),
            "speedup": round(speedup, 2),
        }
        print(f"{name:<18} {steps:>9} {old_rate:>12,.0f} {new_rate:>12,.0f} "
              f"{speedup:>7.2f}x")

    combined_old = total_steps / total_old_wall
    combined_new = total_steps / total_new_wall
    combined = combined_new / combined_old
    print(f"{'combined':<18} {int(total_steps):>9} {combined_old:>12,.0f} "
          f"{combined_new:>12,.0f} {combined:>7.2f}x "
          f"(floor {args.min_speedup:.1f}x)")
    assert combined >= args.min_speedup, (
        f"kernel speedup {combined:.2f}x below the "
        f"{args.min_speedup:.1f}x floor"
    )

    results = {
        "benchmark": "event-kernel fast path, PR-7 vs PR-4",
        "repeats": args.repeats,
        "workloads": workloads,
        "combined": {
            "steps": int(total_steps),
            "old_events_per_sec": round(combined_old),
            "new_events_per_sec": round(combined_new),
            "speedup": round(combined, 2),
            "min_speedup": args.min_speedup,
        },
    }
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return results


if __name__ == "__main__":
    main()
