"""Table 1: Revelio-imposed delays on first boot.

Paper (AMD EPYC 7313, 84 MB dm-crypt volume, 4 GB verity rootfs):

                       BN latency  CP latency   BN ovh   CP ovh
    dm-crypt setup        611 ms      481 ms    2.76 %   4.94 %
    dm-verity setup       219 ms      194 ms    0.97 %   1.94 %
    dm-verity verify     4680 ms     3340 ms   25.94 %  48.61 %
    identity creation     123 ms      132 ms    0.54 %   1.31 %
    total boot          22725 ms    10211 ms

We boot the two use-case images (workloads scaled; see
repro.bench.harness) and read the per-init-step timings the VM records.
The *shape* to reproduce: dm-verity verify dominates by an order of
magnitude; BN absolute overhead percentages are smaller than CP's
because the BN boots many more base services.
"""

import pytest

from repro.amd.secure_processor import AmdKeyInfrastructure
from repro.bench import Reporter, bench_scale
from repro.crypto.drbg import HmacDrbg
from repro.virt.hypervisor import Hypervisor

PAPER = {
    "boundary-node": {
        "dm-crypt-data": (611, 2.76),
        "verity-setup": (219, 0.97),
        "verity-verify": (4680, 25.94),
        "identity-creation": (123, 0.54),
        "total": 22725,
    },
    "cryptpad": {
        "dm-crypt-data": (481, 4.94),
        "verity-setup": (194, 1.94),
        "verity-verify": (3340, 48.61),
        "identity-creation": (132, 1.31),
        "total": 10211,
    },
}


def _boot_vm(build, seed):
    amd = AmdKeyInfrastructure(HmacDrbg(seed))
    hypervisor = Hypervisor(amd.provision_chip("bench-chip"), HmacDrbg(seed + b"hv"))
    vm = hypervisor.launch(build.image)
    vm.boot()
    return vm


def _report(name, vm, reporter):
    paper = PAPER[name]
    # The recorded "verity-rootfs" step covers open (setup) + full
    # verification; split it the way the paper does by re-measuring the
    # setup-only part (open without verify) on the same disk.
    import time

    from repro.storage.dm_verity import verity_open
    from repro.storage.partition import PartitionTable

    table = PartitionTable.read_from(vm.disk)
    rootfs_part = table.open(vm.disk, "rootfs")
    verity_part = table.open(vm.disk, "verity")
    root_hash = bytes.fromhex(vm.cmdline_args["verity_root_hash"])
    started = time.perf_counter()
    verity_open(rootfs_part, verity_part, root_hash)
    setup_seconds = time.perf_counter() - started
    verify_seconds = vm.boot_timing("verity-rootfs") - setup_seconds

    measured = {
        "dm-crypt-data": vm.boot_timing("dm-crypt-data"),
        "verity-setup": setup_seconds,
        "verity-verify": verify_seconds,
        "identity-creation": vm.boot_timing("identity-creation"),
    }
    total = vm.total_boot_seconds()
    reporter.line(f"\n  {name} (total boot {total * 1000:.0f} ms measured; "
                  f"paper {paper['total']} ms)")
    for step, seconds in measured.items():
        paper_ms, paper_pct = paper[step]
        reporter.compare(
            step,
            paper_ms,
            seconds * 1000,
            note=f"overhead paper {paper_pct:5.2f}% / "
            f"measured {100 * seconds / total:5.2f}%",
        )
    return measured


@pytest.fixture(scope="module")
def reporter():
    reporter = Reporter(
        "table1", f"Revelio first-boot delays (scale={bench_scale():.4f})"
    )
    yield reporter
    reporter.finish()


def test_table1_boundary_node_boot(benchmark, bn_build, reporter):
    vm = benchmark.pedantic(
        lambda: _boot_vm(bn_build, b"t1-bn"), rounds=3, iterations=1
    )
    measured = _report("boundary-node", vm, reporter)
    # Shape assertions: verify dominates every other Revelio service.
    assert measured["verity-verify"] > measured["dm-crypt-data"]
    assert measured["verity-verify"] > measured["identity-creation"]


def test_table1_cryptpad_boot(benchmark, cp_build, reporter):
    vm = benchmark.pedantic(
        lambda: _boot_vm(cp_build, b"t1-cp"), rounds=3, iterations=1
    )
    measured = _report("cryptpad", vm, reporter)
    assert measured["verity-verify"] > measured["identity-creation"]
    assert measured["verity-verify"] > measured["verity-setup"]


def test_table1_overhead_shape(benchmark, bn_build, cp_build, reporter):
    """CP's relative overheads exceed BN's (same work, smaller base)."""
    bn_vm, cp_vm = benchmark.pedantic(
        lambda: (_boot_vm(bn_build, b"t1-shape-bn"), _boot_vm(cp_build, b"t1-shape-cp")),
        rounds=1,
        iterations=1,
    )
    bn_pct = bn_vm.boot_timing("verity-rootfs") / bn_vm.total_boot_seconds()
    cp_pct = cp_vm.boot_timing("verity-rootfs") / cp_vm.total_boot_seconds()
    reporter.line(
        f"\n  verity share of boot: BN {100 * bn_pct:.2f}% vs "
        f"CP {100 * cp_pct:.2f}% (paper: 25.94% vs 48.61%)"
    )
    assert cp_pct > bn_pct
